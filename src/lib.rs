//! # tm-liveness-repro
//!
//! A full reproduction of **“On the Liveness of Transactional Memory”**
//! (Bushkov, Guerraoui, Kapałka; PODC 2012) as a Rust workspace. This
//! umbrella crate re-exports the member crates under stable module names:
//!
//! * [`core`] — events, histories, transactions, the sequential
//!   specification, and the paper's figure histories;
//! * [`safety`] — exact opacity / strict serializability checkers and the
//!   incremental commit-order certifier;
//! * [`liveness`] — lasso-shaped infinite histories, process
//!   classification (Figure 2), the TM-liveness properties (local /
//!   global / solo progress) and the nonblocking/biprogressing property
//!   classes;
//! * [`automata`] — the TM I/O-automaton framework, the paper's `Fgp`
//!   automaton (Theorem 3) and reachable-state enumeration (Figure 15);
//! * [`stm`] — seven executable STM algorithms in stepped form plus three
//!   concurrent (thread-driven) forms;
//! * [`adversary`] — Algorithms 1 and 2 from Theorem 1's proof and the
//!   n-process generalization (Lemma 1), with the game driver;
//! * [`sim`] — schedulers, crash/parasitic fault injection, workloads, and
//!   the bounded-exhaustive interleaving model checker;
//! * [`telemetry`] — engine-wide counters, phase spans and the NDJSON
//!   event stream both checkers emit (see its module docs for the wire
//!   schema and the counter-semantics contract);
//! * [`obs`] — the consumer side of that stream: a typed
//!   forward-compatible parser plus run summaries, live progress,
//!   witness timelines and the `BENCH_*.json` regression diff behind
//!   the `tm-obs` binary.
//!
//! ## Quickstart
//!
//! ```
//! use tm_liveness_repro::prelude::*;
//!
//! // 1. The paper's Figure 1 history is opaque; Figure 3's is not.
//! assert!(is_opaque(&figures::figure_1()));
//! assert!(!is_opaque(&figures::figure_3()));
//!
//! // 2. Theorem 1: the Algorithm 1 adversary starves p1 against TL2.
//! let mut tm = Tl2::new(2, 1);
//! let mut adv = Algorithm1::new(TVarId(0));
//! let report = run_game(&mut tm, &mut adv, GameConfig::steps(1_000));
//! assert_eq!(report.commits[0], 0);
//!
//! // 3. Theorem 3: Fgp keeps global progress under the same attack.
//! assert!(report.commits[1] > 0);
//! ```

pub use tm_adversary as adversary;
pub use tm_automata as automata;
pub use tm_core as core;
pub use tm_liveness as liveness;
pub use tm_obs as obs;
pub use tm_safety as safety;
pub use tm_sim as sim;
pub use tm_stm as stm;
pub use tm_telemetry as telemetry;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use tm_adversary::{
        run_game, Algorithm1, Algorithm2, GameConfig, GameReport, RotatingStarver, Strategy,
    };
    pub use tm_automata::{enumerate_states, Fgp, FgpVariant, GlobalLockTm, Runner, TmAutomaton};
    pub use tm_core::builder::figures;
    pub use tm_core::{
        Event, History, HistoryBuilder, Invocation, ProcessId, Response, TVarId, Transaction,
        TxStatus, Value,
    };
    pub use tm_liveness::{
        classify, GlobalProgress, InfiniteHistory, LocalProgress, ProcessClass, SoloProgress,
        TmLivenessProperty,
    };
    pub use tm_safety::{
        check_opacity, check_opacity_auto, check_strict_serializability, is_opaque,
        is_strictly_serializable, IncrementalChecker, Mode, SafetyProperty,
    };
    pub use tm_sim::{
        certify_workload, explore_schedules, explore_with, livecheck, simulate, Budget, Client,
        ClientScript, ExploreConfig, FairProcessVerdicts, FaultConfig, FaultPlan, LassoFinding,
        LivecheckConfig, LivecheckReport, OnlineConfig, OnlinePipeline, OnlineReport,
        OnlineWorkload, RandomScheduler, RoundRobin, Scheduler, SimConfig,
    };
    pub use tm_stm::{
        concurrent::{
            atomically, ConcurrentBuggy, ConcurrentGlobalLock, ConcurrentNOrec, ConcurrentTl2,
        },
        full_catalog, nonblocking_catalog, Dstm, FgpTm, GlobalLock, NOrec, Ostm, Outcome, Recorded,
        SteppedTm, TinyStm, Tl2,
    };
    pub use tm_telemetry::{Counter, Snapshot, Telemetry};
}
