//! Producer↔consumer integration: the engines stream NDJSON through a
//! file-backed telemetry handle and the `tm-obs` consumer layer is held
//! to its contracts against the live engines —
//!
//! * `summary` counter tables must be **byte-identical** to the
//!   engine's own in-memory [`Snapshot`] (the counter_snapshot event is
//!   emitted from the same snapshot, verbatim);
//! * `explain` must render annotated witness timelines for a real
//!   opacity violation and a real starving lasso;
//! * `diff` must pass the checked-in `BENCH_*.json` artifacts against
//!   themselves and fail a synthetically regressed copy.

use tm_automata::FgpVariant;
use tm_core::TVarId;
use tm_liveness_repro::obs::{diff, explain, summary};
use tm_sim::{explore_with, livecheck, ClientScript, ExploreConfig, LivecheckConfig, PlannedOp};
use tm_stm::{BoxedTm, FgpTm, GlobalLock, NOrec, Tl2};
use tm_telemetry::{Json, Telemetry};

const X: TVarId = TVarId(0);

fn contended() -> Vec<ClientScript> {
    vec![
        ClientScript::new(vec![PlannedOp::Write(X, 1)]),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
    ]
}

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tm_obs_{name}_{}.ndjson", std::process::id()))
}

#[test]
fn summary_counters_are_byte_identical_to_engine_snapshots() {
    type Factory = Box<dyn Fn() -> BoxedTm>;
    let catalog: Vec<(&str, Factory)> = vec![
        (
            "fgp",
            Box::new(|| Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm),
        ),
        ("tl2", Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm)),
        ("norec", Box::new(|| Box::new(NOrec::new(2, 1)) as BoxedTm)),
        (
            "global-lock",
            Box::new(|| Box::new(GlobalLock::new(2, 1)) as BoxedTm),
        ),
    ];
    let mut stream = String::new();
    let mut engine_truth = Vec::new();
    for (name, factory) in &catalog {
        // One fresh handle (and file) per run: the captured Snapshot is
        // then exactly what the run's counter_snapshot event carried.
        let path = temp(&format!("summary_{name}"));
        let report = {
            let telemetry = Telemetry::to_path(&path).expect("open stream");
            let config = LivecheckConfig::new(10).with_telemetry(&telemetry);
            let report = livecheck(&**factory, &contended(), &config);
            engine_truth.push((
                telemetry.snapshot().nonzero(),
                report.lasso_starvation_free(),
            ));
            report
        };
        assert_eq!(report.rejected_cycles, 0, "{name}");
        stream.push_str(&std::fs::read_to_string(&path).expect("read stream"));
        std::fs::remove_file(&path).ok();
    }

    let summary = summary::summarize(&stream).expect("summarize");
    assert_eq!(summary.runs.len(), catalog.len());
    assert_eq!(summary.unknown_events, 0);
    assert!(summary.all_runs_have_verdicts());
    for (run, ((name, _), (snapshot, starvation_free))) in
        summary.runs.iter().zip(catalog.iter().zip(&engine_truth))
    {
        assert_eq!(run.engine, "livecheck");
        assert_eq!(run.tm, *name);
        assert_eq!(run.counter_label.as_deref(), Some(*name));
        // Byte-identical: the summarized table is the engine snapshot —
        // same counters, same order, same values.
        let expected: Vec<(String, i64)> = snapshot
            .iter()
            .map(|&(counter, v)| (counter.to_string(), i64::try_from(v).unwrap_or(i64::MAX)))
            .collect();
        assert_eq!(run.counters, expected, "{name}: summary diverged");
        assert_eq!(
            run.verdict.as_ref().and_then(|v| v.ok),
            Some(*starvation_free),
            "{name}: verdict headline diverged"
        );
    }

    // The rendered report and matrix carry the same truth.
    let rendered = summary::render(&summary);
    assert!(rendered.contains("run 0: livecheck fgp"), "{rendered}");
    let matrix = summary::render_matrix(&summary);
    let fgp = matrix.lines().find(|l| l.starts_with("fgp ")).unwrap();
    assert!(fgp.contains('✗'), "fgp starves under contention: {matrix}");
    let gl = matrix
        .lines()
        .find(|l| l.starts_with("global-lock"))
        .unwrap();
    assert!(gl.contains('✓'), "global-lock is starvation-free: {matrix}");
}

#[test]
fn explain_renders_live_witness_timelines() {
    let path = temp("explain");
    {
        let telemetry = Telemetry::to_path(&path).expect("open stream");
        // A real opacity violation: the literal Fgp transcription lets
        // a doomed read slip through on this workload.
        let buggy = vec![
            ClientScript::increment(X),
            ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 5)]),
        ];
        let caught = explore_with(
            || tm_stm::literal_fgp(2, 1),
            &buggy,
            &ExploreConfig::new(8).with_telemetry(&telemetry),
        );
        assert!(!caught.all_opaque(), "expected a violation to explain");
        // A real starving lasso: greedy Fgp under write contention.
        let report = livecheck(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm,
            &contended(),
            &LivecheckConfig::new(10).with_telemetry(&telemetry),
        );
        assert!(!report.lasso_starvation_free(), "expected a lasso");
    }
    let stream = std::fs::read_to_string(&path).expect("read stream");
    std::fs::remove_file(&path).ok();

    let report = explain::explain(&stream).expect("explain");
    // The violation block: header, the checker's detail line, and a
    // replayed timeline with real operations and digests.
    assert!(
        report.contains("explore/fgp-literal · violation #0"),
        "{report}"
    );
    assert!(report.contains("detail:"), "{report}");
    assert!(report.contains("x.write("), "{report}");
    // The lasso block: header, classification, and the cycle marker.
    assert!(report.contains("livecheck/fgp · lasso #0"), "{report}");
    assert!(report.contains("starving: p"), "{report}");
    assert!(report.contains("↻ cycle (repeats forever):"), "{report}");
    assert!(report.contains("suffix repeats"), "{report}");
}

/// Scales every float under a key ending in `_ms` — a synthetic
/// slowdown that the diff gate must catch.
fn slow_down(value: &mut Json) {
    match value {
        Json::Obj(pairs) => {
            for (key, v) in pairs {
                if key.ends_with("_ms") {
                    if let Json::Num(x) = v {
                        *x *= 100.0;
                    }
                }
                slow_down(v);
            }
        }
        Json::Arr(items) => items.iter_mut().for_each(slow_down),
        _ => {}
    }
}

#[test]
fn diff_gates_the_checked_in_bench_artifacts() {
    let thresholds = diff::Thresholds::default();
    for name in ["BENCH_explorer.json", "BENCH_livecheck.json"] {
        let text = std::fs::read_to_string(format!("{}/{name}", env!("CARGO_MANIFEST_DIR")))
            .expect("checked-in artifact");
        let baseline = diff::DiffInput::load(&text).expect("load artifact");

        // Self-diff is clean: the artifact passes its own gate.
        let report = diff::diff(&baseline, &baseline, &thresholds).expect("diff");
        assert!(report.is_clean(), "{name} self-diff regressed: {report:?}");
        assert!(report.compared > 0, "{name}: nothing compared");

        // A 100× slowdown in every *_ms column must trip the gate.
        let mut regressed = Json::parse(&text).expect("artifact parses");
        slow_down(&mut regressed);
        let candidate = diff::DiffInput::load(&regressed.to_string()).expect("load regressed");
        let report = diff::diff(&baseline, &candidate, &thresholds).expect("diff");
        assert!(!report.is_clean(), "{name}: regression not detected");
        assert!(
            report.regressions.iter().any(|r| r.contains("_ms")),
            "{name}: no _ms regression reported: {report:?}"
        );

        // Cross-machine comparisons are refused unless overridden.
        let other_cores = text.replacen("\"cores\":1", "\"cores\":64", 1);
        let foreign = diff::DiffInput::load(&other_cores).expect("load foreign");
        assert!(
            diff::diff(&baseline, &foreign, &thresholds).is_err(),
            "{name}: cross-cores diff must be refused"
        );
        let waived = diff::Thresholds {
            ignore_cores: true,
            ..Default::default()
        };
        let report = diff::diff(&baseline, &foreign, &waived).expect("waived diff");
        assert!(report.is_clean(), "{name}: cores waiver should pass");
    }
}
