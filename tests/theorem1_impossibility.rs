//! Integration: Theorem 1 across every crate boundary.
//!
//! No TM that ensures opacity can ensure local progress in a fault-prone
//! system. Executable form: the Algorithm 1/2 adversaries starve `p1`
//! against every opaque TM in the catalogue while the history stays
//! certifiably opaque, for both the crash-flavoured and the
//! parasitic-flavoured environments, and for the n-process generalization.

use tm_adversary::{run_game, Algorithm1, Algorithm2, GameConfig, RotatingStarver, Strategy};
use tm_core::{ProcessId, TVarId};
use tm_stm::nonblocking_catalog;

const X: TVarId = TVarId(0);
const P1: ProcessId = ProcessId(0);

/// Fresh strategy instances (strategies are stateful; every game needs its
/// own, paired with a fresh TM).
fn fresh_strategies() -> Vec<Box<dyn Strategy>> {
    vec![Box::new(Algorithm1::new(X)), Box::new(Algorithm2::new(X))]
}

#[test]
fn no_opaque_tm_survives_either_algorithm() {
    for which in 0..2 {
        for mut tm in nonblocking_catalog(2, 1) {
            let mut strategy = fresh_strategies().remove(which);
            let report = run_game(
                tm.as_mut(),
                strategy.as_mut(),
                GameConfig::steps(10_000).check_opacity(),
            );
            assert!(
                !report.terminated,
                "{} vs {}: victim committed — opacity must have been violated",
                report.tm_name, report.strategy_name
            );
            assert_eq!(
                report.commits[0], 0,
                "{} vs {}: victim must starve",
                report.tm_name, report.strategy_name
            );
            assert!(
                report.commits[1] > 200,
                "{} vs {}: competitor must keep committing (global progress), got {}",
                report.tm_name,
                report.strategy_name,
                report.commits[1]
            );
            assert!(
                report.safety_ok,
                "{} vs {}: opacity violated: {:?}",
                report.tm_name, report.strategy_name, report.safety_violation
            );
        }
    }
}

#[test]
fn victim_aborts_grow_linearly_with_rounds() {
    // The starvation is *systematic*: every completed round yields an
    // abort (or silent skip) for p1, never a commit.
    for mut tm in nonblocking_catalog(2, 1) {
        let mut adversary = Algorithm1::new(X);
        let report = run_game(tm.as_mut(), &mut adversary, GameConfig::steps(20_000));
        assert!(report.rounds > 500, "{}", report.tm_name);
        assert_eq!(report.commits[P1.index()], 0, "{}", report.tm_name);
        // p1 is correct in the produced history: infinitely many aborts
        // (finite-run proxy: abort count grows with rounds).
        assert!(
            report.aborts[P1.index()] > report.rounds / 4,
            "{}: p1 aborts {} vs rounds {}",
            report.tm_name,
            report.aborts[P1.index()],
            report.rounds
        );
    }
}

#[test]
fn generalized_lemma_holds_for_up_to_eight_processes() {
    for n in 2..=8 {
        for mut tm in nonblocking_catalog(n, 1) {
            let mut strategy = RotatingStarver::new(X, n);
            let report = run_game(tm.as_mut(), &mut strategy, GameConfig::steps(12_000));
            assert_eq!(report.commits[0], 0, "{} n={n}", report.tm_name);
            let progressing = report.commits.iter().filter(|&&c| c > 0).count();
            assert_eq!(
                progressing,
                n - 1,
                "{} n={n}: all committers and only committers progress",
                report.tm_name
            );
        }
    }
}

#[test]
fn doubling_steps_doubles_competitor_commits() {
    // Starvation is not transient: p2's commits scale with the budget
    // while p1 stays at zero.
    let mut tm_short = tm_stm::Tl2::new(2, 1);
    let mut tm_long = tm_stm::Tl2::new(2, 1);
    let mut s1 = Algorithm1::new(X);
    let mut s2 = Algorithm1::new(X);
    let short = run_game(&mut tm_short, &mut s1, GameConfig::steps(5_000));
    let long = run_game(&mut tm_long, &mut s2, GameConfig::steps(10_000));
    assert_eq!(short.commits[0], 0);
    assert_eq!(long.commits[0], 0);
    let ratio = long.commits[1] as f64 / short.commits[1] as f64;
    assert!(
        (1.8..=2.2).contains(&ratio),
        "commits should scale linearly, ratio {ratio}"
    );
}

#[test]
fn adversary_cannot_win_against_sequential_specification_itself() {
    // Sanity check of the adversary: if the TM serializes perfectly (the
    // global lock under a cooperative, crash-free driver), Algorithm 1
    // simply blocks — the adversary's power comes from asynchrony, not
    // from the algorithm magically beating correct TMs.
    let mut tm = tm_stm::GlobalLock::new(2, 1);
    let mut adversary = Algorithm1::new(X);
    let report = run_game(&mut tm, &mut adversary, GameConfig::steps(5_000));
    assert_eq!(report.commits, vec![0, 0]);
    assert!(report.stalled_steps > 4_000);
}
