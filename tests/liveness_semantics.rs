//! Integration: the liveness claims of §3.2 for concrete TMs, obtained by
//! *running* them rather than asserting them.
//!
//! * global-lock TM: local progress without faults; total starvation after
//!   a crash (ABL1);
//! * TL2 (deferred updates): others progress through crashes;
//! * TinySTM (encounter-time locks): a crashed lock holder starves
//!   conflicting processes, disjoint ones survive;
//! * DSTM (obstruction-free): solo progress, but livelock under
//!   contention (ABL2).

use tm_core::{ProcessId, TVarId};
use tm_sim::{simulate, Client, ClientScript, FaultPlan, RandomScheduler, RoundRobin, SimConfig};
use tm_stm::{GlobalLock, TinyStm, Tl2};

const P1: ProcessId = ProcessId(0);
const P2: ProcessId = ProcessId(1);
const X: TVarId = TVarId(0);
const Y: TVarId = TVarId(1);

fn increment_clients(n: usize) -> Vec<Client> {
    (0..n)
        .map(|_| Client::new(ClientScript::increment(X)))
        .collect()
}

#[test]
fn global_lock_local_progress_without_faults() {
    // Crash-free and parasitic-free: everyone commits forever (the paper's
    // §3.2.1 possibility result).
    let mut tm = GlobalLock::new(3, 1);
    let mut clients = increment_clients(3);
    let mut sched = RoundRobin::new();
    let report = simulate(
        &mut tm,
        &mut clients,
        &mut sched,
        &FaultPlan::none(),
        SimConfig::steps(3_000).check_opacity(),
    );
    assert!(report.safety_ok);
    for k in 0..3 {
        assert!(
            report.commits[k] > 50,
            "p{} committed only {} times",
            k + 1,
            report.commits[k]
        );
        assert_eq!(report.aborts[k], 0, "the global lock never aborts");
    }
}

#[test]
fn global_lock_crash_starves_everyone_abl1() {
    // One crash while (probably) holding the lock: from that point on,
    // nobody else ever commits again.
    let mut tm = GlobalLock::new(3, 1);
    let mut clients = increment_clients(3);
    let mut sched = RoundRobin::new();
    // Crash p1 at step 4: with round-robin over 3 processes it is mid-
    // transaction and holds the lock.
    let faults = FaultPlan::none().crash(P1, 4);
    let report = simulate(
        &mut tm,
        &mut clients,
        &mut sched,
        &faults,
        SimConfig::steps(3_000),
    );
    let commits_after: usize = report.commit_log.iter().filter(|&&(s, _)| s >= 4).count();
    assert_eq!(
        commits_after, 0,
        "a crashed lock holder must block all further commits"
    );
    assert!(report.stalls.iter().sum::<usize>() > 1_000);
}

#[test]
fn tl2_tolerates_the_same_crash() {
    let mut tm = Tl2::new(3, 1);
    let mut clients = increment_clients(3);
    let mut sched = RoundRobin::new();
    let faults = FaultPlan::none().crash(P1, 4);
    let report = simulate(
        &mut tm,
        &mut clients,
        &mut sched,
        &faults,
        SimConfig::steps(3_000).check_opacity(),
    );
    assert!(report.safety_ok);
    let survivors_commits: usize = report.commits[1] + report.commits[2];
    assert!(
        survivors_commits > 100,
        "deferred updates: survivors must keep committing (got {survivors_commits})"
    );
}

#[test]
fn tinystm_crashed_lock_holder_starves_conflicting_processes() {
    // p1 crashes between acquiring the encounter-time lock on x and
    // committing. p2 (same variable) starves; p3 (disjoint variable)
    // survives — the §3.2.3 distinction between encounter-time and
    // deferred locking.
    let mut tm = TinyStm::new(3, 2);
    let mut clients = vec![
        Client::new(ClientScript::blind_write(X, 9)), // p1: write x then commit
        Client::new(ClientScript::increment(X)),      // p2: conflicts with p1
        Client::new(ClientScript::increment(Y)),      // p3: disjoint
    ];
    let mut sched = RoundRobin::new();
    // Round-robin: step 0 = p1's write(x) invocation (lock acquired);
    // crash p1 at step 3, before its tryC (which would be step 3).
    let faults = FaultPlan::none().crash(P1, 3);
    let report = simulate(
        &mut tm,
        &mut clients,
        &mut sched,
        &faults,
        SimConfig::steps(4_000),
    );
    assert_eq!(report.commits[0], 0, "p1 crashed before committing");
    assert_eq!(
        report.commits[1], 0,
        "p2 must starve behind the orphaned lock"
    );
    assert!(report.aborts[1] > 100, "p2 keeps aborting (timid CM)");
    assert!(report.commits[2] > 100, "p3 is unaffected");
}

#[test]
fn dstm_two_contenders_with_random_schedule_both_progress_sometimes() {
    // Obstruction freedom does not forbid progress — under a random
    // (non-adversarial) schedule contenders usually sneak through.
    let mut tm = tm_stm::Dstm::new(2, 1);
    let mut clients = increment_clients(2);
    let mut sched = RandomScheduler::new(5);
    let report = simulate(
        &mut tm,
        &mut clients,
        &mut sched,
        &FaultPlan::none(),
        SimConfig::steps(4_000).check_opacity(),
    );
    assert!(report.safety_ok);
    assert!(report.commits[0] > 0);
    assert!(report.commits[1] > 0);
}

#[test]
fn parasitic_process_blocks_nobody_on_nonblocking_tms() {
    // A parasitic process keeps a transaction open forever; TL2's
    // deferred, invisible design means others never notice.
    let mut tm = Tl2::new(2, 1);
    let mut clients = increment_clients(2);
    let mut sched = RandomScheduler::new(3);
    let faults = FaultPlan::none().parasitic(P2, 10);
    let report = simulate(
        &mut tm,
        &mut clients,
        &mut sched,
        &faults,
        SimConfig::steps(4_000).check_opacity(),
    );
    assert!(report.safety_ok);
    assert!(report.commits[0] > 100, "p1 unaffected by the parasite");
}

#[test]
fn fault_plan_correctness_matches_simulation_outcome() {
    // The FaultPlan's notion of "correct processes" agrees with who can
    // still commit at the end of a long TL2 run.
    let n = 4;
    let faults = FaultPlan::none()
        .crash(ProcessId(1), 50)
        .parasitic(ProcessId(2), 60);
    let correct = faults.correct_processes(n);
    assert_eq!(correct, vec![ProcessId(0), ProcessId(3)]);

    let mut tm = Tl2::new(n, 1);
    let mut clients = increment_clients(n);
    let mut sched = RandomScheduler::new(8);
    let report = simulate(
        &mut tm,
        &mut clients,
        &mut sched,
        &faults,
        SimConfig::steps(6_000),
    );
    let tail = report.progressing_since(3_000);
    assert_eq!(tail, correct);
}
