//! Differential and decomposition suites for the online certification
//! pipeline (sharded recorder → chunker → parallel certifier).
//!
//! Two equalities are pinned:
//!
//! 1. **online == offline** — on real multi-threaded executions across
//!    the concurrent catalogue (TL2, NOrec, global-lock) plus the
//!    seeded-buggy lost-update TM, the pipeline's chunked verdict must
//!    equal the offline [`IncrementalChecker`] run over the *same*
//!    merged history in one piece. The correct TMs must certify opaque
//!    and the buggy TM must be flagged — by both sides.
//! 2. **chunked == whole** — for random synthetic histories (valid and
//!    corrupted), cutting at quiescent points with conflict-component
//!    splits and frontier seeding must not change the verdict, for any
//!    chunking granularity.

use tm_core::{Event, ProcessId, TVarId, INITIAL_VALUE};
use tm_safety::{IncrementalChecker, Mode};
use tm_sim::{
    certify_chunk, certify_workload, Chunker, OnlineConfig, OnlineViolation, OnlineWorkload,
};
use tm_stm::concurrent::{ConcurrentBuggy, ConcurrentGlobalLock, ConcurrentNOrec, ConcurrentTl2};

fn online_config(seed: u64) -> OnlineConfig {
    // Vary the chunking shape with the seed so the suite exercises
    // different epoch/segment granularities.
    OnlineConfig {
        epoch_events: [64, 256, 1024][(seed % 3) as usize],
        min_chunk_events: [1, 16, 128][((seed / 3) % 3) as usize],
        keep_history: true,
        ..OnlineConfig::default()
    }
}

fn workload(seed: u64, threads: usize) -> OnlineWorkload {
    OnlineWorkload {
        threads,
        accounts: 6,
        txs_per_thread: 400,
        seed,
    }
}

/// Offline verdict: one checker over the whole merged history.
fn offline_violation(history: &[Event]) -> Option<usize> {
    let mut checker = IncrementalChecker::new(Mode::Opacity);
    checker
        .push_all(history.iter().copied())
        .err()
        .map(|v| v.position)
}

#[test]
fn online_equals_offline_on_correct_tms() {
    for seed in 0..6u64 {
        for threads in [1usize, 3] {
            let wl = workload(0xd1ff ^ seed, threads);
            let run = |name: &str| match name {
                "tl2" => certify_workload(ConcurrentTl2::new(6), &wl, online_config(seed)),
                "norec" => certify_workload(ConcurrentNOrec::new(6), &wl, online_config(seed)),
                "global-lock" => {
                    certify_workload(ConcurrentGlobalLock::new(6), &wl, online_config(seed))
                }
                _ => unreachable!(),
            };
            for name in ["tl2", "norec", "global-lock"] {
                let report = run(name);
                assert!(
                    report.certified_opaque(),
                    "{name} (seed {seed}, {threads} threads) flagged online: {:?}",
                    report.violation
                );
                let history = report.history.as_ref().expect("keep_history");
                assert!(history.is_well_formed(), "{name}: merged history malformed");
                assert_eq!(
                    offline_violation(history.events()),
                    None,
                    "{name} (seed {seed}): offline checker disagrees with online verdict"
                );
            }
        }
    }
}

#[test]
fn online_equals_offline_on_seeded_buggy_tm() {
    for seed in 0..4u64 {
        for threads in [1usize, 2] {
            let wl = OnlineWorkload {
                threads,
                accounts: 2,
                txs_per_thread: 50,
                seed: 0xb066 ^ seed,
            };
            // Drop a commit in the middle of the run; transfer/audit
            // read-modify-write transactions re-read the dropped value,
            // so the divergence is certifier-visible.
            let drop_at = 10 + seed * 7;
            let report =
                certify_workload(ConcurrentBuggy::new(2, drop_at), &wl, online_config(seed));
            let online = report.violation.clone();
            let history = report.history.as_ref().expect("keep_history");
            let offline = offline_violation(history.events());
            assert!(
                online.is_some(),
                "seed {seed}, {threads} threads: lost update escaped the online pipeline"
            );
            assert!(
                offline.is_some(),
                "seed {seed}, {threads} threads: lost update escaped the offline checker"
            );
            // Both sides must point at the same event: the chunk's
            // stamps recover the global position of the offline find.
            let online_seq = online.expect("checked above").seq;
            let offline_pos = offline.expect("checked above") as u64;
            assert_eq!(
                online_seq, offline_pos,
                "seed {seed}: online and offline locate different events"
            );
        }
    }
}

#[test]
fn drop_at_zero_buggy_tm_is_certified_opaque() {
    // The canary's correct configuration must *not* be flagged —
    // detection is about the seeded defect, not the TM's shape.
    let wl = workload(0xc0de, 2);
    let report = certify_workload(ConcurrentBuggy::new(6, 0), &wl, online_config(1));
    assert!(report.certified_opaque(), "{:?}", report.violation);
}

// ---------------------------------------------------------------------
// Decomposition property: chunked == whole on random histories.
// ---------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Default)]
struct OpenTx {
    writes: Vec<(usize, u64)>,
    /// Read set as emitted: (variable, value the response carried).
    reads: Vec<(usize, u64)>,
}

/// Generates a complete history of ~`txs` transactions over `procs`
/// processes and `tvars` variables, mimicking a commit-time-validating
/// TM: reads return the *current* committed value (or the local write
/// buffer), and a transaction whose read set has been overwritten by a
/// later commit is forced to abort — both before issuing further reads
/// (so every prefix of its reads is consistent at the slot of its last
/// read) and at its commit attempt. Uncorrupted histories are therefore
/// certifiable by the commit-order checker. With `corrupt`, ~1/16 reads
/// return an off-by-1000 value, seeding violations at known events.
/// Transactions interleave (up to `procs` open at once), so quiescent
/// points are sparse and conflict-component splits real.
fn random_history(seed: u64, corrupt: bool) -> Vec<Event> {
    let (procs, tvars, txs) = (4usize, 5usize, 120u64);
    let mut rng = Rng(seed | 1);
    let mut committed = vec![INITIAL_VALUE; tvars];
    let mut events = Vec::new();
    let mut open: Vec<(usize, OpenTx)> = Vec::new();
    let mut started = 0u64;
    let mut free: Vec<usize> = (0..procs).collect();
    let terminate = |events: &mut Vec<Event>,
                     committed: &mut Vec<u64>,
                     free: &mut Vec<usize>,
                     p: usize,
                     tx: OpenTx,
                     force_abort: bool,
                     coin: u64| {
        let process = ProcessId(p);
        let valid = tx.reads.iter().all(|&(x, v)| committed[x] == v);
        events.push(Event::try_commit(process));
        if force_abort || !valid || coin == 0 {
            events.push(Event::aborted(process));
        } else {
            for &(x, v) in &tx.writes {
                committed[x] = v;
            }
            events.push(Event::committed(process));
        }
        free.push(p);
    };
    while started < txs || !open.is_empty() {
        let can_open = started < txs && !free.is_empty();
        if open.is_empty() || (can_open && rng.below(3) == 0) {
            if !can_open {
                break;
            }
            let p = free.swap_remove(rng.below(free.len() as u64) as usize);
            open.push((p, OpenTx::default()));
            started += 1;
            continue;
        }
        let slot = rng.below(open.len() as u64) as usize;
        let p = open[slot].0;
        let process = ProcessId(p);
        let x = rng.below(tvars as u64) as usize;
        match rng.below(4) {
            0 | 1 => {
                // A transaction whose read set was overwritten must not
                // read further — a fresh read could be inconsistent
                // with every candidate slot. Mimic a validating TM and
                // abort it instead.
                let stale = open[slot].1.reads.iter().any(|&(y, v)| committed[y] != v);
                if stale {
                    let (p, tx) = open.swap_remove(slot);
                    terminate(&mut events, &mut committed, &mut free, p, tx, true, 1);
                    continue;
                }
                let local = open[slot].1.writes.iter().rev().find(|&&(y, _)| y == x);
                let from_store = local.is_none();
                let mut v = local.map_or(committed[x], |&(_, v)| v);
                if corrupt && rng.below(16) == 0 {
                    v = v.wrapping_add(1000);
                }
                events.push(Event::read(process, TVarId(x)));
                events.push(Event::value(process, v));
                if from_store {
                    open[slot].1.reads.push((x, v));
                }
            }
            2 => {
                let v = rng.below(90);
                events.push(Event::write(process, TVarId(x), v));
                events.push(Event::ok(process));
                open[slot].1.writes.push((x, v));
            }
            _ => {
                let coin = rng.below(4);
                let (p, tx) = open.swap_remove(slot);
                terminate(&mut events, &mut committed, &mut free, p, tx, false, coin);
            }
        }
    }
    events
}

/// Chunked verdict over a synthetic history: push every event through
/// the chunker at the given granularity, certify each chunk, fold by
/// smallest sequence stamp.
fn chunked_violation(history: &[Event], min_segment: usize) -> Option<OnlineViolation> {
    let mut chunker = Chunker::new(min_segment);
    let mut chunks = Vec::new();
    for (i, &event) in history.iter().enumerate() {
        chunker.push(i as u64, event, &mut chunks);
    }
    chunker.finish(&mut chunks);
    chunks
        .iter()
        .filter_map(|chunk| certify_chunk(Mode::Opacity, chunk))
        .min_by_key(|v| v.seq)
}

#[test]
fn chunked_certification_agrees_with_whole_history() {
    let mut checked = 0u32;
    for seed in 1..=40u64 {
        for corrupt in [false, true] {
            let history = random_history(seed.wrapping_mul(0x9e37_79b9), corrupt);
            let whole = offline_violation(&history);
            for min_segment in [1usize, 7, 64, 1 << 20] {
                let chunked = chunked_violation(&history, min_segment);
                assert_eq!(
                    whole.map(|p| p as u64),
                    chunked.as_ref().map(|v| v.seq),
                    "seed {seed} corrupt {corrupt} min_segment {min_segment}: \
                     whole-history and chunked verdicts disagree"
                );
                checked += 1;
            }
            if !corrupt {
                assert_eq!(whole, None, "uncorrupted random history must certify");
            }
        }
    }
    assert_eq!(checked, 320);
}
