//! Property-based tests across the workspace (proptest).
//!
//! * checker soundness: the commit-order certifier never accepts a
//!   history the exact checker rejects;
//! * opacity ⇒ strict serializability on random histories;
//! * every STM in the catalogue produces opaque histories under random
//!   schedules and workloads;
//! * committed effects of every STM equal a serial execution of its
//!   committed transactions;
//! * the Figure 2 classification lattice holds for random lassos.

use proptest::prelude::*;

use tm_core::{Event, History, ProcessId, TVarId};
use tm_liveness::{classify, InfiniteHistory, ProcessClass};
use tm_safety::{
    check_opacity, check_strict_serializability, IncrementalChecker, Mode, SafetyVerdict,
};
use tm_sim::{simulate, Client, FaultPlan, RandomScheduler, SimConfig, WorkloadConfig};
use tm_stm::{nonblocking_catalog, Recorded, SteppedTm};

/// A generator of small arbitrary (well-formed) histories: a sequence of
/// per-process actions mapped onto complete operations with arbitrary
/// response values — deliberately *not* produced by any TM, so both
/// checker verdicts occur.
fn arb_history() -> impl Strategy<Value = History> {
    let op = (0..3usize, 0..2usize, 0..3u64, 0..4u8);
    proptest::collection::vec(op, 0..12).prop_map(|ops| {
        let mut h = History::new();
        for (p, x, v, kind) in ops {
            let p = ProcessId(p);
            let x = TVarId(x);
            match kind {
                0 => {
                    h.push(Event::read(p, x));
                    h.push(Event::value(p, v));
                }
                1 => {
                    h.push(Event::write(p, x, v));
                    h.push(Event::ok(p));
                }
                2 => {
                    h.push(Event::try_commit(p));
                    h.push(Event::committed(p));
                }
                _ => {
                    h.push(Event::try_commit(p));
                    h.push(Event::aborted(p));
                }
            }
        }
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_histories_are_well_formed(h in arb_history()) {
        prop_assert!(h.is_well_formed());
    }

    #[test]
    fn commit_order_certifier_is_sound(h in arb_history()) {
        let mut fast = IncrementalChecker::new(Mode::Opacity);
        if fast.push_all(h.iter().copied()).is_ok() {
            // The certifier accepted: the exact checker must agree.
            let exact_agrees = matches!(check_opacity(&h), Ok(SafetyVerdict::Satisfied { .. }));
            prop_assert!(exact_agrees);
        }
    }

    #[test]
    fn opacity_implies_strict_serializability(h in arb_history()) {
        if check_opacity(&h).unwrap().holds() {
            prop_assert!(check_strict_serializability(&h).unwrap().holds());
        }
    }

    #[test]
    fn completion_is_idempotent_and_complete(h in arb_history()) {
        let c = h.complete();
        prop_assert!(c.is_complete());
        prop_assert_eq!(c.complete(), c.clone());
        prop_assert!(c.is_well_formed());
    }

    #[test]
    fn projection_partitions_events(h in arb_history()) {
        let total: usize = h.processes().iter().map(|&p| h.project(p).len()).sum();
        prop_assert_eq!(total, h.len());
    }

    #[test]
    fn every_catalog_tm_is_opaque_under_random_load(
        seed in 0u64..500,
        write_fraction in 0.1f64..0.9,
    ) {
        let config = WorkloadConfig {
            tvars: 3,
            min_ops: 1,
            max_ops: 4,
            write_fraction,
            value_range: 5,
        };
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for mut tm in nonblocking_catalog(3, 3) {
            let mut clients: Vec<Client> = (0..3)
                .map(|_| Client::new(tm_sim::random_script(&config, &mut rng)))
                .collect();
            let mut sched = RandomScheduler::new(seed.wrapping_mul(31));
            let report = simulate(
                tm.as_mut(),
                &mut clients,
                &mut sched,
                &FaultPlan::none(),
                SimConfig::steps(300).check_opacity(),
            );
            prop_assert!(
                report.safety_ok,
                "{}: {:?}", report.tm_name, report.safety_violation
            );
        }
    }

    #[test]
    fn committed_effects_match_serial_execution(seed in 0u64..200) {
        // Record a run of each TM, then check that the final committed
        // values equal the serial replay of committed transactions in the
        // witness order found by the exact checker.
        use rand::SeedableRng;
        let config = WorkloadConfig { tvars: 2, min_ops: 1, max_ops: 3, write_fraction: 0.6, value_range: 4 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for tm in nonblocking_catalog(2, 2) {
            let mut recorded = Recorded::new(FatBox(tm));
            let mut clients: Vec<Client> = (0..2)
                .map(|_| Client::new(tm_sim::random_script(&config, &mut rng)))
                .collect();
            let mut sched = RandomScheduler::new(seed.wrapping_add(7));
            let _ = simulate(
                &mut recorded,
                &mut clients,
                &mut sched,
                &FaultPlan::none(),
                SimConfig::steps(120),
            );
            let history = recorded.history();
            if let Ok(SafetyVerdict::Satisfied { witness }) = check_opacity(history) {
                // Serial replay in witness order must be legal.
                let completed = history.complete();
                let txs = completed.transactions();
                let ordered: Vec<_> = witness
                    .iter()
                    .map(|id| txs.iter().find(|t| t.id == *id).unwrap().clone())
                    .collect();
                prop_assert!(tm_core::sequential::check_transactions_legality(&ordered).is_legal());
            } else {
                prop_assert!(false, "{}: history not opaque", recorded.name());
            }
        }
    }

    #[test]
    fn lasso_classification_lattice(
        p1_in_cycle in proptest::bool::ANY,
        p1_commits in proptest::bool::ANY,
        p1_aborts in proptest::bool::ANY,
    ) {
        // Random lasso over one process: Figure 2's implications hold.
        use tm_core::HistoryBuilder;
        let p = ProcessId(0);
        let x = TVarId(0);
        let prefix = HistoryBuilder::new().read(p, x, 0).build().unwrap();
        let mut b = HistoryBuilder::new();
        // Always include a second process so the cycle is non-empty.
        b.read(ProcessId(1), x, 0);
        if p1_in_cycle {
            b.read(p, x, 0);
            if p1_commits {
                b.commit(p);
            }
            if p1_aborts {
                b.abort_on_try_commit(p);
            }
        }
        let cycle = b.build().unwrap();
        let Ok(h) = InfiniteHistory::new(prefix, cycle) else {
            // Open transaction crossing the boundary is fine; builder
            // combinations are always valid here.
            return Ok(());
        };
        let class = classify(&h, p);
        match class {
            ProcessClass::Crashed => {
                prop_assert!(!p1_in_cycle);
                prop_assert!(tm_liveness::is_faulty(&h, p));
                prop_assert!(tm_liveness::is_pending(&h, p));
            }
            ProcessClass::Parasitic => {
                prop_assert!(p1_in_cycle && !p1_commits && !p1_aborts);
                prop_assert!(tm_liveness::is_faulty(&h, p));
            }
            ProcessClass::Starving => {
                prop_assert!(p1_in_cycle && !p1_commits && p1_aborts);
                prop_assert!(tm_liveness::is_correct(&h, p));
                prop_assert!(tm_liveness::is_pending(&h, p));
            }
            ProcessClass::Progressing => {
                prop_assert!(p1_in_cycle && p1_commits);
                prop_assert!(tm_liveness::is_correct(&h, p));
                prop_assert!(!tm_liveness::is_pending(&h, p));
            }
            ProcessClass::Absent => prop_assert!(false, "p1 appears in the prefix"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lasso_unroll_detect_round_trip(
        repeats in 3usize..8,
        commits_p1 in proptest::bool::ANY,
        aborts_p2 in proptest::bool::ANY,
    ) {
        // Build a lasso, unroll it, re-detect: the classification of every
        // process must survive the round trip (the detected period may be
        // a divisor-rotation of the original, which preserves all
        // classifications).
        use tm_core::HistoryBuilder;
        use tm_liveness::{classify, detect_lasso, InfiniteHistory};
        let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
        let mut b = HistoryBuilder::new();
        b.read(p1, x, 0);
        if commits_p1 {
            b.commit(p1);
        } else {
            b.abort_on_try_commit(p1);
        }
        b.read(p2, x, 0);
        if aborts_p2 {
            b.abort_on_try_commit(p2);
        } else {
            b.commit(p2);
        }
        let cycle = b.build().unwrap();
        let original = InfiniteHistory::new(tm_core::History::new(), cycle).unwrap();
        let unrolled = original.unroll(repeats);
        let detected = detect_lasso(&unrolled, repeats.min(3)).expect("periodic by construction");
        for p in [p1, p2] {
            prop_assert_eq!(classify(&original, p), classify(&detected, p));
        }
    }

    #[test]
    fn priority_fgp_is_opaque_and_shields_under_random_schedules(
        seed in 0u64..300,
        top in 0usize..3,
    ) {
        // PriorityFgp with a random top-priority process: opaque under
        // random scheduling, and the top process commits whenever it is
        // scheduled often enough.
        let mut priorities = vec![1u32; 3];
        priorities[top] = 2;
        let mut tm = tm_stm::PriorityFgp::new(priorities, 2);
        let mut clients: Vec<Client> = (0..3)
            .map(|_| Client::new(tm_sim::ClientScript::increment(TVarId(0))))
            .collect();
        let mut sched = RandomScheduler::new(seed);
        let report = simulate(
            &mut tm,
            &mut clients,
            &mut sched,
            &FaultPlan::none(),
            SimConfig::steps(600).check_opacity(),
        );
        prop_assert!(report.safety_ok, "{:?}", report.safety_violation);
        prop_assert!(
            report.commits[top] > 0,
            "top-priority process committed nothing: {:?}",
            report.commits
        );
    }
}

/// Adapter: `Recorded` needs a sized `SteppedTm`; wrap the boxed TM.
struct FatBox(tm_stm::BoxedTm);

impl SteppedTm for FatBox {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn process_count(&self) -> usize {
        self.0.process_count()
    }
    fn tvar_count(&self) -> usize {
        self.0.tvar_count()
    }
    fn invoke(&mut self, p: ProcessId, inv: tm_core::Invocation) -> tm_stm::Outcome {
        self.0.invoke(p, inv)
    }
    fn poll(&mut self, p: ProcessId) -> Option<tm_core::Response> {
        self.0.poll(p)
    }
    fn has_pending(&self, p: ProcessId) -> bool {
        self.0.has_pending(p)
    }
    fn fork(&self) -> tm_stm::BoxedTm {
        Box::new(FatBox(self.0.fork()))
    }
}
