//! Differential suite for source-set DPOR: the equivalence-class-pruned
//! explorer must agree with sleep-sets-only pruning and with the plain
//! prefix-sharing DFS on every **verdict** across the catalogue —
//! including the seeded-buggy literal `Fgp`, where each DPOR-reported
//! violation must be a schedule the unreduced explorer reports verbatim
//! — while executing strictly fewer schedules wherever a TM's conflict
//! oracle admits any independence. The liveness checker's reduction is
//! held to the stronger bar: byte-identical graphs, lassos and
//! starvation verdicts.

use tm_core::{ProcessId, TVarId};
use tm_sim::{explore_with, livecheck, ClientScript, ExploreConfig, LivecheckConfig, PlannedOp};
use tm_stm::{BoxedTm, Dstm, FgpTm, GlobalLock, NOrec, Ostm, SwissTm, TinyStm, Tl2};

use tm_automata::FgpVariant;

const X: TVarId = TVarId(0);
const Y: TVarId = TVarId(1);

type Factory = Box<dyn Fn() -> BoxedTm>;

/// The **whole** catalogue (every refined conflict oracle, including
/// the intricate ones: TinySTM's undo-log rollback, SwissTM's greedy-CM
/// ages, OSTM's per-object versions), the blocking global-lock TM, and
/// the seeded-buggy literal `Fgp`.
fn factories(processes: usize, tvars: usize) -> Vec<(&'static str, Factory)> {
    vec![
        (
            "fgp",
            Box::new(move || Box::new(FgpTm::new(processes, tvars, FgpVariant::CpOnly)) as BoxedTm)
                as Factory,
        ),
        (
            "tl2",
            Box::new(move || Box::new(Tl2::new(processes, tvars)) as BoxedTm),
        ),
        (
            "norec",
            Box::new(move || Box::new(NOrec::new(processes, tvars)) as BoxedTm),
        ),
        (
            "tinystm",
            Box::new(move || Box::new(TinyStm::new(processes, tvars)) as BoxedTm),
        ),
        (
            "swisstm",
            Box::new(move || Box::new(SwissTm::new(processes, tvars)) as BoxedTm),
        ),
        (
            "ostm",
            Box::new(move || Box::new(Ostm::new(processes, tvars)) as BoxedTm),
        ),
        (
            "dstm",
            Box::new(move || Box::new(Dstm::new(processes, tvars)) as BoxedTm),
        ),
        (
            "global-lock",
            Box::new(move || Box::new(GlobalLock::new(processes, tvars)) as BoxedTm),
        ),
        (
            "fgp-literal",
            Box::new(move || tm_stm::literal_fgp(processes, tvars)),
        ),
    ]
}

fn contended_scripts() -> Vec<ClientScript> {
    vec![
        ClientScript::increment(X),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 5)]),
    ]
}

#[test]
fn dpor_verdicts_match_plain_and_sleep_sets_across_the_catalogue() {
    let scripts = contended_scripts();
    let mut buggy_caught = false;
    for (name, factory) in factories(2, 1) {
        let plain = explore_with(&*factory, &scripts, &ExploreConfig::new(8).sequential());
        let sleep = explore_with(
            &*factory,
            &scripts,
            &ExploreConfig::new(8).sequential().with_sleep_sets(),
        );
        let dpor = explore_with(
            &*factory,
            &scripts,
            &ExploreConfig::new(8).sequential().with_dpor(),
        );
        assert_eq!(plain.schedules, 1 << 8, "{name}");
        assert_eq!(
            plain.all_opaque(),
            sleep.all_opaque(),
            "{name}: sleep sets changed the verdict"
        );
        assert_eq!(
            plain.all_opaque(),
            dpor.all_opaque(),
            "{name}: DPOR changed the verdict"
        );
        // DPOR explores a subset of real schedules: every violation it
        // reports must appear in the plain explorer's list verbatim
        // (schedule, history, detail and shortest failing prefix).
        for violation in &dpor.violations {
            assert!(
                plain.violations.contains(violation),
                "{name}: DPOR reported a violation the full exploration lacks: {violation:?}"
            );
        }
        assert!(
            dpor.schedules <= plain.schedules,
            "{name}: DPOR may never execute more schedules than the full tree"
        );
        if name == "fgp-literal" {
            assert!(
                !dpor.all_opaque() && !dpor.violations.is_empty(),
                "DPOR must still catch the literal-Fgp leak"
            );
            buggy_caught = true;
        }
    }
    assert!(buggy_caught);
}

#[test]
fn dpor_executes_strictly_fewer_schedules_at_three_processes() {
    // The headline reduction claim: at 3 processes the class structure is
    // rich enough that DPOR must beat both plain DFS and sleep sets
    // strictly, for every TM whose oracle admits any independence.
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::increment(X),
        ClientScript::read_both(X, Y),
    ];
    for (name, factory) in factories(3, 2) {
        if name == "global-lock" {
            continue; // audited all-conflicting oracle: no reduction, by design
        }
        let sleep = explore_with(
            &*factory,
            &scripts,
            &ExploreConfig::new(7).sequential().with_sleep_sets(),
        );
        let dpor = explore_with(
            &*factory,
            &scripts,
            &ExploreConfig::new(7).sequential().with_dpor(),
        );
        assert!(
            dpor.schedules < sleep.schedules,
            "{name}: DPOR ({}) must beat sleep sets ({})",
            dpor.schedules,
            sleep.schedules
        );
        assert_eq!(
            sleep.all_opaque(),
            dpor.all_opaque(),
            "{name}: verdicts diverged"
        );
    }
}

#[test]
fn conservative_oracles_degenerate_to_report_identical_full_exploration() {
    // The global-lock TM's audited oracle conflicts on every pair of
    // steps, so the DPOR walk must visit every schedule and reproduce
    // the plain DFS report byte for byte.
    let scripts = contended_scripts();
    let plain = explore_with(
        || Box::new(GlobalLock::new(2, 1)) as BoxedTm,
        &scripts,
        &ExploreConfig::new(8).sequential(),
    );
    let dpor = explore_with(
        || Box::new(GlobalLock::new(2, 1)) as BoxedTm,
        &scripts,
        &ExploreConfig::new(8).sequential().with_dpor(),
    );
    assert_eq!(plain, dpor);
}

#[test]
fn dpor_composes_with_dedup_and_the_parallel_frontier() {
    let scripts = contended_scripts();
    for (name, factory) in factories(2, 1) {
        let base = explore_with(
            &*factory,
            &scripts,
            &ExploreConfig::new(9).sequential().with_dpor(),
        );
        let deduped = explore_with(
            &*factory,
            &scripts,
            &ExploreConfig::new(9).sequential().with_dpor().with_dedup(),
        );
        assert_eq!(
            base.report(),
            deduped.report(),
            "{name}: dedup changed the DPOR report"
        );
        for split in [2, 4] {
            let par = explore_with(
                &*factory,
                &scripts,
                &ExploreConfig::new(9).with_split_depth(split).with_dpor(),
            );
            assert_eq!(
                base.all_opaque(),
                par.all_opaque(),
                "{name}: parallel DPOR changed the verdict at split {split}"
            );
            for violation in &par.violations {
                assert!(
                    !base.all_opaque(),
                    "{name}: parallel DPOR invented a violation at split {split}: {violation:?}"
                );
            }
        }
    }
}

#[test]
fn dpor_catches_the_leak_on_disjoint_variables_too() {
    // The non-vacuous cross-variable case from the sleep-set suite: Fgp
    // conflicts are CP-membership-based, not variable-based, so the
    // literal leak must survive aggressive same-and-cross-variable
    // reduction.
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::new(vec![PlannedOp::Read(Y), PlannedOp::Write(Y, 5)]),
    ];
    let dpor = explore_with(
        || tm_stm::literal_fgp(2, 2),
        &scripts,
        &ExploreConfig::new(9).sequential().with_dpor(),
    );
    assert!(
        !dpor.all_opaque(),
        "DPOR must preserve the cross-variable violation verdict"
    );
}

#[test]
fn optimal_dpor_verdicts_and_violation_subset_across_the_catalogue() {
    // The wakeup-tree walk is held to the same differential bar as
    // source sets — verdict parity with plain DFS on all nine TMs and a
    // verbatim violation subset on the seeded-buggy literal Fgp — plus
    // the optimality ordering: never more executed schedules than the
    // source-set walk.
    let scripts = contended_scripts();
    let mut buggy_caught = false;
    for (name, factory) in factories(2, 1) {
        let plain = explore_with(&*factory, &scripts, &ExploreConfig::new(8).sequential());
        let dpor = explore_with(
            &*factory,
            &scripts,
            &ExploreConfig::new(8).sequential().with_dpor(),
        );
        let optimal = explore_with(
            &*factory,
            &scripts,
            &ExploreConfig::new(8).sequential().with_optimal_dpor(),
        );
        assert_eq!(
            plain.all_opaque(),
            optimal.all_opaque(),
            "{name}: optimal DPOR changed the verdict"
        );
        for violation in &optimal.violations {
            assert!(
                plain.violations.contains(violation),
                "{name}: optimal DPOR reported a violation the full exploration lacks: \
                 {violation:?}"
            );
        }
        assert!(
            optimal.schedules <= dpor.schedules,
            "{name}: optimal DPOR ({}) may never execute more than source sets ({})",
            optimal.schedules,
            dpor.schedules
        );
        if name == "fgp-literal" {
            assert!(
                !optimal.all_opaque() && !optimal.violations.is_empty(),
                "optimal DPOR must still catch the literal-Fgp leak"
            );
            buggy_caught = true;
        }
    }
    assert!(buggy_caught);
}

#[test]
fn optimal_dpor_executes_at_most_one_schedule_per_class() {
    // The optimality oracle: replay every schedule the wakeup-tree walk
    // executed and reduce it to its class's canonical normal form — the
    // images must be pairwise distinct (at most one execution per
    // Mazurkiewicz class), bounded by the brute-force class count, and
    // no larger than the source-set walk's executed count. The absolute
    // counts are pinned so a regression in either direction (lost
    // coverage or lost reduction) fails loudly.
    use std::collections::HashSet;
    use tm_sim::{mazurkiewicz_classes, schedule_normal_form};
    let table: &[(usize, usize, usize)] = &[(2, 8, 33), (3, 6, 37)];
    for &(procs, depth, expected) in table {
        let scripts: Vec<ClientScript> = (0..procs)
            .map(|i| {
                if i == 2 {
                    ClientScript::read_both(X, Y)
                } else {
                    ClientScript::increment(X)
                }
            })
            .collect();
        let tvars = if procs > 2 { 2 } else { 1 };
        let factory = move || Box::new(FgpTm::new(procs, tvars, FgpVariant::CpOnly)) as BoxedTm;
        let optimal = explore_with(
            factory,
            &scripts,
            &ExploreConfig::new(depth)
                .sequential()
                .with_optimal_dpor()
                .with_schedule_log(),
        );
        assert!(optimal.all_opaque());
        assert_eq!(
            optimal.schedule_log.len(),
            optimal.schedules,
            "{procs}p depth {depth}: the log must record every executed schedule"
        );
        let normals: HashSet<Vec<u8>> = optimal
            .schedule_log
            .iter()
            .map(|s| schedule_normal_form(factory, &scripts, s))
            .collect();
        assert_eq!(
            normals.len(),
            optimal.schedules,
            "{procs}p depth {depth}: two executed schedules share a Mazurkiewicz class"
        );
        let classes = mazurkiewicz_classes(factory, &scripts, depth);
        assert!(
            optimal.schedules <= classes,
            "{procs}p depth {depth}: executed {} exceeds the {} classes",
            optimal.schedules,
            classes
        );
        let dpor = explore_with(
            factory,
            &scripts,
            &ExploreConfig::new(depth).sequential().with_dpor(),
        );
        assert!(
            optimal.schedules <= dpor.schedules,
            "{procs}p depth {depth}: optimal ({}) exceeded source sets ({})",
            optimal.schedules,
            dpor.schedules
        );
        assert_eq!(
            optimal.schedules, expected,
            "{procs}p depth {depth}: pinned executed-schedule count moved"
        );
    }
}

#[test]
fn optimal_dpor_never_starts_a_sleep_blocked_execution() {
    // The headline optimality property, as telemetry: in optimal mode
    // `SleepBlockedExecutions` — wakeup-tree edges popped with their
    // head asleep — is exactly zero on every TM and shape, while the
    // source-set walk's analogue (backtrack branches its sleep set
    // suppressed) is demonstrably nonzero on the same 3-process
    // workload. Together: the redundancy source sets schedule-and-drop
    // is real, and wakeup trees never schedule it.
    use tm_telemetry::{Counter, Telemetry};
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::increment(X),
        ClientScript::read_both(X, Y),
    ];
    for (name, factory) in factories(3, 2) {
        let telemetry = Telemetry::counters();
        explore_with(
            &*factory,
            &scripts,
            &ExploreConfig::new(6)
                .sequential()
                .with_optimal_dpor()
                .with_telemetry(&telemetry),
        );
        assert_eq!(
            telemetry.snapshot().get(Counter::SleepBlockedExecutions),
            0,
            "{name}: optimal DPOR started a redundant execution"
        );
    }
    let source_telemetry = Telemetry::counters();
    explore_with(
        || Box::new(FgpTm::new(3, 2, FgpVariant::CpOnly)) as BoxedTm,
        &scripts,
        &ExploreConfig::new(6)
            .sequential()
            .with_dpor()
            .with_telemetry(&source_telemetry),
    );
    assert!(
        source_telemetry
            .snapshot()
            .get(Counter::SleepBlockedExecutions)
            > 0,
        "the source-set walk must suppress some backtrack branches here \
         (otherwise the comparison is vacuous)"
    );
}

#[test]
fn optimal_dpor_is_deterministic_across_rayon_thread_counts() {
    // With the split depth pinned, the parallel wakeup-tree walk's
    // report — executed schedules, fallbacks, violations, in merge
    // order — must be byte-identical at any worker count.
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::increment(X),
        ClientScript::read_both(X, Y),
    ];
    let run_at = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            explore_with(
                || Box::new(FgpTm::new(3, 2, FgpVariant::CpOnly)) as BoxedTm,
                &scripts,
                &ExploreConfig::new(7)
                    .with_split_depth(2)
                    .with_optimal_dpor(),
            )
        })
    };
    let baseline = run_at(1);
    assert!(baseline.all_opaque());
    for threads in [2, 4] {
        assert_eq!(baseline, run_at(threads), "{threads} threads");
    }
}

#[test]
fn optimal_dpor_degenerates_to_full_exploration_for_conservative_oracles() {
    // Same bar as the source-set walk: the global-lock TM's audited
    // oracle conflicts on every pair, so wakeup trees must reproduce the
    // plain DFS report byte for byte.
    let scripts = contended_scripts();
    let plain = explore_with(
        || Box::new(GlobalLock::new(2, 1)) as BoxedTm,
        &scripts,
        &ExploreConfig::new(8).sequential(),
    );
    let optimal = explore_with(
        || Box::new(GlobalLock::new(2, 1)) as BoxedTm,
        &scripts,
        &ExploreConfig::new(8).sequential().with_optimal_dpor(),
    );
    assert_eq!(plain, optimal);
}

#[test]
fn livecheck_reduction_is_byte_identical_across_the_catalogue() {
    // The liveness reduction's bar is stricter than the safety
    // explorer's: the state graph, every lasso and every certified
    // starvation verdict must be unchanged — only TM executions drop.
    let scripts = vec![
        ClientScript::new(vec![PlannedOp::Write(X, 1)]),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
    ];
    for (name, factory) in factories(2, 1) {
        let plain = livecheck(&*factory, &scripts, &LivecheckConfig::new(12));
        let reduced = livecheck(
            &*factory,
            &scripts,
            &LivecheckConfig::new(12).with_reduction(),
        );
        assert_eq!(plain.states, reduced.states, "{name}: states diverged");
        assert_eq!(plain.edges, reduced.edges, "{name}: edges diverged");
        assert_eq!(
            plain.cycles_detected, reduced.cycles_detected,
            "{name}: cycle counts diverged"
        );
        assert_eq!(
            plain.lassos.len(),
            reduced.lassos.len(),
            "{name}: lasso sets diverged"
        );
        for (a, b) in plain.lassos.iter().zip(&reduced.lassos) {
            assert_eq!(a.schedule_prefix, b.schedule_prefix, "{name}");
            assert_eq!(a.schedule_cycle, b.schedule_cycle, "{name}");
            assert_eq!(a.classes, b.classes, "{name}");
        }
        assert_eq!(
            plain.verdicts, reduced.verdicts,
            "{name}: verdicts diverged"
        );
        assert_eq!(
            plain.lasso_starvation_free(),
            reduced.lasso_starvation_free(),
            "{name}"
        );
        // Conservation: every edge walk is executed once or replayed.
        assert_eq!(
            plain.steps,
            reduced.steps + reduced.replayed_steps,
            "{name}: step accounting broke"
        );
        assert!(
            reduced.replayed_steps > 0,
            "{name}: the reduction never fired at depth 12"
        );
    }
}

#[test]
fn parasitic_starvation_analysis_survives_both_reductions() {
    // Figure 12's parasitic-reader shape, end to end: the DPOR safety
    // sweep stays opaque and the reduced livecheck still certifies the
    // parasitic cycle.
    let scripts = vec![
        ClientScript::new(vec![PlannedOp::Read(X)]),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
    ];
    let factory = || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm;
    let sweep = explore_with(factory, &scripts, &ExploreConfig::new(10).with_dpor());
    assert!(sweep.all_opaque());
    let report = livecheck(
        factory,
        &scripts,
        &LivecheckConfig::new(10)
            .with_parasitic(ProcessId(0))
            .with_reduction(),
    );
    assert!(report.parasitic_processes().contains(&ProcessId(0)));
    assert!(report.replayed_steps > 0);
}
