//! Fault-prone model checking, end to end: exhaustive crash/parasitic
//! injection inside both checkers, the Theorem-1 corollary across the
//! catalogue, fault-free byte-identity of the NDJSON stream, thread-count
//! determinism of the fault-space search, and budgeted graceful
//! degradation (budget trips and panicking frontier workers both produce
//! an explicit partial verdict that round-trips through `tm-obs`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use tm_automata::FgpVariant;
use tm_core::{Invocation, ProcessId, Response, TVarId};
use tm_liveness_repro::obs::summary;
use tm_sim::{
    explore_with, livecheck, Budget, ClientScript, ExploreConfig, FaultConfig, LivecheckConfig,
    PlannedOp,
};
use tm_stm::{
    BoxedTm, Dstm, FgpTm, GlobalLock, NOrec, Ostm, Outcome, SteppedTm, SwissTm, TinyStm, Tl2,
};
use tm_telemetry::{Json, Telemetry};

const X: TVarId = TVarId(0);

type Factory = Box<dyn Fn() -> BoxedTm>;

/// Constant-write contention: a finite value domain keeps the canonical
/// state graph finite, so the fault-prone graph is finite too.
fn contended() -> Vec<ClientScript> {
    vec![
        ClientScript::new(vec![PlannedOp::Write(X, 1)]),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
    ]
}

/// The full 9-TM fingerprinting catalogue.
fn catalog() -> Vec<(&'static str, Factory)> {
    vec![
        (
            "fgp",
            Box::new(|| Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm) as Factory,
        ),
        (
            "fgp-strict",
            Box::new(|| Box::new(FgpTm::new(2, 1, FgpVariant::Strict)) as BoxedTm),
        ),
        ("tl2", Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm)),
        ("norec", Box::new(|| Box::new(NOrec::new(2, 1)) as BoxedTm)),
        (
            "tinystm",
            Box::new(|| Box::new(TinyStm::new(2, 1)) as BoxedTm),
        ),
        (
            "swisstm",
            Box::new(|| Box::new(SwissTm::new(2, 1)) as BoxedTm),
        ),
        ("ostm", Box::new(|| Box::new(Ostm::new(2, 1)) as BoxedTm)),
        ("dstm", Box::new(|| Box::new(Dstm::new(2, 1)) as BoxedTm)),
        (
            "global-lock",
            Box::new(|| Box::new(GlobalLock::new(2, 1)) as BoxedTm),
        ),
    ]
}

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tm_fault_{name}_{}.ndjson", std::process::id()))
}

// ---------------------------------------------------------------------
// Theorem 1's corollary, mechanically.
// ---------------------------------------------------------------------

/// The paper's fault model (§2.3): processes may crash or turn
/// parasitic, and the TM cannot tell. With ≤1 crash plus parasitic
/// turns quantified exhaustively, *every* catalogue TM loses
/// lasso-starvation-freedom at the bound — the obstruction-free TMs to
/// parasitic processes, the lock TM to a crashed lock holder whose
/// survivor the fair-cycle certifier flags as a crash victim.
#[test]
fn theorem1_corollary_one_crash_defeats_every_catalogue_tm() {
    let faults = FaultConfig::with_crashes(1).and_parasitic();
    let config = LivecheckConfig::new(10).with_faults(faults);
    for (name, factory) in catalog() {
        let fault_free = livecheck(&*factory, &contended(), &LivecheckConfig::new(10));
        let faulted = livecheck(&*factory, &contended(), &config);
        assert_eq!(faulted.rejected_cycles, 0, "{name}: {faulted:?}");
        // The fault space strictly contains the fault-free space.
        assert!(
            faulted.states > fault_free.states,
            "{name}: fault transitions must grow the graph ({} vs {})",
            faulted.states,
            fault_free.states
        );
        // Both fault kinds were actually exercised, on every process.
        assert_eq!(faulted.crash_injected, 0b11, "{name}: crash mask");
        assert_eq!(faulted.parasite_injected, 0b11, "{name}: parasite mask");
        // The corollary: no TM survives the fault-prone adversary.
        assert!(
            !faulted.lasso_starvation_free(),
            "{name}: must lose starvation-freedom under ≤1 crash + parasitic"
        );
        assert!(
            !faulted.fair_starvation_free(),
            "{name}: fair filtering must not rescue the verdict"
        );
        // A fault-free rerun right after is unaffected (no state leaks).
        let rerun = livecheck(&*factory, &contended(), &LivecheckConfig::new(10));
        assert_eq!(
            format!("{fault_free:?}"),
            format!("{rerun:?}"),
            "{name}: fault mode must not perturb fault-free runs"
        );
    }
}

/// The §1.1 motivating failure, certified: the global-lock TM is
/// starvation-free fault-free (it only blocks), but one crash of the
/// lock holder leaves the survivor fair-scheduled yet stuck forever —
/// the blocked verdict becomes crash-induced.
#[test]
fn global_lock_crashed_holder_is_a_certified_crash_victim() {
    let factory = || Box::new(GlobalLock::new(2, 1)) as BoxedTm;
    let fault_free = livecheck(factory, &contended(), &LivecheckConfig::new(10));
    assert!(fault_free.lasso_starvation_free());
    assert!(fault_free.crash_victims().is_empty());

    let faulted = livecheck(
        factory,
        &contended(),
        &LivecheckConfig::new(10).with_faults(FaultConfig::with_crashes(1)),
    );
    assert_eq!(faulted.rejected_cycles, 0);
    // Crashing either process leaves the other blocked on the lock: both
    // are certified crash victims, on fair (certified) blocked cycles.
    let victims = faulted.crash_victims();
    assert_eq!(victims, vec![ProcessId(0), ProcessId(1)], "{faulted:?}");
    for v in &faulted.fair_verdicts {
        assert!(v.blocked, "p{}: {faulted:?}", v.process.index());
    }
}

// ---------------------------------------------------------------------
// Fault-free byte-identity.
// ---------------------------------------------------------------------

/// Strips the wall-clock-derived values (`t_ms`, `dur_us`,
/// `states_per_sec`) so two runs of the same deterministic search
/// compare byte-for-byte on everything else.
fn normalize_stream(raw: &str) -> String {
    let mut out = String::new();
    for line in raw.lines() {
        let value = Json::parse(line).expect("stream line parses");
        let Json::Obj(pairs) = value else {
            panic!("stream line is not an object: {line}")
        };
        let kept: Vec<(String, Json)> = pairs
            .into_iter()
            .filter(|(k, _)| k != "t_ms" && k != "dur_us" && k != "states_per_sec")
            .collect();
        out.push_str(&Json::Obj(kept).to_string());
        out.push('\n');
    }
    out
}

/// `FaultConfig::none()` + `Budget::unlimited()` are structural no-ops:
/// across the whole catalogue, both checkers emit a byte-identical
/// NDJSON stream (modulo wall-clock values) and identical reports with
/// the explicit fault/budget defaults as without them. This pins the
/// degeneration argument — fault-free search trees have exactly the
/// pre-fault shape, no new events, no new fields, no partial verdicts.
#[test]
fn fault_config_none_is_byte_identical_across_the_catalogue() {
    let run_all = |explicit: bool, path: &std::path::Path| -> Vec<String> {
        let telemetry = Telemetry::to_path(path).expect("open stream");
        let mut reports = Vec::new();
        for (_, factory) in catalog() {
            let mut lc = LivecheckConfig::new(8).with_telemetry(&telemetry);
            let mut ex = ExploreConfig::new(4)
                .sequential()
                .with_telemetry(&telemetry);
            if explicit {
                lc = lc
                    .with_faults(FaultConfig::none())
                    .with_budget(Budget::unlimited());
                ex = ex
                    .with_faults(FaultConfig::none())
                    .with_budget(Budget::unlimited());
            }
            let live = livecheck(&*factory, &contended(), &lc);
            let explored = explore_with(&*factory, &contended(), &ex);
            assert!(live.exhausted.is_none());
            assert!(explored.exhausted.is_none());
            assert_eq!(explored.crash_injected, 0);
            assert_eq!(explored.parasite_injected, 0);
            reports.push(format!("{live:?}|{explored:?}"));
        }
        reports
    };
    let (path_a, path_b) = (temp("ident_a"), temp("ident_b"));
    let reports_a = run_all(false, &path_a);
    let reports_b = run_all(true, &path_b);
    assert_eq!(reports_a, reports_b, "reports must be identical");
    let raw_a = std::fs::read_to_string(&path_a).expect("read a");
    let raw_b = std::fs::read_to_string(&path_b).expect("read b");
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
    assert_eq!(
        normalize_stream(&raw_a),
        normalize_stream(&raw_b),
        "NDJSON streams must be byte-identical modulo wall-clock values"
    );
    // No fault/budget vocabulary leaks into fault-free streams.
    for needle in [
        "fault_injected",
        "budget_exhausted",
        "\"faults\"",
        "\"partial\"",
    ] {
        assert!(
            !raw_a.contains(needle),
            "fault-free stream must not mention {needle}"
        );
    }
}

// ---------------------------------------------------------------------
// Thread-count determinism of the fault space.
// ---------------------------------------------------------------------

/// The fault-prone graph search and the fault-prone explorer produce
/// identical results at 1, 2 and 4 rayon threads: fault edges intern
/// into the same canonical ids and the deterministic merge is
/// insensitive to worker scheduling.
#[test]
fn fault_space_exploration_is_deterministic_across_thread_counts() {
    let faults = FaultConfig::with_crashes(1).and_parasitic();
    let run_at = |threads: usize| -> (String, String) {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            let live = livecheck(
                || Box::new(Tl2::new(2, 1)) as BoxedTm,
                &contended(),
                &LivecheckConfig::new(8).with_faults(faults).with_parallel(),
            );
            let explored = explore_with(
                || Box::new(Tl2::new(2, 1)) as BoxedTm,
                &contended(),
                &ExploreConfig::new(4).with_faults(faults),
            );
            (format!("{live:?}"), format!("{explored:?}"))
        })
    };
    let baseline = run_at(1);
    for threads in [2usize, 4] {
        assert_eq!(baseline, run_at(threads), "{threads} threads");
    }
}

/// The sequential and parallel fault-prone searches agree: same graph,
/// same masks, same lassos, same fair verdicts. Only the execution
/// accounting differs by design (the parallel search executes every
/// edge exactly once and replays re-walks; the plain walker re-executes
/// shared prefixes), so those counters are normalized out.
#[test]
fn parallel_fault_search_matches_sequential() {
    let faults = FaultConfig::with_crashes(1).and_parasitic();
    let factory = || Box::new(NOrec::new(2, 1)) as BoxedTm;
    let normalized = |mut r: tm_sim::LivecheckReport| {
        r.steps = 0;
        r.replayed_steps = 0;
        r.dedup_hits = 0;
        format!("{r:?}")
    };
    let seq = livecheck(
        factory,
        &contended(),
        &LivecheckConfig::new(8).with_faults(faults),
    );
    let par = livecheck(
        factory,
        &contended(),
        &LivecheckConfig::new(8).with_faults(faults).with_parallel(),
    );
    assert_eq!(normalized(seq), normalized(par));
}

// ---------------------------------------------------------------------
// Budgeted graceful degradation.
// ---------------------------------------------------------------------

fn assert_partial_stream(raw: &str, engine: &str) {
    let stream = summary::summarize(raw).expect("summarize partial stream");
    assert!(stream.all_runs_have_verdicts(), "partial run still closes");
    assert!(stream.has_partial_runs(), "must be flagged partial");
    let run = stream.runs.last().expect("one run");
    assert_eq!(run.engine, engine);
    assert!(run.exhausted.is_some(), "budget_exhausted must stream");
    let verdict = run.verdict.as_ref().expect("verdict streams");
    assert!(verdict.partial, "verdict must be marked partial");
    assert_eq!(
        verdict.ok, None,
        "a partial verdict must make no headline claim"
    );
}

/// A tripped state budget stops the search, and the report degrades
/// gracefully: explicit `exhausted` reason, no headline claim, and the
/// partial verdict round-trips through the `tm-obs` summary layer.
#[test]
fn budget_exhaustion_degrades_to_an_explicit_partial_verdict() {
    // Livecheck, sequential.
    let path = temp("budget_live");
    {
        let telemetry = Telemetry::to_path(&path).expect("open stream");
        let report = livecheck(
            || Box::new(Tl2::new(2, 1)) as BoxedTm,
            &contended(),
            &LivecheckConfig::new(12)
                .with_telemetry(&telemetry)
                .with_budget(Budget::unlimited().with_max_states(5)),
        );
        assert_eq!(
            report.exhausted.as_deref(),
            Some("state budget exhausted"),
            "{report:?}"
        );
    }
    let raw = std::fs::read_to_string(&path).expect("read");
    std::fs::remove_file(&path).ok();
    assert_partial_stream(&raw, "livecheck");

    // The explorer, schedule budget.
    let path = temp("budget_explore");
    {
        let telemetry = Telemetry::to_path(&path).expect("open stream");
        let report = explore_with(
            || Box::new(Tl2::new(2, 1)) as BoxedTm,
            &contended(),
            &ExploreConfig::new(6)
                .with_telemetry(&telemetry)
                .with_budget(Budget::unlimited().with_max_schedules(3)),
        );
        assert_eq!(
            report.exhausted.as_deref(),
            Some("schedule budget exhausted"),
            "{report:?}"
        );
        // The partial prefix is still sound work: some schedules ran.
        assert!(report.schedules >= 3, "{report:?}");
    }
    let raw = std::fs::read_to_string(&path).expect("read");
    std::fs::remove_file(&path).ok();
    assert_partial_stream(&raw, "explore");
}

/// An unlimited budget reports nothing: `exhausted` stays `None` even
/// on runs that blow well past any small bound.
#[test]
fn unlimited_budget_never_trips() {
    let report = livecheck(
        || Box::new(Tl2::new(2, 1)) as BoxedTm,
        &contended(),
        &LivecheckConfig::new(12).with_budget(Budget::unlimited()),
    );
    assert!(report.exhausted.is_none());
    assert!(report.states > 5);
}

// ---------------------------------------------------------------------
// Panic isolation in the parallel frontier.
// ---------------------------------------------------------------------

/// A TM wrapper that panics on the Nth invocation across all forks — a
/// deterministic stand-in for a crashing TM implementation bug inside a
/// parallel frontier worker.
struct PanicTm {
    inner: BoxedTm,
    fuse: Arc<AtomicUsize>,
    at: usize,
}

impl PanicTm {
    fn new(inner: BoxedTm, fuse: Arc<AtomicUsize>, at: usize) -> Self {
        PanicTm { inner, fuse, at }
    }
}

impl SteppedTm for PanicTm {
    fn name(&self) -> &'static str {
        "panic-tm"
    }
    fn process_count(&self) -> usize {
        self.inner.process_count()
    }
    fn tvar_count(&self) -> usize {
        self.inner.tvar_count()
    }
    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome {
        if self.fuse.fetch_add(1, Ordering::Relaxed) + 1 == self.at {
            panic!("injected worker panic");
        }
        self.inner.invoke(process, invocation)
    }
    fn poll(&mut self, process: ProcessId) -> Option<Response> {
        self.inner.poll(process)
    }
    fn has_pending(&self, process: ProcessId) -> bool {
        self.inner.has_pending(process)
    }
    fn fork(&self) -> BoxedTm {
        Box::new(PanicTm {
            inner: self.inner.fork(),
            fuse: Arc::clone(&self.fuse),
            at: self.at,
        })
    }
    fn state_digest(&self) -> Option<u64> {
        self.inner.state_digest()
    }
}

/// A panicking frontier worker is contained: the other expansions
/// survive, the run closes with a partial verdict (reason "frontier
/// worker panicked"), and the stream round-trips through `tm-obs`.
#[test]
fn panicking_frontier_worker_degrades_to_a_partial_verdict() {
    let path = temp("panic_live");
    {
        let telemetry = Telemetry::to_path(&path).expect("open stream");
        let fuse = Arc::new(AtomicUsize::new(0));
        let report = livecheck(
            || {
                Box::new(PanicTm::new(
                    Box::new(Tl2::new(2, 1)),
                    Arc::clone(&fuse),
                    40,
                )) as BoxedTm
            },
            &contended(),
            &LivecheckConfig::new(12)
                .with_telemetry(&telemetry)
                .with_parallel(),
        );
        assert_eq!(
            report.exhausted.as_deref(),
            Some("frontier worker panicked"),
            "{report:?}"
        );
        // The surviving expansions still produced a usable prefix.
        assert!(report.states > 1, "{report:?}");
    }
    let raw = std::fs::read_to_string(&path).expect("read");
    std::fs::remove_file(&path).ok();
    assert_partial_stream(&raw, "livecheck");
}
