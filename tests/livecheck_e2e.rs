//! End-to-end suite for the liveness model checker: explore the canonical
//! state graph, detect lassos, classify them with the paper's Figure 2
//! taxonomy, and cross-check the concrete witnesses against the certified
//! SCC verdicts — across the fingerprinting catalogue.

use tm_automata::FgpVariant;
use tm_core::{ProcessId, TVarId};
use tm_liveness::{GlobalProgress, LocalProgress, ProcessClass, TmLivenessProperty};
use tm_sim::{livecheck, ClientScript, LivecheckConfig, PlannedOp};
use tm_stm::{BoxedTm, Dstm, FgpTm, GlobalLock, NOrec, Ostm, SteppedTm, SwissTm, TinyStm, Tl2};

const X: TVarId = TVarId(0);
const P1: ProcessId = ProcessId(0);
const P2: ProcessId = ProcessId(1);

type Factory = Box<dyn Fn() -> BoxedTm>;

/// Constant-write contention: the value domain is finite, so the
/// canonical state graph is finite and cycles exist.
fn contended() -> Vec<ClientScript> {
    vec![
        ClientScript::new(vec![PlannedOp::Write(X, 1)]),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
    ]
}

fn fingerprinting_catalog() -> Vec<(&'static str, Factory)> {
    vec![
        (
            "fgp",
            Box::new(|| Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm) as Factory,
        ),
        ("tl2", Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm)),
        ("norec", Box::new(|| Box::new(NOrec::new(2, 1)) as BoxedTm)),
        (
            "tinystm",
            Box::new(|| Box::new(TinyStm::new(2, 1)) as BoxedTm),
        ),
        (
            "swisstm",
            Box::new(|| Box::new(SwissTm::new(2, 1)) as BoxedTm),
        ),
        ("ostm", Box::new(|| Box::new(Ostm::new(2, 1)) as BoxedTm)),
        ("dstm", Box::new(|| Box::new(Dstm::new(2, 1)) as BoxedTm)),
        (
            "global-lock",
            Box::new(|| Box::new(GlobalLock::new(2, 1)) as BoxedTm),
        ),
    ]
}

#[test]
fn every_catalog_tm_fingerprints_deterministically() {
    for (name, factory) in fingerprinting_catalog() {
        let tm = factory();
        let d0 = tm
            .state_digest()
            .unwrap_or_else(|| panic!("{name}: no fingerprint"));
        // Digests are pure functions of state: a fork digests equally,
        // and a re-created instance digests equally.
        assert_eq!(tm.fork().state_digest(), Some(d0), "{name}: fork digest");
        assert_eq!(factory().state_digest(), Some(d0), "{name}: fresh digest");
        // Stepping changes the digest (reads mutate transaction state).
        let mut stepped = factory();
        stepped.invoke(P1, tm_core::Invocation::Read(X));
        assert_ne!(stepped.state_digest(), Some(d0), "{name}: step digest");
    }
}

#[test]
fn canonicalization_is_sound_across_the_catalog() {
    // Every detected cycle must validate as an InfiniteHistory: a
    // rejection means a fingerprint merged two states with different
    // pending structure — a canonicalization bug.
    for (name, factory) in fingerprinting_catalog() {
        let report = livecheck(&*factory, &contended(), &LivecheckConfig::new(10));
        assert_eq!(report.rejected_cycles, 0, "{name}: {report:?}");
        assert!(report.states > 0 && report.edges > 0, "{name}");
        // The bounded workload must recur: the search collapses well
        // below the 2^10 schedule tree.
        assert!(
            report.steps < 1 << 10,
            "{name}: no DAG collapse ({} steps)",
            report.steps
        );
    }
}

#[test]
fn contended_fgp_yields_a_starvation_lasso_matching_the_paper_taxonomy() {
    // The acceptance scenario: greedy Fgp under constant-write contention
    // admits a schedule on which p1 commits forever while p2 aborts
    // forever — a starving lasso in the Figures 5-7 taxonomy (global
    // progress holds, local progress fails).
    let report = livecheck(
        || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
        &contended(),
        &LivecheckConfig::new(12),
    );
    assert!(report.starving_processes().contains(&P2), "{report:?}");
    let witness = report
        .lassos
        .iter()
        .find(|l| l.starving().contains(&P2) && l.progressing().contains(&P1))
        .expect("a concrete starving lasso witness");
    assert!(GlobalProgress.contains(&witness.lasso));
    assert!(!LocalProgress.contains(&witness.lasso));
    assert!(!witness.schedule_cycle.is_empty());
    // Fgp ensures global progress: some process must also be certified
    // able to progress forever.
    assert!(!report.progressing_processes().is_empty());
}

#[test]
fn global_lock_certified_starvation_free_but_blocking() {
    let report = livecheck(
        || Box::new(GlobalLock::new(2, 1)),
        &contended(),
        &LivecheckConfig::new(12),
    );
    // §1.1: the lock TM never aborts anyone — starvation-free at the
    // bound — but a crashed holder blocks the other process forever.
    assert!(report.lasso_starvation_free(), "{report:?}");
    assert_eq!(report.starving_processes(), vec![]);
    assert_eq!(report.parasitic_processes(), vec![]);
    assert_eq!(report.blocked_processes(), vec![P1, P2]);
    assert!(report.eventless_cycles > 0);
}

#[test]
fn encounter_time_locking_tms_starve_contending_writers() {
    // §3.2.3: TinySTM (timid CM) and SwissTM (greedy CM) both admit
    // starving cycles under write contention.
    for (name, factory) in [
        (
            "tinystm",
            Box::new(|| Box::new(TinyStm::new(2, 1)) as BoxedTm) as Factory,
        ),
        (
            "swisstm",
            Box::new(|| Box::new(SwissTm::new(2, 1)) as BoxedTm),
        ),
    ] {
        let report = livecheck(&*factory, &contended(), &LivecheckConfig::new(12));
        assert!(
            !report.lasso_starvation_free(),
            "{name}: contention must starve someone: {report:?}"
        );
        assert_eq!(report.rejected_cycles, 0, "{name}");
    }
}

#[test]
fn lasso_witnesses_agree_with_certified_verdicts() {
    // Soundness cross-check: every stored witness's starving/parasitic
    // classification must be certified by the SCC pass (the witness
    // cycle is a subgraph of the recorded graph).
    for (name, factory) in fingerprinting_catalog() {
        let report = livecheck(&*factory, &contended(), &LivecheckConfig::new(10));
        let starving = report.starving_processes();
        let parasitic = report.parasitic_processes();
        for lasso in &report.lassos {
            for p in lasso.starving() {
                assert!(starving.contains(&p), "{name}: witness not certified");
            }
            for p in lasso.parasitic() {
                assert!(parasitic.contains(&p), "{name}: witness not certified");
            }
        }
    }
}

#[test]
fn parasitic_process_is_classified_and_never_progresses() {
    // p1 reads forever without ever invoking tryC (§2.3's parasitic
    // process). The checker must certify a parasitic cycle for p1 and
    // produce a concrete parasitic lasso — while p2, under Fgp's greedy
    // rule, still has progressing cycles (the parasitic reader gets
    // doomed and aborted rather than pinning the writer: exactly how
    // Fgp keeps global progress in parasitic-prone systems, Theorem 3).
    let scripts = vec![
        ClientScript::new(vec![PlannedOp::Read(X)]),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
    ];
    let report = livecheck(
        || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
        &scripts,
        &LivecheckConfig::new(12).with_parasitic(P1),
    );
    assert!(report.parasitic_processes().contains(&P1), "{report:?}");
    assert!(report.lassos.iter().any(|l| l.parasitic().contains(&P1)));
    // A parasitic process never commits: no cycle may progress p1.
    assert!(!report.progressing_processes().contains(&P1));
    for lasso in &report.lassos {
        assert!(!lasso.progressing().contains(&P1));
    }
    assert!(report.progressing_processes().contains(&P2));
}

#[test]
fn classes_cover_crashed_processes_abandoned_by_the_scheduler() {
    // A cycle that only ever schedules p1 leaves p2 with a finite
    // projection: Crashed (or Absent if it never ran) per Figure 2.
    let report = livecheck(
        || Box::new(Tl2::new(2, 1)),
        &contended(),
        &LivecheckConfig::new(8),
    );
    let solo_cycle = report.lassos.iter().find(|l| {
        l.schedule_cycle.iter().all(|&p| p == P1)
            && l.classes
                .iter()
                .any(|&(p, c)| p == P2 && matches!(c, ProcessClass::Crashed | ProcessClass::Absent))
    });
    assert!(
        solo_cycle.is_some(),
        "solo-p1 cycles must classify p2 as crashed/absent: {report:?}"
    );
}
