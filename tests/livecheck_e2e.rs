//! End-to-end suite for the liveness model checker: explore the canonical
//! state graph, detect lassos, classify them with the paper's Figure 2
//! taxonomy, and cross-check the concrete witnesses against the certified
//! SCC verdicts — across the fingerprinting catalogue.

use tm_automata::FgpVariant;
use tm_core::{ProcessId, TVarId};
use tm_liveness::{GlobalProgress, LocalProgress, ProcessClass, TmLivenessProperty};
use tm_sim::{livecheck, ClientScript, LivecheckConfig, LivecheckReport, PlannedOp};
use tm_stm::{BoxedTm, Dstm, FgpTm, GlobalLock, NOrec, Ostm, SteppedTm, SwissTm, TinyStm, Tl2};

const X: TVarId = TVarId(0);
const P1: ProcessId = ProcessId(0);
const P2: ProcessId = ProcessId(1);

type Factory = Box<dyn Fn() -> BoxedTm>;

/// Constant-write contention: the value domain is finite, so the
/// canonical state graph is finite and cycles exist.
fn contended() -> Vec<ClientScript> {
    vec![
        ClientScript::new(vec![PlannedOp::Write(X, 1)]),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
    ]
}

fn fingerprinting_catalog() -> Vec<(&'static str, Factory)> {
    vec![
        (
            "fgp",
            Box::new(|| Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm) as Factory,
        ),
        (
            "fgp-strict",
            Box::new(|| Box::new(FgpTm::new(2, 1, FgpVariant::Strict)) as BoxedTm),
        ),
        ("tl2", Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm)),
        ("norec", Box::new(|| Box::new(NOrec::new(2, 1)) as BoxedTm)),
        (
            "tinystm",
            Box::new(|| Box::new(TinyStm::new(2, 1)) as BoxedTm),
        ),
        (
            "swisstm",
            Box::new(|| Box::new(SwissTm::new(2, 1)) as BoxedTm),
        ),
        ("ostm", Box::new(|| Box::new(Ostm::new(2, 1)) as BoxedTm)),
        ("dstm", Box::new(|| Box::new(Dstm::new(2, 1)) as BoxedTm)),
        (
            "global-lock",
            Box::new(|| Box::new(GlobalLock::new(2, 1)) as BoxedTm),
        ),
    ]
}

#[test]
fn every_catalog_tm_fingerprints_deterministically() {
    for (name, factory) in fingerprinting_catalog() {
        let tm = factory();
        let d0 = tm
            .state_digest()
            .unwrap_or_else(|| panic!("{name}: no fingerprint"));
        // Digests are pure functions of state: a fork digests equally,
        // and a re-created instance digests equally.
        assert_eq!(tm.fork().state_digest(), Some(d0), "{name}: fork digest");
        assert_eq!(factory().state_digest(), Some(d0), "{name}: fresh digest");
        // Stepping changes the digest (reads mutate transaction state).
        let mut stepped = factory();
        stepped.invoke(P1, tm_core::Invocation::Read(X));
        assert_ne!(stepped.state_digest(), Some(d0), "{name}: step digest");
    }
}

#[test]
fn canonicalization_is_sound_across_the_catalog() {
    // Every detected cycle must validate as an InfiniteHistory: a
    // rejection means a fingerprint merged two states with different
    // pending structure — a canonicalization bug.
    for (name, factory) in fingerprinting_catalog() {
        let report = livecheck(&*factory, &contended(), &LivecheckConfig::new(10));
        assert_eq!(report.rejected_cycles, 0, "{name}: {report:?}");
        assert!(report.states > 0 && report.edges > 0, "{name}");
        // The bounded workload must recur: the search collapses well
        // below the 2^10 schedule tree.
        assert!(
            report.steps < 1 << 10,
            "{name}: no DAG collapse ({} steps)",
            report.steps
        );
    }
}

#[test]
fn contended_fgp_yields_a_starvation_lasso_matching_the_paper_taxonomy() {
    // The acceptance scenario: greedy Fgp under constant-write contention
    // admits a schedule on which p1 commits forever while p2 aborts
    // forever — a starving lasso in the Figures 5-7 taxonomy (global
    // progress holds, local progress fails).
    let report = livecheck(
        || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
        &contended(),
        &LivecheckConfig::new(12),
    );
    assert!(report.starving_processes().contains(&P2), "{report:?}");
    let witness = report
        .lassos
        .iter()
        .find(|l| l.starving().contains(&P2) && l.progressing().contains(&P1))
        .expect("a concrete starving lasso witness");
    assert!(GlobalProgress.contains(&witness.lasso));
    assert!(!LocalProgress.contains(&witness.lasso));
    assert!(!witness.schedule_cycle.is_empty());
    // Fgp ensures global progress: some process must also be certified
    // able to progress forever.
    assert!(!report.progressing_processes().is_empty());
}

#[test]
fn global_lock_certified_starvation_free_but_blocking() {
    let report = livecheck(
        || Box::new(GlobalLock::new(2, 1)),
        &contended(),
        &LivecheckConfig::new(12),
    );
    // §1.1: the lock TM never aborts anyone — starvation-free at the
    // bound — but a crashed holder blocks the other process forever.
    assert!(report.lasso_starvation_free(), "{report:?}");
    assert_eq!(report.starving_processes(), vec![]);
    assert_eq!(report.parasitic_processes(), vec![]);
    assert_eq!(report.blocked_processes(), vec![P1, P2]);
    assert!(report.eventless_cycles > 0);
}

#[test]
fn encounter_time_locking_tms_starve_contending_writers() {
    // §3.2.3: TinySTM (timid CM) and SwissTM (greedy CM) both admit
    // starving cycles under write contention.
    for (name, factory) in [
        (
            "tinystm",
            Box::new(|| Box::new(TinyStm::new(2, 1)) as BoxedTm) as Factory,
        ),
        (
            "swisstm",
            Box::new(|| Box::new(SwissTm::new(2, 1)) as BoxedTm),
        ),
    ] {
        let report = livecheck(&*factory, &contended(), &LivecheckConfig::new(12));
        assert!(
            !report.lasso_starvation_free(),
            "{name}: contention must starve someone: {report:?}"
        );
        assert_eq!(report.rejected_cycles, 0, "{name}");
    }
}

#[test]
fn lasso_witnesses_agree_with_certified_verdicts() {
    // Soundness cross-check: every stored witness's starving/parasitic
    // classification must be certified by the SCC pass (the witness
    // cycle is a subgraph of the recorded graph).
    for (name, factory) in fingerprinting_catalog() {
        let report = livecheck(&*factory, &contended(), &LivecheckConfig::new(10));
        let starving = report.starving_processes();
        let parasitic = report.parasitic_processes();
        for lasso in &report.lassos {
            for p in lasso.starving() {
                assert!(starving.contains(&p), "{name}: witness not certified");
            }
            for p in lasso.parasitic() {
                assert!(parasitic.contains(&p), "{name}: witness not certified");
            }
        }
    }
}

#[test]
fn parasitic_process_is_classified_and_never_progresses() {
    // p1 reads forever without ever invoking tryC (§2.3's parasitic
    // process). The checker must certify a parasitic cycle for p1 and
    // produce a concrete parasitic lasso — while p2, under Fgp's greedy
    // rule, still has progressing cycles (the parasitic reader gets
    // doomed and aborted rather than pinning the writer: exactly how
    // Fgp keeps global progress in parasitic-prone systems, Theorem 3).
    let scripts = vec![
        ClientScript::new(vec![PlannedOp::Read(X)]),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
    ];
    let report = livecheck(
        || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
        &scripts,
        &LivecheckConfig::new(12).with_parasitic(P1),
    );
    assert!(report.parasitic_processes().contains(&P1), "{report:?}");
    assert!(report.lassos.iter().any(|l| l.parasitic().contains(&P1)));
    // A parasitic process never commits: no cycle may progress p1.
    assert!(!report.progressing_processes().contains(&P1));
    for lasso in &report.lassos {
        assert!(!lasso.progressing().contains(&P1));
    }
    assert!(report.progressing_processes().contains(&P2));
}

/// Field-by-field byte-identity of two livecheck reports, including the
/// full lasso findings (histories, schedules and classifications).
fn assert_reports_identical(name: &str, a: &LivecheckReport, b: &LivecheckReport, what: &str) {
    assert_eq!(a.states, b.states, "{name} ({what}): states");
    assert_eq!(a.edges, b.edges, "{name} ({what}): edges");
    assert_eq!(a.steps, b.steps, "{name} ({what}): steps");
    assert_eq!(
        a.replayed_steps, b.replayed_steps,
        "{name} ({what}): replayed_steps"
    );
    assert_eq!(a.dedup_hits, b.dedup_hits, "{name} ({what}): dedup_hits");
    assert_eq!(
        a.cycles_detected, b.cycles_detected,
        "{name} ({what}): cycles_detected"
    );
    assert_eq!(
        a.eventless_cycles, b.eventless_cycles,
        "{name} ({what}): eventless_cycles"
    );
    assert_eq!(
        a.rejected_cycles, b.rejected_cycles,
        "{name} ({what}): rejected_cycles"
    );
    assert_eq!(a.truncated, b.truncated, "{name} ({what}): truncated");
    assert_eq!(a.verdicts, b.verdicts, "{name} ({what}): verdicts");
    assert_eq!(a.lassos.len(), b.lassos.len(), "{name} ({what}): lassos");
    for (x, y) in a.lassos.iter().zip(&b.lassos) {
        assert_eq!(
            x.schedule_prefix, y.schedule_prefix,
            "{name} ({what}): lasso prefix"
        );
        assert_eq!(
            x.schedule_cycle, y.schedule_cycle,
            "{name} ({what}): lasso cycle"
        );
        assert_eq!(x.lasso, y.lasso, "{name} ({what}): lasso history");
        assert_eq!(x.classes, y.classes, "{name} ({what}): lasso classes");
    }
}

#[test]
fn parallel_livecheck_is_byte_identical_across_the_catalog() {
    // Engine-vs-legacy identity: the parallel search (level-synchronous
    // graph construction + replay DFS + parallel SCC certificates) must
    // report byte-identically to the sequential reduced search on every
    // field, and to the plain sequential search on everything except the
    // execution-discipline counters (steps/replayed_steps) — across the
    // whole fingerprinting catalogue, blocking global-lock TM included.
    for (name, factory) in fingerprinting_catalog() {
        let plain = livecheck(&*factory, &contended(), &LivecheckConfig::new(11));
        let reduced = livecheck(
            &*factory,
            &contended(),
            &LivecheckConfig::new(11).with_reduction(),
        );
        let parallel = livecheck(
            &*factory,
            &contended(),
            &LivecheckConfig::new(11).with_parallel(),
        );
        assert_reports_identical(name, &reduced, &parallel, "parallel vs reduced");
        // Graph, findings and verdicts also match the unreduced search.
        assert_eq!(plain.states, parallel.states, "{name}");
        assert_eq!(plain.edges, parallel.edges, "{name}");
        assert_eq!(plain.cycles_detected, parallel.cycles_detected, "{name}");
        assert_eq!(plain.lassos.len(), parallel.lassos.len(), "{name}");
        assert_eq!(plain.verdicts, parallel.verdicts, "{name}");
        assert_eq!(
            plain.steps,
            parallel.steps + parallel.replayed_steps,
            "{name}: every sequential execution is executed once or replayed"
        );
    }
}

#[test]
fn parallel_livecheck_is_deterministic_across_thread_counts() {
    // The acceptance gate for the parallel lasso search: identical
    // reports regardless of thread count. The frontier merges levels in
    // a canonical order, so even the internal node numbering — and with
    // it every downstream artifact — is pinned.
    let baseline = livecheck(
        || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm,
        &contended(),
        &LivecheckConfig::new(12).with_parallel(),
    );
    for threads in [1, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let report = pool.install(|| {
            livecheck(
                || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm,
                &contended(),
                &LivecheckConfig::new(12).with_parallel(),
            )
        });
        assert_reports_identical("fgp", &baseline, &report, &format!("{threads} threads"));
        // And against the sequential reduced search, per the contract.
        let sequential = livecheck(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm,
            &contended(),
            &LivecheckConfig::new(12).with_reduction(),
        );
        assert_reports_identical(
            "fgp",
            &sequential,
            &report,
            &format!("{threads} threads vs seq"),
        );
    }
}

#[test]
fn classes_cover_crashed_processes_abandoned_by_the_scheduler() {
    // A cycle that only ever schedules p1 leaves p2 with a finite
    // projection: Crashed (or Absent if it never ran) per Figure 2.
    let report = livecheck(
        || Box::new(Tl2::new(2, 1)),
        &contended(),
        &LivecheckConfig::new(8),
    );
    let solo_cycle = report.lassos.iter().find(|l| {
        l.schedule_cycle.iter().all(|&p| p == P1)
            && l.classes
                .iter()
                .any(|&(p, c)| p == P2 && matches!(c, ProcessClass::Crashed | ProcessClass::Absent))
    });
    assert!(
        solo_cycle.is_some(),
        "solo-p1 cycles must classify p2 as crashed/absent: {report:?}"
    );
}

#[test]
fn telemetry_snapshot_is_identical_across_thread_counts() {
    // The counter-determinism contract (see tm_telemetry's module docs):
    // every counter is flushed at a phase boundary from a deterministic
    // tally, so the snapshot — like the report — is a pure function of
    // (TM, workload, config), never of the rayon pool size.
    use tm_telemetry::{Counter, Telemetry};
    let snap_at = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let telemetry = Telemetry::counters();
        let report = pool.install(|| {
            livecheck(
                || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm,
                &contended(),
                &LivecheckConfig::new(12)
                    .with_parallel()
                    .with_telemetry(&telemetry),
            )
        });
        (telemetry.snapshot(), report)
    };
    let (baseline, report) = snap_at(1);
    assert!(!baseline.is_empty(), "the instrumented run must count");
    assert_eq!(baseline.get(Counter::GraphNodes), report.states as u64);
    assert_eq!(baseline.get(Counter::GraphEdges), report.edges as u64);
    assert_eq!(baseline.get(Counter::StepsExecuted), report.steps as u64);
    assert_eq!(
        baseline.get(Counter::StepsReplayed),
        report.replayed_steps as u64
    );
    for threads in [2usize, 4] {
        let (snap, _) = snap_at(threads);
        assert_eq!(
            baseline, snap,
            "telemetry snapshot diverged at {threads} threads"
        );
    }
}
