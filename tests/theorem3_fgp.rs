//! Integration: Theorem 3 — `Fgp` ensures opacity and global progress in
//! any fault-prone system.
//!
//! (a) Opacity: bounded-exhaustive model checking over all interleavings
//!     plus long random fault-injected runs with the online certifier.
//! (b) Global progress: in every windowed segment of every fault-injected
//!     run, some correct process commits.
//! (c) The literal reading of the paper's formal rules fails (a) — the
//!     documented specification bug.

use tm_automata::FgpVariant;
use tm_core::{ProcessId, TVarId};
use tm_sim::{
    explore_schedules, explore_with, simulate, Client, ClientScript, ExploreConfig, FaultPlan,
    RandomScheduler, SimConfig,
};
use tm_stm::{BoxedTm, FgpTm};

const X: TVarId = TVarId(0);
const Y: TVarId = TVarId(1);

#[test]
fn fgp_model_checked_opaque_over_all_interleavings() {
    // Depth 12 (4096 interleavings per script set) was beyond the seed's
    // from-scratch enumerator budget; the prefix-sharing DFS makes it
    // routine.
    let script_sets: Vec<Vec<ClientScript>> = vec![
        vec![ClientScript::increment(X), ClientScript::increment(X)],
        vec![ClientScript::transfer(X, Y), ClientScript::read_both(X, Y)],
        vec![ClientScript::blind_write(X, 3), ClientScript::increment(X)],
    ];
    for variant in [FgpVariant::Strict, FgpVariant::CpOnly] {
        for scripts in &script_sets {
            let tvars = 2;
            let result = explore_schedules(
                || Box::new(FgpTm::new(scripts.len(), tvars, variant)) as BoxedTm,
                scripts,
                12,
            );
            assert_eq!(result.schedules, 1 << 12);
            assert!(
                result.all_opaque(),
                "{variant:?}: violations {:?}",
                result.violations.first()
            );
        }
    }
}

#[test]
fn fgp_model_checked_opaque_at_depth_fourteen() {
    // The deep-bound headline: every one of the 2^14 = 16384 length-14
    // interleavings of two increment clients is opaque.
    let result = explore_schedules(
        || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm,
        &[ClientScript::increment(X), ClientScript::increment(X)],
        14,
    );
    assert_eq!(result.schedules, 1 << 14);
    assert!(result.all_opaque());
}

#[test]
fn fgp_three_processes_model_checked_at_depth_ten() {
    // 3^10 = 59049 interleavings of three processes — far past the
    // seed's ≲9 guidance for three processes.
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::increment(X),
        ClientScript::read_both(X, Y),
    ];
    let result = explore_with(
        || Box::new(FgpTm::new(3, 2, FgpVariant::CpOnly)) as BoxedTm,
        &scripts,
        &ExploreConfig::new(10),
    );
    assert_eq!(result.schedules, 3usize.pow(10));
    assert!(result.all_opaque());
}

#[test]
fn literal_fgp_fails_the_same_model_check() {
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::new(vec![
            tm_sim::PlannedOp::Read(X),
            tm_sim::PlannedOp::Write(X, 5),
        ]),
    ];
    let result = explore_schedules(|| tm_stm::literal_fgp(2, 1), &scripts, 10);
    assert!(
        !result.all_opaque(),
        "the literal formal rules must admit a non-opaque history"
    );
    // The counterexample is genuinely small.
    let v = &result.violations[0];
    assert!(v.history.len() <= 20);
}

#[test]
fn fgp_global_progress_under_crash_faults() {
    for variant in [FgpVariant::Strict, FgpVariant::CpOnly] {
        let n = 4;
        let mut tm = FgpTm::new(n, 2, variant);
        let mut clients: Vec<Client> = (0..n)
            .map(|_| Client::new(ClientScript::increment(X)))
            .collect();
        let faults = FaultPlan::none()
            .crash(ProcessId(1), 200)
            .parasitic(ProcessId(2), 400);
        let mut sched = RandomScheduler::new(7);
        let report = simulate(
            &mut tm,
            &mut clients,
            &mut sched,
            &faults,
            SimConfig::steps(8_000).check_opacity(),
        );
        assert!(report.safety_ok, "{variant:?}");
        // Correct processes: p1 (index 0) and p4 (index 3). Global
        // progress: in every 1000-step window one of them commits.
        let correct = [ProcessId(0), ProcessId(3)];
        assert!(
            report.global_progress_in_windows(1_000, &correct),
            "{variant:?}: some window had no correct-process commit"
        );
    }
}

#[test]
fn fgp_survives_heavy_fault_storms() {
    // 6 processes; four of them fail in various ways; the two survivors
    // keep committing.
    let n = 6;
    let mut tm = FgpTm::new(n, 3, FgpVariant::CpOnly);
    let mut clients: Vec<Client> = (0..n)
        .map(|k| {
            Client::new(if k % 2 == 0 {
                ClientScript::increment(X)
            } else {
                ClientScript::transfer(X, Y)
            })
        })
        .collect();
    let faults = FaultPlan::none()
        .crash(ProcessId(1), 100)
        .crash(ProcessId(2), 300)
        .parasitic(ProcessId(3), 500)
        .parasitic(ProcessId(4), 700);
    let mut sched = RandomScheduler::new(99);
    let report = simulate(
        &mut tm,
        &mut clients,
        &mut sched,
        &faults,
        SimConfig::steps(10_000).check_opacity(),
    );
    assert!(report.safety_ok);
    let correct = [ProcessId(0), ProcessId(5)];
    assert!(report.global_progress_in_windows(2_000, &correct));
    assert!(report.commits[0] + report.commits[5] > 100);
}

#[test]
fn figure_15_state_count_via_stepped_interface() {
    // Cross-check the Figure 15 result through the tm-automata API from
    // an integration context.
    use tm_automata::{enumerate_states, Fgp};
    for variant in [FgpVariant::Literal, FgpVariant::Strict, FgpVariant::CpOnly] {
        let graph = enumerate_states(&Fgp::new(1, 1, variant), &[0, 1], 100).unwrap();
        assert_eq!(graph.state_count(), 10);
        assert!(!graph.has_abort_edges());
    }
}
