//! Differential suite: the prefix-sharing DFS explorer and the seed's
//! naive from-scratch enumerator must report **identical** results —
//! same schedule counts, same exact-checker fallback counts, same
//! violation lists (schedules, histories, details and shortest failing
//! prefixes) in the same order — across catalogue TMs, process counts
//! and parallel configurations. One deliberately buggy TM (the literal
//! `Fgp` formal rules) is included: both explorers must *catch* it, not
//! merely agree on silence.

use tm_core::TVarId;
use tm_sim::{
    explore_schedules_naive, explore_with, ClientScript, Exploration, ExploreConfig, PlannedOp,
};
use tm_stm::{BoxedTm, Dstm, FgpTm, GlobalLock, NOrec, Ostm, SwissTm, TinyStm, Tl2};

use tm_automata::FgpVariant;

const X: TVarId = TVarId(0);
const Y: TVarId = TVarId(1);

type Factory = Box<dyn Fn() -> BoxedTm>;

/// The catalogue slice under differential test: four opaque TMs spanning
/// the design space (automaton-based, deferred-update, value-validating,
/// obstruction-free, blocking) plus the seeded-buggy literal `Fgp`.
fn factories(processes: usize, tvars: usize) -> Vec<(&'static str, Factory)> {
    vec![
        (
            "fgp",
            Box::new(move || Box::new(FgpTm::new(processes, tvars, FgpVariant::CpOnly)) as BoxedTm)
                as Factory,
        ),
        (
            "tl2",
            Box::new(move || Box::new(Tl2::new(processes, tvars)) as BoxedTm),
        ),
        (
            "norec",
            Box::new(move || Box::new(NOrec::new(processes, tvars)) as BoxedTm),
        ),
        (
            "dstm",
            Box::new(move || Box::new(Dstm::new(processes, tvars)) as BoxedTm),
        ),
        (
            "global-lock",
            Box::new(move || Box::new(GlobalLock::new(processes, tvars)) as BoxedTm),
        ),
        (
            "fgp-literal",
            Box::new(move || tm_stm::literal_fgp(processes, tvars)),
        ),
    ]
}

fn assert_identical(name: &str, naive: &Exploration, dfs: &Exploration, what: &str) {
    assert_eq!(
        naive.schedules, dfs.schedules,
        "{name} ({what}): schedule counts diverged"
    );
    assert_eq!(
        naive.exact_fallbacks, dfs.exact_fallbacks,
        "{name} ({what}): fallback counts diverged"
    );
    assert_eq!(
        naive.violations, dfs.violations,
        "{name} ({what}): violation sets diverged"
    );
}

/// The **full** nine-TM catalogue (both Fgp variants, every STM, the
/// blocking global-lock TM) plus the seeded-buggy literal Fgp: the
/// population for the engine-vs-legacy byte-identity gate.
fn full_catalogue_factories(processes: usize, tvars: usize) -> Vec<(&'static str, Factory)> {
    vec![
        (
            "fgp",
            Box::new(move || Box::new(FgpTm::new(processes, tvars, FgpVariant::CpOnly)) as BoxedTm)
                as Factory,
        ),
        (
            "fgp-strict",
            Box::new(move || Box::new(FgpTm::new(processes, tvars, FgpVariant::Strict)) as BoxedTm),
        ),
        (
            "tl2",
            Box::new(move || Box::new(Tl2::new(processes, tvars)) as BoxedTm),
        ),
        (
            "tinystm",
            Box::new(move || Box::new(TinyStm::new(processes, tvars)) as BoxedTm),
        ),
        (
            "swisstm",
            Box::new(move || Box::new(SwissTm::new(processes, tvars)) as BoxedTm),
        ),
        (
            "norec",
            Box::new(move || Box::new(NOrec::new(processes, tvars)) as BoxedTm),
        ),
        (
            "ostm",
            Box::new(move || Box::new(Ostm::new(processes, tvars)) as BoxedTm),
        ),
        (
            "dstm",
            Box::new(move || Box::new(Dstm::new(processes, tvars)) as BoxedTm),
        ),
        (
            "global-lock",
            Box::new(move || Box::new(GlobalLock::new(processes, tvars)) as BoxedTm),
        ),
        (
            "fgp-literal",
            Box::new(move || tm_stm::literal_fgp(processes, tvars)),
        ),
    ]
}

#[test]
fn engine_reports_match_the_naive_legacy_across_the_full_catalogue() {
    // The engine-backed explorer (shared kernel: ScheduleSpace, TmPool,
    // engine frontier) against the seed's from-scratch enumerator, byte
    // for byte, across the full nine-TM catalogue plus the seeded-buggy
    // literal Fgp — sequential, parallel-split, and dedup'd.
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 5)]),
    ];
    let mut buggy_caught = false;
    for (name, factory) in full_catalogue_factories(2, 1) {
        let naive = explore_schedules_naive(&*factory, &scripts, 7);
        let dfs = explore_with(&*factory, &scripts, &ExploreConfig::new(7).sequential());
        assert_eq!(naive.schedules, 1 << 7, "{name}");
        assert_identical(name, &naive, &dfs, "full catalogue, sequential");
        let par = explore_with(
            &*factory,
            &scripts,
            &ExploreConfig::new(7).with_split_depth(2),
        );
        assert_identical(name, &naive, &par, "full catalogue, split 2");
        let dedup = explore_with(
            &*factory,
            &scripts,
            &ExploreConfig::new(7).sequential().with_dedup(),
        );
        assert_eq!(
            naive.report(),
            dedup.report(),
            "{name}: dedup changed the report"
        );
        if name == "fgp-literal" {
            assert!(!dfs.all_opaque(), "the literal-Fgp leak must surface");
            buggy_caught = true;
        }
    }
    assert!(buggy_caught);
}

#[test]
fn two_process_reports_are_identical_across_the_catalogue() {
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 5)]),
    ];
    let mut buggy_caught = false;
    for (name, factory) in factories(2, 1) {
        let naive = explore_schedules_naive(&*factory, &scripts, 8);
        let dfs = explore_with(&*factory, &scripts, &ExploreConfig::new(8).sequential());
        assert_eq!(naive.schedules, 1 << 8, "{name}");
        assert_identical(name, &naive, &dfs, "2p depth 8 sequential");
        if name == "fgp-literal" {
            assert!(
                !naive.all_opaque() && !dfs.all_opaque(),
                "both explorers must catch the literal-Fgp leak"
            );
            buggy_caught = true;
        } else {
            assert!(naive.all_opaque(), "{name}: unexpectedly non-opaque");
        }
    }
    assert!(buggy_caught);
}

#[test]
fn three_process_reports_are_identical_across_the_catalogue() {
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::transfer(X, Y),
        ClientScript::read_both(X, Y),
    ];
    for (name, factory) in factories(3, 2) {
        let naive = explore_schedules_naive(&*factory, &scripts, 6);
        let dfs = explore_with(&*factory, &scripts, &ExploreConfig::new(6).sequential());
        assert_eq!(naive.schedules, 3usize.pow(6), "{name}");
        assert_identical(name, &naive, &dfs, "3p depth 6 sequential");
    }
}

#[test]
fn parallel_frontier_matches_naive_at_every_split_depth() {
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 5)]),
    ];
    let naive = explore_schedules_naive(|| tm_stm::literal_fgp(2, 1), &scripts, 8);
    for split in [0, 1, 2, 4, 8] {
        let par = explore_with(
            || tm_stm::literal_fgp(2, 1),
            &scripts,
            &ExploreConfig::new(8).with_split_depth(split),
        );
        assert_identical("fgp-literal", &naive, &par, &format!("split {split}"));
    }
}

#[test]
fn violations_carry_their_shortest_failing_prefix() {
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 5)]),
    ];
    let dfs = explore_with(
        || tm_stm::literal_fgp(2, 1),
        &scripts,
        &ExploreConfig::new(9),
    );
    assert!(!dfs.violations.is_empty());
    for v in &dfs.violations {
        assert!(
            v.fast_reject_at < v.history.len(),
            "the certifier rejected inside the history"
        );
        // The prefix up to (excluding) the rejection point is clean: the
        // certifier accepts it.
        let mut checker = tm_safety::IncrementalChecker::new(tm_safety::Mode::Opacity);
        for &event in v.history.events().iter().take(v.fast_reject_at) {
            checker
                .push(event)
                .expect("prefix before rejection is clean");
        }
    }
}

#[test]
fn sleep_sets_prune_and_still_catch_violations_on_disjoint_variables() {
    // Non-vacuous verdict preservation: on a disjoint-variable workload
    // the processes' operation steps ARE independent (literal Fgp opts
    // into the commutation contract), so pruning genuinely fires — and
    // the literal-Fgp leak still surfaces, because Fgp conflicts are
    // CP-membership-based, not variable-based: p1's commit dooms p2,
    // p2's doomed write to Y leaks into its next transaction's read.
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::new(vec![PlannedOp::Read(Y), PlannedOp::Write(Y, 5)]),
    ];
    let full = explore_with(
        || tm_stm::literal_fgp(2, 2),
        &scripts,
        &ExploreConfig::new(9).sequential(),
    );
    let pruned = explore_with(
        || tm_stm::literal_fgp(2, 2),
        &scripts,
        &ExploreConfig::new(9).sequential().with_sleep_sets(),
    );
    assert!(
        pruned.pruned_subtrees > 0,
        "independence must fire on disjoint variables"
    );
    assert!(pruned.schedules < full.schedules);
    assert!(
        !full.all_opaque(),
        "the leak exists in the full exploration"
    );
    assert!(
        !pruned.all_opaque(),
        "pruning must preserve the violation verdict"
    );
}

#[test]
fn digest_dedup_reports_are_byte_identical_across_the_catalogue() {
    // The digest seen set merges subtrees by canonical state fingerprint;
    // a hash collision or an unsound canonicalization (a fingerprint
    // missing behaviour-relevant state) would merge subtrees with
    // different futures and diverge the counts. Exercised across all six
    // catalogue TMs — including the blocking global-lock TM and the
    // seeded-buggy literal Fgp, whose violating subtrees must be
    // re-explored per prefix and re-reported identically.
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 5)]),
    ];
    let mut merged_somewhere = false;
    for (name, factory) in factories(2, 1) {
        let plain = explore_with(&*factory, &scripts, &ExploreConfig::new(9).sequential());
        let deduped = explore_with(
            &*factory,
            &scripts,
            &ExploreConfig::new(9).sequential().with_dedup(),
        );
        assert_eq!(
            plain.report(),
            deduped.report(),
            "{name}: dedup changed the report"
        );
        assert_eq!(plain.schedules, 1 << 9, "{name}");
        merged_somewhere |= deduped.dedup_hits > 0;
        // And under the parallel frontier (per-worker seen sets).
        let parallel = explore_with(
            &*factory,
            &scripts,
            &ExploreConfig::new(9).with_split_depth(3).with_dedup(),
        );
        assert_eq!(
            plain.report(),
            parallel.report(),
            "{name}: parallel dedup changed the report"
        );
    }
    assert!(merged_somewhere, "dedup never fired on the catalogue");
}

#[test]
fn sleep_sets_preserve_every_catalogue_verdict() {
    // Pruning changes schedule counts by design; verdicts must survive.
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 5)]),
    ];
    for (name, factory) in factories(2, 1) {
        let full = explore_with(&*factory, &scripts, &ExploreConfig::new(8).sequential());
        let pruned = explore_with(
            &*factory,
            &scripts,
            &ExploreConfig::new(8).sequential().with_sleep_sets(),
        );
        assert_eq!(
            full.all_opaque(),
            pruned.all_opaque(),
            "{name}: sleep sets changed the verdict"
        );
    }
}

#[test]
fn telemetry_snapshot_is_identical_across_thread_counts() {
    // The counter-determinism contract (see tm_telemetry's module docs):
    // counters flush at phase boundaries from per-worker deterministic
    // tallies whose sum is partition-independent. The split depth is
    // pinned because `auto_split_depth` follows the pool size — that is
    // a config difference, not a scheduling race.
    use tm_telemetry::{Counter, Telemetry};
    let scripts = vec![ClientScript::increment(X), ClientScript::increment(X)];
    let snap_at = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let telemetry = Telemetry::counters();
        let report = pool.install(|| {
            explore_with(
                || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm,
                &scripts,
                &ExploreConfig::new(10)
                    .with_split_depth(3)
                    .with_telemetry(&telemetry),
            )
        });
        (telemetry.snapshot(), report)
    };
    let (baseline, report) = snap_at(1);
    assert!(!baseline.is_empty(), "the instrumented run must count");
    assert_eq!(
        baseline.get(Counter::SchedulesExecuted),
        report.schedules as u64
    );
    assert!(baseline.get(Counter::WorkerSteps) > 0);
    for threads in [2usize, 4] {
        let (snap, parallel_report) = snap_at(threads);
        assert_eq!(report, parallel_report, "report diverged");
        assert_eq!(
            baseline, snap,
            "telemetry snapshot diverged at {threads} threads"
        );
    }
}

#[test]
fn executed_schedule_counter_matches_the_report_across_the_catalogue() {
    // `Counter::SchedulesExecuted` must agree with the report's leaf
    // count for every TM and configuration — the anchor that ties the
    // telemetry stream to the exploration it narrates.
    use tm_telemetry::{Counter, Telemetry};
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 5)]),
    ];
    for (name, factory) in full_catalogue_factories(2, 1) {
        for config in [
            ExploreConfig::new(8).sequential(),
            ExploreConfig::new(8).sequential().with_sleep_sets(),
            ExploreConfig::new(8).sequential().with_dpor(),
            ExploreConfig::new(8),
        ] {
            let telemetry = Telemetry::counters();
            let report = explore_with(&*factory, &scripts, &config.with_telemetry(&telemetry));
            let snap = telemetry.snapshot();
            assert_eq!(
                snap.get(Counter::SchedulesExecuted),
                report.schedules as u64,
                "{name}: executed-schedule counter diverged from the report"
            );
            assert_eq!(
                snap.get(Counter::ViolationsFound),
                report.violations.len() as u64,
                "{name}: violation counter diverged from the report"
            );
            assert_eq!(
                snap.get(Counter::SleepSetBlocks),
                report.pruned_subtrees as u64,
                "{name}: sleep-set counter diverged from the report"
            );
        }
    }
}
