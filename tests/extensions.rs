//! Integration: the extension features — lasso detection bridging executed
//! games to formal liveness verdicts, and the §7 priority-progress
//! exploration.

use tm_adversary::{run_game, Algorithm1, Algorithm2, GameConfig, Strategy};
use tm_core::{Invocation, ProcessId, Response, TVarId};
use tm_liveness::{
    classify, detect_lasso, GlobalProgress, LocalProgress, PriorityProgress, ProcessClass,
    SoloProgress, TmLivenessProperty,
};
use tm_stm::{nonblocking_catalog, Outcome, PriorityFgp, Recorded, SteppedTm};

const P1: ProcessId = ProcessId(0);
const P2: ProcessId = ProcessId(1);
const X: TVarId = TVarId(0);

struct FatBox(tm_stm::BoxedTm);

impl SteppedTm for FatBox {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn process_count(&self) -> usize {
        self.0.process_count()
    }
    fn tvar_count(&self) -> usize {
        self.0.tvar_count()
    }
    fn invoke(&mut self, p: ProcessId, inv: Invocation) -> Outcome {
        self.0.invoke(p, inv)
    }
    fn poll(&mut self, p: ProcessId) -> Option<Response> {
        self.0.poll(p)
    }
    fn has_pending(&self, p: ProcessId) -> bool {
        self.0.has_pending(p)
    }
    fn fork(&self) -> tm_stm::BoxedTm {
        Box::new(FatBox(self.0.fork()))
    }
}

#[test]
fn every_tms_adversary_run_is_formally_a_local_progress_violation() {
    // Theorem 1 closed mechanically: execute, detect the lasso, classify.
    for which in 0..2 {
        for tm in nonblocking_catalog(2, 1) {
            let mut strategy: Box<dyn Strategy> = if which == 0 {
                Box::new(Algorithm1::binary(X))
            } else {
                Box::new(Algorithm2::binary(X))
            };
            let mut recorded = Recorded::new(FatBox(tm));
            let _ = run_game(&mut recorded, strategy.as_mut(), GameConfig::steps(6_000));
            let name = recorded.name().to_string();
            let lasso = detect_lasso(recorded.history(), 3)
                .unwrap_or_else(|| panic!("{name}: binary run must be periodic"));
            assert_eq!(classify(&lasso, P1), ProcessClass::Starving, "{name}");
            assert_eq!(classify(&lasso, P2), ProcessClass::Progressing, "{name}");
            assert!(!LocalProgress.contains(&lasso), "{name}");
            assert!(GlobalProgress.contains(&lasso), "{name}");
            assert!(SoloProgress.contains(&lasso), "{name}");
        }
    }
}

#[test]
fn priority_shield_defeats_algorithm_1_without_faults() {
    // On PriorityFgp with p1 on top, Algorithm 1's Step-2 loop never
    // completes while p1 is mid-transaction: p2 is the one starving, and
    // since p1 (the adversary's victim!) never reaches its own tryC in
    // Step 3, the adversary makes no rounds at all.
    let mut tm = PriorityFgp::new(vec![2, 1], 1);
    let mut adversary = Algorithm1::binary(X);
    let report = run_game(&mut tm, &mut adversary, GameConfig::steps(6_000));
    assert_eq!(report.rounds, 0, "p2 can never commit over the shield");
    assert_eq!(report.commits[1], 0);
    assert!(
        report.aborts[1] > 500,
        "p2 keeps aborting against the shield"
    );
}

#[test]
fn priority_progress_verdicts_on_detected_lassos() {
    // Fault-free: a run where p1 (top priority) commits infinitely often.
    let mut tm = Recorded::new(PriorityFgp::new(vec![2, 1], 1));
    for _ in 0..50 {
        // p1 transaction.
        tm.invoke(P1, Invocation::Read(X));
        tm.invoke(P1, Invocation::TryCommit);
        // p2 transaction (between p1's transactions: commits fine).
        tm.invoke(P2, Invocation::Read(X));
        tm.invoke(P2, Invocation::TryCommit);
    }
    let lasso = detect_lasso(tm.history(), 3).expect("periodic");
    let prio = PriorityProgress::new(vec![2, 1]);
    assert!(prio.contains(&lasso));
    assert!(LocalProgress.contains(&lasso)); // here everyone progresses

    // Fault-prone: the crashed shield-holder starves the new top correct
    // process — priority progress fails.
    let mut tm = Recorded::new(PriorityFgp::new(vec![2, 1], 1));
    tm.invoke(P1, Invocation::Read(X)); // p1 crashes mid-transaction
    for _ in 0..50 {
        tm.invoke(P2, Invocation::Write(X, 1));
        tm.invoke(P2, Invocation::TryCommit);
    }
    let lasso = detect_lasso(tm.history(), 3).expect("periodic");
    assert_eq!(classify(&lasso, P1), ProcessClass::Crashed);
    assert_eq!(classify(&lasso, P2), ProcessClass::Starving);
    assert!(!prio.contains(&lasso));
}

#[test]
fn swisstm_participates_in_all_adversary_games() {
    // The greedy-CM TM joined the catalogue; confirm it is among the TMs
    // exercised and behaves like the others under Algorithm 1.
    let names: Vec<String> = nonblocking_catalog(2, 1)
        .iter()
        .map(|t| t.name().to_string())
        .collect();
    assert!(names.contains(&"swisstm".to_string()));
    let mut tm = tm_stm::SwissTm::new(2, 1);
    let mut adversary = Algorithm1::new(X);
    let report = run_game(
        &mut tm,
        &mut adversary,
        GameConfig::steps(6_000).check_opacity(),
    );
    assert_eq!(report.commits[0], 0);
    assert!(report.commits[1] > 500);
    assert!(report.safety_ok);
}
