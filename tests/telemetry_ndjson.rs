//! NDJSON stream validation: drive both checkers with a file-backed
//! telemetry sink and verify the emitted event log against the
//! versioned schema contract in `tm_telemetry`'s module docs — every
//! line parses as a JSON object, carries the `v`/`ev`/`t_ms` envelope,
//! uses only the published event tags, and the catalogue run contains
//! the required phase spans, heartbeats and per-TM verdicts.

use tm_automata::FgpVariant;
use tm_core::TVarId;
use tm_sim::{explore_with, livecheck, ClientScript, ExploreConfig, LivecheckConfig, PlannedOp};
use tm_stm::{BoxedTm, FgpTm, GlobalLock, NOrec, Tl2};
use tm_telemetry::{Json, Telemetry, EVENT_TAGS};

const X: TVarId = TVarId(0);

type Factory = Box<dyn Fn() -> BoxedTm>;

fn contended() -> Vec<ClientScript> {
    vec![
        ClientScript::new(vec![PlannedOp::Write(X, 1)]),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
    ]
}

fn catalog() -> Vec<(&'static str, Factory)> {
    vec![
        (
            "fgp",
            Box::new(|| Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm) as Factory,
        ),
        ("tl2", Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm)),
        ("norec", Box::new(|| Box::new(NOrec::new(2, 1)) as BoxedTm)),
        (
            "global-lock",
            Box::new(|| Box::new(GlobalLock::new(2, 1)) as BoxedTm),
        ),
    ]
}

/// Parses every line of the stream, asserting the envelope contract,
/// and returns the events as (tag, object) pairs.
fn parse_stream(raw: &str) -> Vec<(String, Json)> {
    let mut events = Vec::new();
    for (i, line) in raw.lines().enumerate() {
        let value = Json::parse(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON ({e}): {line}", i + 1));
        assert_eq!(
            value.get("v").and_then(Json::as_int),
            Some(1),
            "line {}: wrong or missing schema version: {line}",
            i + 1
        );
        assert!(
            value.get("t_ms").is_some(),
            "line {}: missing t_ms: {line}",
            i + 1
        );
        let tag = value
            .get("ev")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("line {}: missing ev tag: {line}", i + 1))
            .to_string();
        assert!(
            EVENT_TAGS.contains(&tag.as_str()),
            "line {}: unknown event tag {tag:?}: {line}",
            i + 1
        );
        events.push((tag, value));
    }
    events
}

fn count(events: &[(String, Json)], tag: &str) -> usize {
    events.iter().filter(|(t, _)| t == tag).count()
}

/// The `trace` contract (tm-telemetry module docs): every step object
/// carries a process, an operation, and — for the digest-capable
/// catalogue — a non-empty state fingerprint.
fn assert_trace_steps_well_formed(trace: &Json) {
    let Some(Json::Arr(steps)) = trace.get("steps") else {
        panic!("trace must carry a steps array: {trace}");
    };
    let Some(Json::Arr(schedule)) = trace.get("schedule") else {
        panic!("trace must carry its schedule: {trace}");
    };
    assert_eq!(
        steps.len(),
        schedule.len(),
        "one step object per scheduled step: {trace}"
    );
    for (step, scheduled) in steps.iter().zip(schedule) {
        assert_eq!(
            step.get("p").and_then(Json::as_int),
            scheduled.as_int(),
            "step process must match the schedule: {trace}"
        );
        assert!(
            step.get("op")
                .and_then(Json::as_str)
                .is_some_and(|op| !op.is_empty()),
            "step must carry an operation: {trace}"
        );
        assert!(
            step.get("digest")
                .and_then(Json::as_str)
                .is_some_and(|d| !d.is_empty()),
            "catalogue TMs fingerprint: digest must be non-empty: {trace}"
        );
    }
}

#[test]
fn livecheck_catalogue_stream_is_schema_valid() {
    let path = std::env::temp_dir().join(format!(
        "tm_telemetry_livecheck_{}.ndjson",
        std::process::id()
    ));
    {
        let telemetry = Telemetry::to_path(&path)
            .expect("open stream")
            .with_timing();
        let config = LivecheckConfig::new(10).with_telemetry(&telemetry);
        for (name, factory) in catalog() {
            let report = livecheck(&*factory, &contended(), &config);
            assert_eq!(report.rejected_cycles, 0, "{name}");
        }
        // The handle drops here, flushing the line-buffered sink.
    }
    let raw = std::fs::read_to_string(&path).expect("read stream");
    std::fs::remove_file(&path).ok();
    let events = parse_stream(&raw);
    let tms = catalog().len();

    // The acceptance contract: one run_start and one verdict per TM,
    // at least one phase span and one heartbeat overall.
    assert_eq!(count(&events, "run_start"), tms);
    assert_eq!(count(&events, "verdict"), tms);
    assert!(count(&events, "phase_start") >= 1, "no phase spans");
    assert_eq!(count(&events, "phase_start"), count(&events, "phase_end"));
    assert!(count(&events, "heartbeat") >= tms, "missing heartbeats");
    assert_eq!(count(&events, "counter_snapshot"), tms);

    // Every stored lasso is immediately followed by its witness
    // timeline: a `trace` event whose schedule replays prefix + cycle.
    assert!(count(&events, "lasso_found") >= 1, "no lasso streamed");
    assert_eq!(count(&events, "lasso_found"), count(&events, "trace"));
    for (i, (tag, lasso)) in events.iter().enumerate() {
        if tag != "lasso_found" {
            continue;
        }
        let (next_tag, trace) = events
            .get(i + 1)
            .unwrap_or_else(|| panic!("lasso_found at line {} ends the stream", i + 1));
        assert_eq!(next_tag, "trace", "trace must be adjacent to its lasso");
        assert_eq!(
            trace.get("engine").and_then(Json::as_str),
            Some("livecheck")
        );
        assert_eq!(trace.get("kind").and_then(Json::as_str), Some("lasso"));
        let prefix_len = lasso.get("prefix_len").and_then(Json::as_int).unwrap();
        let cycle_len = lasso.get("cycle_len").and_then(Json::as_int).unwrap();
        assert_eq!(
            trace.get("cycle_start").and_then(Json::as_int),
            Some(prefix_len),
            "cycle marker must sit at the end of the prefix: {trace}"
        );
        match trace.get("schedule") {
            Some(Json::Arr(s)) => assert_eq!(
                s.len() as i64,
                prefix_len + cycle_len,
                "trace schedule must replay prefix + cycle: {trace}"
            ),
            other => panic!("trace schedule missing or mistyped: {other:?}"),
        }
        assert_trace_steps_well_formed(trace);
    }

    // Verdicts carry the per-TM outcome fields in catalogue order.
    let verdicts: Vec<&Json> = events
        .iter()
        .filter(|(t, _)| t == "verdict")
        .map(|(_, v)| v)
        .collect();
    for ((name, _), verdict) in catalog().iter().zip(&verdicts) {
        assert_eq!(verdict.get("tm").and_then(Json::as_str), Some(*name));
        assert_eq!(
            verdict.get("engine").and_then(Json::as_str),
            Some("livecheck")
        );
        assert!(verdict.get("starvation_free").is_some());
        assert!(verdict.get("states").and_then(Json::as_int).unwrap_or(0) > 0);
    }
    // The greedy TM starves under contention; the blocking TM does not.
    assert_eq!(verdicts[0].get("starvation_free"), Some(&Json::Bool(false)));
    assert_eq!(
        verdicts[tms - 1].get("starvation_free"),
        Some(&Json::Bool(true))
    );
}

#[test]
fn explorer_stream_is_schema_valid() {
    let path = std::env::temp_dir().join(format!(
        "tm_telemetry_explore_{}.ndjson",
        std::process::id()
    ));
    {
        let telemetry = Telemetry::to_path(&path).expect("open stream");
        let scripts = vec![ClientScript::increment(X), ClientScript::increment(X)];
        let report = explore_with(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm,
            &scripts,
            &ExploreConfig::new(10).with_telemetry(&telemetry),
        );
        assert!(report.all_opaque());
        // A verdict-bearing run: violation events must stream too.
        let buggy = vec![
            ClientScript::increment(X),
            ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 5)]),
        ];
        let caught = explore_with(
            || tm_stm::literal_fgp(2, 1),
            &buggy,
            &ExploreConfig::new(8).with_telemetry(&telemetry),
        );
        assert!(!caught.all_opaque());
    }
    let raw = std::fs::read_to_string(&path).expect("read stream");
    std::fs::remove_file(&path).ok();
    let events = parse_stream(&raw);

    assert_eq!(count(&events, "run_start"), 2);
    assert_eq!(count(&events, "verdict"), 2);
    assert!(count(&events, "phase_start") >= 1, "no phase spans");
    assert!(count(&events, "heartbeat") >= 2, "missing heartbeats");
    assert!(count(&events, "violation") >= 1, "violation not streamed");
    let violation = &events.iter().find(|(t, _)| t == "violation").unwrap().1;
    assert!(
        matches!(violation.get("schedule"), Some(Json::Arr(s)) if !s.is_empty()),
        "violation must carry its schedule: {violation}"
    );

    // Every streamed violation is immediately followed by its witness
    // timeline, replaying exactly the violating schedule.
    assert_eq!(count(&events, "violation"), count(&events, "trace"));
    for (i, (tag, violation)) in events.iter().enumerate() {
        if tag != "violation" {
            continue;
        }
        let (next_tag, trace) = events
            .get(i + 1)
            .unwrap_or_else(|| panic!("violation at line {} ends the stream", i + 1));
        assert_eq!(next_tag, "trace", "trace must be adjacent to its violation");
        assert_eq!(trace.get("engine").and_then(Json::as_str), Some("explore"));
        assert_eq!(trace.get("kind").and_then(Json::as_str), Some("violation"));
        assert_eq!(
            trace.get("schedule"),
            violation.get("schedule"),
            "trace must replay the violating schedule verbatim"
        );
        assert!(
            trace.get("cycle_start").is_none(),
            "violation traces are finite — no cycle marker: {trace}"
        );
        assert_trace_steps_well_formed(trace);
    }
}

#[test]
fn optimal_dpor_stream_pins_zero_sleep_blocked_executions() {
    let path = std::env::temp_dir().join(format!(
        "tm_telemetry_optimal_{}.ndjson",
        std::process::id()
    ));
    {
        let telemetry = Telemetry::to_path(&path).expect("open stream");
        let scripts = vec![ClientScript::increment(X), ClientScript::increment(X)];
        let report = explore_with(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm,
            &scripts,
            &ExploreConfig::new(10)
                .with_optimal_dpor()
                .with_telemetry(&telemetry),
        );
        assert!(report.all_opaque());
    }
    let raw = std::fs::read_to_string(&path).expect("read stream");
    std::fs::remove_file(&path).ok();
    let events = parse_stream(&raw);

    // The optimality claim must be *visible* in the stream: zero-valued
    // counters are normally elided from counter_snapshot, but optimal
    // mode pins `sleep_blocked_executions` so consumers can distinguish
    // "zero" from "not measured".
    let snapshot = &events
        .iter()
        .find(|(t, _)| t == "counter_snapshot")
        .expect("optimal run must emit a counter_snapshot")
        .1;
    let counters = snapshot
        .get("counters")
        .unwrap_or_else(|| panic!("counter_snapshot missing counters object: {snapshot}"));
    assert_eq!(
        counters
            .get("sleep_blocked_executions")
            .and_then(Json::as_int),
        Some(0),
        "optimal mode must pin sleep_blocked_executions at zero: {snapshot}"
    );
    // The wakeup-tree machinery actually ran on this workload.
    assert!(
        counters.get("wakeup_inserts").and_then(Json::as_int) > Some(0),
        "expected wakeup-tree insertions on the contended workload: {snapshot}"
    );
}
