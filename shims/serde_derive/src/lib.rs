//! Offline shim for `serde_derive`: derives that emit empty impls of the
//! marker traits in the sibling `serde` shim.
//!
//! Supported input shape: non-generic `struct` / `enum` / `union` items
//! (which is every serde-derived type in this workspace). Generic items
//! are rejected at compile time with a clear error rather than silently
//! miscompiled.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the item name and asserts the item is non-generic.
fn item_name(input: &TokenStream) -> Result<String, String> {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => return Err(format!("expected item name, found {other:?}")),
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        return Err(format!(
                            "serde shim derive does not support generic type `{name}`"
                        ));
                    }
                }
                return Ok(name);
            }
        }
    }
    Err("no struct/enum/union found in derive input".to_string())
}

fn emit(input: TokenStream, make_impl: impl Fn(&str) -> String) -> TokenStream {
    match item_name(&input) {
        Ok(name) => make_impl(&name).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("valid"),
    }
}

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
