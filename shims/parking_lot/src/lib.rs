//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind the `parking_lot` API surface the
//! workspace uses (`lock()` returning the guard directly, no poisoning).
//! Poisoned locks are recovered transparently, matching `parking_lot`'s
//! no-poisoning semantics closely enough for these tests and benches.

#![forbid(unsafe_code)]

use std::sync;

/// Guard for [`Mutex::lock`], mirroring `parking_lot::MutexGuard`.
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Mutex with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn contended_increments() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
