//! Offline shim for `rayon`.
//!
//! Provides the small parallel-iterator surface the explorer uses —
//! `into_par_iter().map(..).collect::<Vec<_>>()` plus
//! [`current_num_threads`] — on scoped `std::thread`s with an atomic
//! item counter as the work-dealing mechanism: idle workers pull the
//! next unclaimed index, so uneven subtree sizes balance dynamically
//! (the property we need from a work-stealing pool) without any unsafe
//! code or external dependency.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

std::thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads a parallel iterator will use: the
/// [`ThreadPool::install`] override when one is active on this thread,
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(Cell::get)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Builder for a fixed-size pool, mirroring `rayon::ThreadPoolBuilder`.
/// The shim has no persistent worker threads; a "pool" is a thread-count
/// override that [`ThreadPool::install`] scopes over a closure (the
/// parallel iterators spawn scoped threads per call).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with the default (machine) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Pins the pool's thread count (`0` keeps the default, as in rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool. Never fails in the shim; the `Result` mirrors
    /// rayon's signature so call sites port unchanged.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self
                .num_threads
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        })
    }
}

/// A fixed-thread-count scope, mirroring `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's thread count governing every parallel
    /// iterator it executes (restored afterwards, panic-safe).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|threads| threads.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|threads| threads.replace(Some(self.threads))));
        op()
    }
}

/// Error type of [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A data-parallel pipeline over an owned collection.
pub trait ParallelIterator: Sized {
    /// The item type.
    type Item: Send;

    /// Maps every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Drains the pipeline into a collection, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C;
}

/// Collection from a parallel iterator, mirroring
/// `rayon::iter::FromParallelIterator`.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from an ordered item vector.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_ordered_vec(self.items)
    }
}

/// The result of [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<T, R, F> ParallelIterator for Map<VecParIter<T>, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    type Item = R;

    fn collect<C: FromParallelIterator<R>>(self) -> C {
        let items = self.base.items;
        let f = &self.f;
        let n = items.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 {
            return C::from_ordered_vec(items.into_iter().map(f).collect());
        }
        // Hand out one slot per item; workers claim the next unclaimed
        // index, so long items don't serialize behind a static split.
        let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let next = AtomicUsize::new(0);
        let mut results: Vec<Mutex<Option<R>>> = Vec::new();
        results.resize_with(n, || Mutex::new(None));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i].lock().unwrap().take().expect("claimed once");
                    let r = f(item);
                    *results[i].lock().unwrap() = Some(r);
                });
            }
        });
        C::from_ordered_vec(
            results
                .into_iter()
                .map(|slot| slot.into_inner().unwrap().expect("worker filled slot"))
                .collect(),
        )
    }
}

/// `use rayon::prelude::*;` compatibility.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_completes() {
        let v: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = v
            .into_par_iter()
            .map(|x| {
                // Skew the work to exercise dynamic dealing.
                (0..(x % 7) * 10_000).fold(x, |acc, i| acc.wrapping_add(i))
            })
            .collect();
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn install_scopes_the_thread_count_override() {
        let outside = super::current_num_threads();
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let inside = pool.install(|| {
            // Parallel iterators under install use the pinned count and
            // still preserve order.
            let v: Vec<usize> = (0..64).collect();
            let out: Vec<usize> = v.into_par_iter().map(|x| x + 1).collect();
            assert_eq!(out, (1..65).collect::<Vec<_>>());
            super::current_num_threads()
        });
        assert_eq!(inside, 3);
        assert_eq!(super::current_num_threads(), outside);
    }
}
