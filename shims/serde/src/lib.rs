//! Offline shim for `serde`.
//!
//! The build container has no access to a crates registry, so this
//! workspace vendors the *minimal* surface the codebase actually uses:
//! the `Serialize` / `Deserialize` marker traits and their derives. No
//! serialization format crate exists here, so the traits carry no
//! methods; the derives emit empty impls. Swap this shim for the real
//! crate by editing the workspace manifests once a registry is
//! reachable — no source change is required.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
