//! Offline shim for `criterion`.
//!
//! Provides the benchmark-definition API this workspace uses
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_with_input`, throughput annotation, `black_box`) with a
//! simple wall-clock measurement loop: per sample, the routine is
//! repeated until ≥ 2 ms elapse, and the median over `sample_size`
//! samples is reported. Statistical machinery (outlier analysis,
//! HTML reports) is intentionally absent. When invoked with `--test`
//! (as `cargo test --benches` does) every routine runs exactly once.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Throughput annotation for a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    /// Median per-iteration time of the last `iter` call.
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.test_mode {
            black_box(routine());
            self.median_ns = 0.0;
            return;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut iters: u64 = 0;
            let start = Instant::now();
            let mut elapsed;
            loop {
                black_box(routine());
                iters += 1;
                elapsed = start.elapsed();
                if elapsed >= Duration::from_millis(2) {
                    break;
                }
            }
            samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

fn format_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            test_mode: self.criterion.test_mode,
            median_ns: 0.0,
        };
        f(&mut bencher, input);
        self.report(&id.label, &bencher);
        self
    }

    /// Runs one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            test_mode: self.criterion.test_mode,
            median_ns: 0.0,
        };
        f(&mut bencher);
        self.report(&id.label, &bencher);
        self
    }

    fn report(&self, label: &str, bencher: &Bencher) {
        if self.criterion.test_mode {
            println!("{}/{label}: ok (test mode)", self.name);
            return;
        }
        let mut line = format!(
            "{}/{label:<32} time: [{}]",
            self.name,
            format_time(bencher.median_ns)
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let per_sec = n as f64 / (bencher.median_ns / 1e9);
            line.push_str(&format!("  thrpt: [{:.3} Kelem/s]", per_sec / 1e3));
        }
        println!("{line}");
    }

    /// Ends the group (printing is immediate; this is API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_SHIM_TEST_MODE").is_some();
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .sample_size(10)
            .bench_function("bench", f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            sample_size: 3,
            test_mode: false,
            median_ns: 0.0,
        };
        b.iter(|| black_box((0..1000u64).sum::<u64>()));
        assert!(b.median_ns > 0.0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            sample_size: 10,
            test_mode: true,
            median_ns: 1.0,
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert_eq!(b.median_ns, 0.0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("exact", 32).label, "exact/32");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(0.5e3).contains("ns") || format_time(0.5e3).contains("µs"));
        assert!(format_time(2.5e6).contains("ms"));
        assert!(format_time(3.0e9).contains(" s"));
    }
}
