//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's
//! property-based tests use: range / tuple / `prop_map` / collection
//! strategies, `proptest::bool::ANY`, the `proptest!` macro with an
//! optional `proptest_config` attribute, and `prop_assert!` /
//! `prop_assert_eq!`. Cases are sampled from a deterministic per-test
//! generator (seeded by the test name), so runs are reproducible;
//! there is no shrinking — a failing case reports its inputs via
//! `Debug` where available and the assertion message otherwise.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::StdRng;

/// Re-exported so the `proptest!` macro can construct generators.
pub use rand::{Rng, SeedableRng};

/// A generator of values for property-based tests.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: `size.len()` elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// `proptest::bool::ANY`: either boolean, equiprobable.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_range(0..2u32) == 1
        }
    }
}

/// Test-runner plumbing (`proptest::test_runner`).
pub mod test_runner {
    /// Number of cases to run per property.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Cases sampled per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-case verdict used by `proptest!` bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-test seed derived from the test's name.
    pub fn seed_for(name: &str, case: u32) -> u64 {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (u64::from(case) << 32) ^ u64::from(case)
    }
}

/// `ProptestConfig` as exported by the real prelude.
pub use test_runner::Config as ProptestConfig;

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = <$crate::__StdRng as $crate::SeedableRng>::seed_from_u64(
                    $crate::test_runner::seed_for(stringify!($name), case),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let __proptest_outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __proptest_outcome {
                    panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                }
            }
        }
    )*};
}

/// Re-export for the macros above.
pub use rand::rngs::StdRng as __StdRng;

/// The proptest prelude.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0u64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn map_and_vec_strategies(v in crate::collection::vec((0usize..4, 0u64..7), 0..12)) {
            prop_assert!(v.len() < 12);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!(b < 7);
            }
        }

        #[test]
        fn bool_any_and_early_return(flag in crate::bool::ANY) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    fn prop_map_transforms() {
        use crate::SeedableRng;
        let strat = (0usize..5).prop_map(|x| x * 10);
        let mut rng = crate::__StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v % 10 == 0 && v < 50);
        }
    }

    #[test]
    fn seeds_are_deterministic_per_name() {
        assert_eq!(
            crate::test_runner::seed_for("a", 0),
            crate::test_runner::seed_for("a", 0)
        );
        assert_ne!(
            crate::test_runner::seed_for("a", 0),
            crate::test_runner::seed_for("b", 0)
        );
    }
}
