//! Offline shim for `rand` 0.8.
//!
//! The build container has no registry access, so this crate provides
//! the subset of the `rand` API the workspace uses — `Rng::gen_range` /
//! `Rng::gen_bool`, `SeedableRng::seed_from_u64` and `rngs::StdRng` —
//! backed by a deterministic SplitMix64 generator. Sequences differ
//! from upstream `StdRng` (which is seed-stable only per rand version
//! anyway); everything in this workspace treats seeds as opaque
//! reproducibility handles, not as pinned sequences.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is acceptable for a test/simulation shim.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // u64 of state, and trivially seedable — ideal for a shim.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(2..=5u64);
            assert!((2..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0..2u32) == b.gen_range(0..2u32))
            .count();
        assert!(same < 64);
    }
}
