//! Streaming opacity certification, live: the sharded recorder feeds
//! the chunked online certifier *while* worker threads hammer the TM,
//! and the verdict is in hand the moment the workload drains.
//!
//! Three correct TMs (TL2, NOrec, global-lock) must certify opaque; the
//! seeded lost-update TM must be flagged, with the violation located by
//! global sequence number.
//!
//! Run with: `cargo run --example online_audit`
//!
//! Set `TM_TELEMETRY=stderr` (or a file path) to stream the NDJSON
//! heartbeats — sustained ops/sec and checker lag — and watch the run
//! in `tm-obs tail`. This doubles as the CI smoke for the pipeline.

use tm_liveness_repro::prelude::*;

fn main() {
    let telemetry = Telemetry::from_env();
    let workload = OnlineWorkload {
        threads: 2,
        accounts: 8,
        txs_per_thread: 5_000,
        seed: 0xa0d1_70c4,
    };
    let config = || OnlineConfig {
        telemetry: telemetry.clone(),
        ..OnlineConfig::default()
    };

    println!(
        "online audit: {} threads x {} txs over {} accounts\n",
        workload.threads, workload.txs_per_thread, workload.accounts
    );

    let runs: Vec<(&str, OnlineReport)> = vec![
        (
            "tl2",
            certify_workload(ConcurrentTl2::new(workload.accounts), &workload, config()),
        ),
        (
            "norec",
            certify_workload(ConcurrentNOrec::new(workload.accounts), &workload, config()),
        ),
        (
            "global-lock",
            certify_workload(
                ConcurrentGlobalLock::new(workload.accounts),
                &workload,
                config(),
            ),
        ),
    ];
    for (name, report) in &runs {
        println!(
            "{name:12} {:>7} events  {:>3} epochs  {:>5} chunks  lag<= {}  -> {}",
            report.events,
            report.epochs_sealed,
            report.chunks_certified,
            report.max_lag_epochs,
            if report.certified_opaque() {
                "certified opaque"
            } else {
                "VIOLATION"
            }
        );
        assert!(
            report.certified_opaque(),
            "{name} must certify opaque, got {:?}",
            report.violation
        );
    }

    // The canary: a global-lock TM that silently discards the writes of
    // one seeded commit. The pipeline must catch it.
    let buggy = ConcurrentBuggy::new(workload.accounts, 40);
    let report = certify_workload(buggy, &workload, config());
    let violation = report
        .violation
        .as_ref()
        .expect("the seeded lost update must be flagged");
    println!(
        "\nbuggy-lost-update flagged at seq {}: {}",
        violation.seq, violation.detail
    );

    println!("\nConclusion: certification kept pace with recording, and only");
    println!("the seeded defect was flagged.");
}
