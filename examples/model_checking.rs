//! Model checking TMs: exhaustive interleaving exploration and automaton
//! state enumeration — including re-discovering the paper's `Fgp`
//! specification bug automatically.
//!
//! Run with: `cargo run --release --example model_checking`
//!
//! Telemetry: set `TM_TELEMETRY=stderr` (or a file path) to stream the
//! explorer's NDJSON event log, or pass `--progress` to force the
//! stderr stream — heartbeats included — when the variable is unset.

use tm_liveness_repro::prelude::*;
use tm_liveness_repro::sim::PlannedOp;
use tm_liveness_repro::stm::BoxedTm;

use tm_liveness_repro::sim::explore_schedules_naive;

fn main() {
    let x = TVarId(0);
    // `--progress` forces the stderr NDJSON stream (run_start, phase
    // spans, heartbeats, verdicts) when TM_TELEMETRY is unset;
    // otherwise the environment decides (off by default).
    let progress = std::env::args().any(|a| a == "--progress");
    let telemetry = if progress && std::env::var_os("TM_TELEMETRY").is_none() {
        Telemetry::to_stderr()
    } else {
        Telemetry::from_env()
    };

    println!("== 1. Figure 15: the reachable states of Fgp (1 proc, 1 binary var) ==\n");
    let graph =
        enumerate_states(&Fgp::new(1, 1, FgpVariant::CpOnly), &[0, 1], 1_000).expect("tiny graph");
    println!(
        "   {} states, {} edges, abort edges: {}\n",
        graph.state_count(),
        graph.edges.len(),
        graph.has_abort_edges()
    );

    println!("== 2. Exhaustive opacity check of every TM, all 2^12 schedules ==\n");
    let scripts = vec![ClientScript::increment(x), ClientScript::increment(x)];
    for factory_name in ["fgp", "tl2", "tinystm", "swisstm", "norec", "ostm", "dstm"] {
        let name = factory_name.to_string();
        let result = explore_schedules(
            || {
                nonblocking_catalog(2, 1)
                    .into_iter()
                    .find(|tm| tm.name() == name)
                    .expect("catalogue name")
            },
            &scripts,
            12,
        );
        println!(
            "   {:<10} schedules={} violations={}",
            factory_name,
            result.schedules,
            result.violations.len()
        );
        assert!(result.all_opaque());
    }

    println!("\n== 2b. The prefix-sharing DFS makes depth 16 routine ==\n");
    let deep = explore_with(
        || Box::new(tm_liveness_repro::stm::FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm,
        &scripts,
        &ExploreConfig::new(16).with_telemetry(&telemetry),
    );
    println!(
        "   fgp        schedules={} (2^16) violations={}",
        deep.schedules,
        deep.violations.len()
    );
    assert!(deep.all_opaque());

    println!("\n== 2c. Sleep sets skip commuting interleavings (disjoint vars) ==\n");
    let disjoint = vec![
        ClientScript::increment(x),
        ClientScript::increment(TVarId(1)),
    ];
    let pruned = explore_with(
        || Box::new(tm_liveness_repro::stm::FgpTm::new(2, 2, FgpVariant::CpOnly)) as BoxedTm,
        &disjoint,
        &ExploreConfig::new(12)
            .with_sleep_sets()
            .with_telemetry(&telemetry),
    );
    println!(
        "   fgp        schedules={} of 4096 after pruning ({} subtrees skipped)",
        pruned.schedules, pruned.pruned_subtrees
    );
    assert!(pruned.all_opaque());

    println!("\n== 2d. Source-set DPOR explores one schedule per equivalence class ==\n");
    let contended = vec![
        ClientScript::increment(x),
        ClientScript::increment(x),
        ClientScript::read_both(x, TVarId(1)),
    ];
    let full = explore_with(
        || Box::new(tm_liveness_repro::stm::FgpTm::new(3, 2, FgpVariant::CpOnly)) as BoxedTm,
        &contended,
        &ExploreConfig::new(8).sequential(),
    );
    let dpor = explore_with(
        || Box::new(tm_liveness_repro::stm::FgpTm::new(3, 2, FgpVariant::CpOnly)) as BoxedTm,
        &contended,
        &ExploreConfig::new(8)
            .sequential()
            .with_dpor()
            .with_telemetry(&telemetry),
    );
    println!(
        "   fgp 3p/d8  executed {} of {} schedules ({:.0}x fewer), same verdict",
        dpor.schedules,
        full.schedules,
        full.schedules as f64 / dpor.schedules as f64
    );
    assert_eq!(full.all_opaque(), dpor.all_opaque());
    assert!(dpor.schedules * 5 <= full.schedules);

    println!("\n== 3. The literal Fgp formal rules fail the same check ==\n");
    let scripts = vec![
        ClientScript::increment(x),
        ClientScript::new(vec![PlannedOp::Read(x), PlannedOp::Write(x, 5)]),
    ];
    let result = explore_schedules(
        || tm_liveness_repro::stm::literal_fgp(2, 1) as BoxedTm,
        &scripts,
        10,
    );
    println!(
        "   fgp-literal: {} of {} schedules produce NON-OPAQUE histories",
        result.violations.len(),
        result.schedules
    );
    if let Some(v) = result.violations.first() {
        println!("\n   shortest counterexample found:");
        print!("{}", v.history.render_lanes());
        println!("   ({})\n", v.detail);
    }
    println!("   The paper's prose is fine; its formal write rule forgets to gate");
    println!("   Val updates on Status[k] = c. See EXPERIMENTS.md for the analysis.");

    println!("\n== 4. Differential check: DFS explorer ≡ the naive enumerator ==\n");
    let start = std::time::Instant::now();
    let naive = explore_schedules_naive(
        || tm_liveness_repro::stm::literal_fgp(2, 1) as BoxedTm,
        &scripts,
        10,
    );
    let naive_time = start.elapsed();
    let start = std::time::Instant::now();
    let dfs = explore_schedules(
        || tm_liveness_repro::stm::literal_fgp(2, 1) as BoxedTm,
        &scripts,
        10,
    );
    let dfs_time = start.elapsed();
    assert_eq!(naive, dfs, "explorers must produce identical reports");
    println!(
        "   identical reports ({} schedules, {} violations); naive {:?}, dfs {:?}",
        dfs.schedules,
        dfs.violations.len(),
        naive_time,
        dfs_time,
    );
}
