//! Model checking TMs: exhaustive interleaving exploration and automaton
//! state enumeration — including re-discovering the paper's `Fgp`
//! specification bug automatically.
//!
//! Run with: `cargo run --release --example model_checking`

use tm_liveness_repro::prelude::*;
use tm_liveness_repro::sim::PlannedOp;
use tm_liveness_repro::stm::BoxedTm;

fn main() {
    let x = TVarId(0);

    println!("== 1. Figure 15: the reachable states of Fgp (1 proc, 1 binary var) ==\n");
    let graph = enumerate_states(&Fgp::new(1, 1, FgpVariant::CpOnly), &[0, 1], 1_000)
        .expect("tiny graph");
    println!(
        "   {} states, {} edges, abort edges: {}\n",
        graph.state_count(),
        graph.edges.len(),
        graph.has_abort_edges()
    );

    println!("== 2. Exhaustive opacity check of every TM, all 2^10 schedules ==\n");
    let scripts = vec![ClientScript::increment(x), ClientScript::increment(x)];
    for factory_name in ["fgp", "tl2", "tinystm", "swisstm", "norec", "ostm", "dstm"] {
        let name = factory_name.to_string();
        let result = explore_schedules(
            || {
                nonblocking_catalog(2, 1)
                    .into_iter()
                    .find(|tm| tm.name() == name)
                    .expect("catalogue name")
            },
            &scripts,
            10,
        );
        println!(
            "   {:<10} schedules={} violations={}",
            factory_name,
            result.schedules,
            result.violations.len()
        );
        assert!(result.all_opaque());
    }

    println!("\n== 3. The literal Fgp formal rules fail the same check ==\n");
    let scripts = vec![
        ClientScript::increment(x),
        ClientScript::new(vec![PlannedOp::Read(x), PlannedOp::Write(x, 5)]),
    ];
    let result = explore_schedules(
        || tm_liveness_repro::stm::literal_fgp(2, 1) as BoxedTm,
        &scripts,
        10,
    );
    println!(
        "   fgp-literal: {} of {} schedules produce NON-OPAQUE histories",
        result.violations.len(),
        result.schedules
    );
    if let Some(v) = result.violations.first() {
        println!("\n   shortest counterexample found:");
        print!("{}", v.history.render_lanes());
        println!("   ({})\n", v.detail);
    }
    println!("   The paper's prose is fine; its formal write rule forgets to gate");
    println!("   Val updates on Status[k] = c. See EXPERIMENTS.md for the analysis.");
}
