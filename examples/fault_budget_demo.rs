//! Budgeted graceful degradation, demonstrated end to end: run the
//! fault-prone liveness checker under a deliberately tiny state budget
//! so the search exhausts mid-exploration, and print the resulting
//! *partial* report — explicit `exhausted` reason, no headline claim.
//!
//! With `TM_TELEMETRY` set, the NDJSON stream carries the
//! `budget_exhausted` event and a verdict marked `"partial": true`; CI
//! pipes that stream through `tm-obs summary`, asserting that strict
//! `--require-verdicts` rejects it and `--allow-partial` accepts it.
//!
//! Run with: `TM_TELEMETRY=stderr cargo run --example fault_budget_demo`

use tm_liveness_repro::prelude::*;
use tm_liveness_repro::sim::PlannedOp;
use tm_liveness_repro::stm::BoxedTm;

fn main() {
    let x = TVarId(0);
    let scripts = vec![
        ClientScript::new(vec![PlannedOp::Write(x, 1)]),
        ClientScript::new(vec![PlannedOp::Read(x), PlannedOp::Write(x, 2)]),
    ];
    let telemetry = Telemetry::from_env();
    // Fault-prone (≤1 crash + parasitic turns) to blow the graph up,
    // budgeted far below its size so the run must degrade.
    let config = LivecheckConfig::new(12)
        .with_telemetry(&telemetry)
        .with_faults(FaultConfig::with_crashes(1).and_parasitic())
        .with_budget(Budget::unlimited().with_max_states(25));
    let report = livecheck(|| Box::new(Tl2::new(2, 1)) as BoxedTm, &scripts, &config);

    println!("=== Budgeted fault-prone livecheck (tl2) ===");
    println!(
        "explored {} states / {} edges before the budget tripped",
        report.states, report.edges
    );
    let reason = report
        .exhausted
        .as_deref()
        .expect("a 25-state budget must trip on the fault-prone graph (hundreds of states)");
    println!("partial: {reason}");
    println!("(no starvation verdict is claimed — the remainder is unexplored)");

    // The partial prefix is still sound: everything it counted is real.
    assert_eq!(reason, "state budget exhausted");
    assert!(report.states >= 25, "the prefix up to the cap was explored");
    assert!(
        report.crash_injected != 0 || report.parasite_injected != 0,
        "fault transitions were exercised before the trip"
    );
    println!("\nfault_budget_demo: all checks passed");
}
