//! Theorem 1, live: the Algorithm 1 / Algorithm 2 adversaries starve
//! process `p1` against every opaque TM in the catalogue, while the
//! competitor commits round after round — and the whole run stays opaque.
//!
//! Run with: `cargo run --example adversary_demo`

use tm_liveness_repro::prelude::*;

fn main() {
    let x = TVarId(0);
    let steps = 20_000;

    println!("Theorem 1 experiment: {steps} adversary steps per TM\n");
    println!("--- Algorithm 1 (crash-prone flavour) ---");
    for mut tm in nonblocking_catalog(2, 1) {
        let mut adv = Algorithm1::new(x);
        let report = run_game(
            tm.as_mut(),
            &mut adv,
            GameConfig::steps(steps).check_opacity(),
        );
        println!("{}", report.row());
        assert_eq!(report.commits[0], 0, "p1 must starve");
        assert!(report.safety_ok, "history must stay opaque");
    }

    println!("\n--- Algorithm 2 (parasitic-prone flavour) ---");
    for mut tm in nonblocking_catalog(2, 1) {
        let mut adv = Algorithm2::new(x);
        let report = run_game(
            tm.as_mut(),
            &mut adv,
            GameConfig::steps(steps).check_opacity(),
        );
        println!("{}", report.row());
        assert_eq!(report.commits[0], 0, "p1 must starve");
    }

    println!("\n--- The global-lock TM 'escapes' by blocking everyone ---");
    let mut tm = GlobalLock::new(2, 1);
    let mut adv = Algorithm1::new(x);
    let report = run_game(&mut tm, &mut adv, GameConfig::steps(steps));
    println!("{}", report.row());
    assert_eq!(report.commits, vec![0, 0]);

    println!("\nConclusion: every opaque TM lets the adversary starve p1 —");
    println!("local progress + opacity is impossible (Theorem 1).");
}
