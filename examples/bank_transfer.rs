//! A concurrent bank on real threads: the same workload on three
//! concurrent TMs (global lock, TL2, NOrec), checking the conservation
//! invariant and comparing wall-clock throughput — the Amdahl's-law point
//! of the paper's footnote 1 in miniature.
//!
//! Run with: `cargo run --release --example bank_transfer`

use std::sync::Arc;
use std::time::Instant;

use tm_liveness_repro::prelude::*;
use tm_liveness_repro::stm::concurrent::ConcurrentTm;
use tm_liveness_repro::stm::concurrent::Transaction as _;

const ACCOUNTS: usize = 64;
const INITIAL_BALANCE: u64 = 1_000;
const TRANSFERS_PER_THREAD: usize = 20_000;

fn run_bank<T: ConcurrentTm + 'static>(tm: Arc<T>, threads: usize) -> (f64, u64) {
    // Seed the accounts.
    for j in 0..ACCOUNTS {
        atomically(&*tm, |tx| tx.write(TVarId(j), INITIAL_BALANCE));
    }
    let start = Instant::now();
    let mut total_aborts = 0;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let tm = Arc::clone(&tm);
            std::thread::spawn(move || {
                let mut aborts = 0;
                let mut s = 0x9E3779B97F4A7C15u64 ^ (t as u64).wrapping_mul(0xD1B54A32D192ED03);
                for _ in 0..TRANSFERS_PER_THREAD {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let from = (s % ACCOUNTS as u64) as usize;
                    let to = ((s >> 16) % ACCOUNTS as u64) as usize;
                    if from == to {
                        continue;
                    }
                    let (_, a) = atomically(&*tm, |tx| {
                        let src = tx.read(TVarId(from))?;
                        let dst = tx.read(TVarId(to))?;
                        if src > 0 {
                            tx.write(TVarId(from), src - 1)?;
                            tx.write(TVarId(to), dst + 1)?;
                        }
                        Ok(())
                    });
                    aborts += a;
                }
                aborts
            })
        })
        .collect();
    for h in handles {
        total_aborts += h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let throughput = (threads * TRANSFERS_PER_THREAD) as f64 / elapsed;
    (throughput, total_aborts)
}

fn check_conservation(snapshot: &[u64]) {
    let total: u64 = snapshot.iter().sum();
    assert_eq!(
        total,
        ACCOUNTS as u64 * INITIAL_BALANCE,
        "conservation violated!"
    );
}

fn main() {
    println!("Bank: {ACCOUNTS} accounts, {TRANSFERS_PER_THREAD} transfers/thread\n");
    println!(
        "{:<12} {:>8} {:>16} {:>12}",
        "tm", "threads", "transfers/sec", "aborts"
    );
    for threads in [1, 2, 4, 8] {
        let gl = Arc::new(ConcurrentGlobalLock::new(ACCOUNTS));
        let (tput, aborts) = run_bank(Arc::clone(&gl), threads);
        check_conservation(&gl.snapshot());
        println!(
            "{:<12} {threads:>8} {tput:>16.0} {aborts:>12}",
            "global-lock"
        );

        let tl2 = Arc::new(ConcurrentTl2::new(ACCOUNTS));
        let (tput, aborts) = run_bank(Arc::clone(&tl2), threads);
        check_conservation(&tl2.snapshot());
        println!("{:<12} {threads:>8} {tput:>16.0} {aborts:>12}", "tl2");

        let norec = Arc::new(ConcurrentNOrec::new(ACCOUNTS));
        let (tput, aborts) = run_bank(Arc::clone(&norec), threads);
        check_conservation(&norec.snapshot());
        println!("{:<12} {threads:>8} {tput:>16.0} {aborts:>12}", "norec");
        println!();
    }
    println!("Conservation invariant held for every TM. Note: at this");
    println!("micro-transaction granularity the global lock often wins on raw");
    println!("throughput — the STMs pay per-access bookkeeping — while the");
    println!("liveness difference (a crashed holder starves everyone; see the");
    println!("ABL1 harness) is what the paper's footnote 1 is really about.");
}
