//! A concurrent bank on real threads: the same workload on three
//! concurrent TMs (global lock, TL2, NOrec), checking the conservation
//! invariant and comparing wall-clock throughput — the Amdahl's-law point
//! of the paper's footnote 1 in miniature.
//!
//! Run with: `cargo run --release --example bank_transfer`
//!
//! Telemetry: set `TM_TELEMETRY=stderr` (or a file path) to stream an
//! NDJSON event log of the sweep, or pass `--progress` to force the
//! stderr stream when the variable is unset. The stream is consumable
//! live: `cargo run --release --example bank_transfer -- --progress \
//! 2>&1 >/dev/null | tm-obs tail`.

use std::sync::Arc;
use std::time::Instant;

use tm_liveness_repro::prelude::*;
use tm_liveness_repro::stm::concurrent::ConcurrentTm;
use tm_liveness_repro::stm::concurrent::Transaction as _;
use tm_liveness_repro::telemetry::Json;

const ACCOUNTS: usize = 64;
const INITIAL_BALANCE: u64 = 1_000;
const TRANSFERS_PER_THREAD: usize = 20_000;

fn run_bank<T: ConcurrentTm + 'static>(
    tm: Arc<T>,
    threads: usize,
    telemetry: &Telemetry,
) -> (f64, u64) {
    // Seed the accounts.
    for j in 0..ACCOUNTS {
        atomically(&*tm, |tx| tx.write(TVarId(j), INITIAL_BALANCE));
    }
    let start = Instant::now();
    let mut total_aborts = 0;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let tm = Arc::clone(&tm);
            std::thread::spawn(move || {
                let mut aborts = 0;
                let mut s = 0x9E3779B97F4A7C15u64 ^ (t as u64).wrapping_mul(0xD1B54A32D192ED03);
                for _ in 0..TRANSFERS_PER_THREAD {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let from = (s % ACCOUNTS as u64) as usize;
                    let to = ((s >> 16) % ACCOUNTS as u64) as usize;
                    if from == to {
                        continue;
                    }
                    let (_, a) = atomically(&*tm, |tx| {
                        let src = tx.read(TVarId(from))?;
                        let dst = tx.read(TVarId(to))?;
                        if src > 0 {
                            tx.write(TVarId(from), src - 1)?;
                            tx.write(TVarId(to), dst + 1)?;
                        }
                        Ok(())
                    });
                    aborts += a;
                }
                aborts
            })
        })
        .collect();
    for (done, h) in handles.into_iter().enumerate() {
        total_aborts += h.join().unwrap();
        // One gauge per joined worker (rate-limited at the handle), so
        // `tm-obs tail` shows the sweep advancing on long runs.
        telemetry.heartbeat("bank", || {
            let transfers = ((done + 1) * TRANSFERS_PER_THREAD) as f64;
            vec![
                ("threads_done", Json::Int(done as i64 + 1)),
                ("aborts", Json::Int(total_aborts as i64)),
                (
                    "transfers_per_sec",
                    Json::Num(transfers / start.elapsed().as_secs_f64().max(1e-9)),
                ),
            ]
        });
    }
    let elapsed = start.elapsed().as_secs_f64();
    let throughput = (threads * TRANSFERS_PER_THREAD) as f64 / elapsed;
    (throughput, total_aborts)
}

/// One measured cell of the sweep, bracketed by `run_start` and
/// `verdict` events so the stream feeds `tm-obs tail` / `summary`.
fn measure<T: ConcurrentTm + 'static>(tm: Arc<T>, threads: usize, telemetry: &Telemetry) {
    let name = tm.name();
    if telemetry.streams() {
        telemetry.event(
            "run_start",
            &[
                ("engine", Json::str("bank")),
                ("tm", Json::str(name)),
                ("depth", Json::Int(TRANSFERS_PER_THREAD as i64)),
                ("processes", Json::Int(threads as i64)),
            ],
        );
    }
    let (tput, aborts) = run_bank(Arc::clone(&tm), threads, telemetry);
    // The conservation invariant, read back transactionally.
    let (total, _) = atomically(&*tm, |tx| {
        let mut sum = 0u64;
        for j in 0..ACCOUNTS {
            sum += tx.read(TVarId(j))?;
        }
        Ok(sum)
    });
    let conserved = total == ACCOUNTS as u64 * INITIAL_BALANCE;
    assert!(conserved, "conservation violated!");
    if telemetry.streams() {
        telemetry.event(
            "verdict",
            &[
                ("engine", Json::str("bank")),
                ("tm", Json::str(name)),
                ("conserved", Json::Bool(conserved)),
                ("threads", Json::Int(threads as i64)),
                ("transfers_per_sec", Json::Num(tput)),
                ("aborts", Json::Int(aborts as i64)),
            ],
        );
    }
    println!("{name:<12} {threads:>8} {tput:>16.0} {aborts:>12}");
}

fn main() {
    // `--progress` forces the stderr NDJSON stream when TM_TELEMETRY is
    // unset; otherwise the variable decides (off / stderr / file path).
    let progress = std::env::args().any(|a| a == "--progress");
    let telemetry = if progress && std::env::var_os("TM_TELEMETRY").is_none() {
        Telemetry::to_stderr()
    } else {
        Telemetry::from_env()
    };
    println!("Bank: {ACCOUNTS} accounts, {TRANSFERS_PER_THREAD} transfers/thread\n");
    println!(
        "{:<12} {:>8} {:>16} {:>12}",
        "tm", "threads", "transfers/sec", "aborts"
    );
    for threads in [1, 2, 4, 8] {
        let gl = Arc::new(ConcurrentGlobalLock::new(ACCOUNTS));
        measure(gl, threads, &telemetry);
        let tl2 = Arc::new(ConcurrentTl2::new(ACCOUNTS));
        measure(tl2, threads, &telemetry);
        let norec = Arc::new(ConcurrentNOrec::new(ACCOUNTS));
        measure(norec, threads, &telemetry);
        println!();
    }
    println!("Conservation invariant held for every TM. Note: at this");
    println!("micro-transaction granularity the global lock often wins on raw");
    println!("throughput — the STMs pay per-access bookkeeping — while the");
    println!("liveness difference (a crashed holder starves everyone; see the");
    println!("ABL1 harness) is what the paper's footnote 1 is really about.");
}
