//! Quickstart: histories, safety checking, and liveness classification.
//!
//! Run with: `cargo run --example quickstart`

use tm_liveness::figures as live_figures;
use tm_liveness_repro::prelude::*;

fn main() {
    println!("== 1. Build the paper's example histories and check safety ==\n");
    for (name, h) in [
        ("Figure 1", figures::figure_1()),
        ("Figure 3", figures::figure_3()),
        ("Figure 4", figures::figure_4()),
    ] {
        println!("{name}:");
        print!("{}", h.render_lanes());
        println!(
            "  opaque: {:<5}  strictly serializable: {}\n",
            is_opaque(&h),
            is_strictly_serializable(&h)
        );
    }

    println!("== 2. Run a transaction against a real STM ==\n");
    let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
    let mut tm = Recorded::new(Tl2::new(2, 1));
    tm.invoke(p1, Invocation::Read(x));
    tm.invoke(p2, Invocation::Write(x, 42));
    tm.invoke(p2, Invocation::TryCommit);
    tm.invoke(p1, Invocation::Write(x, 1));
    tm.invoke(p1, Invocation::TryCommit); // aborted: p2 committed first
    println!("TL2 produced:");
    print!("{}", tm.history().render_lanes());
    println!("  opaque: {}\n", is_opaque(tm.history()));

    println!("== 3. Classify processes in an infinite history (Figure 7) ==\n");
    let h = live_figures::figure_7();
    print!("{}", h.render());
    for (p, class) in tm_liveness::classify_all(&h) {
        println!("  {p}: {class}");
    }
    println!(
        "  local progress: {}   global progress: {}   solo progress: {}",
        LocalProgress.contains(&h),
        GlobalProgress.contains(&h),
        SoloProgress.contains(&h),
    );
}
