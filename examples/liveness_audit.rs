//! Liveness audit, in two phases:
//!
//! 1. classify every process in the paper's infinite-history figures and
//!    decide which TM-liveness properties each history ensures —
//!    reproducing the claims of §3.2 and §5.1 mechanically;
//! 2. drive the liveness *model checker* end-to-end across the catalogue:
//!    explore each TM's canonical state graph under a contended bounded
//!    workload, detect lassos, classify them, and print the certified
//!    per-TM verdict table. The phase asserts its own headline results
//!    (CI runs this example), so the subsystem cannot silently rot:
//!    the global-lock TM must certify starvation-free at the bound while
//!    greedy `Fgp` must yield a classified starvation lasso.
//!
//! Run with: `cargo run --example liveness_audit`
//!
//! Telemetry: set `TM_TELEMETRY=stderr` (or a file path) to stream the
//! checker's NDJSON event log, or pass `--progress` to force the stderr
//! stream — heartbeats included — when the variable is unset.
//!
//! Fault-prone mode: `--crashes <k>` lets the checker crash up to `k`
//! processes at every reachable configuration, `--parasitic` lets it
//! turn processes parasitic — both quantified exhaustively, streaming
//! `fault_injected` events and (in the parallel search) heartbeats that
//! carry the crashed-process count. With faults on, the audit reports
//! the fairness-filtered verdicts: which starvation survives fair
//! scheduling, and which of it is crash-induced (Theorem 1's corollary:
//! with one crash allowed, *no* TM in the catalogue stays
//! starvation-free — even the global lock, via a crashed lock holder).

use tm_liveness_repro::liveness::{
    classify_all, figures, meta, GlobalProgress, InfiniteHistory, LocalProgress, SoloProgress,
    TmLivenessProperty,
};
use tm_liveness_repro::prelude::*;
use tm_liveness_repro::sim::PlannedOp;
use tm_liveness_repro::stm::{BoxedTm, SwissTm};

fn audit(name: &str, h: &InfiniteHistory) {
    println!("=== {name} ===");
    print!("{}", h.render());
    for (p, class) in classify_all(h) {
        println!("  {p}: {class}");
    }
    println!(
        "  local: {:<5}  global: {:<5}  solo: {:<5}  nonblocking-cond: {:<5}  biprogressing-cond: {}",
        LocalProgress.contains(h),
        GlobalProgress.contains(h),
        SoloProgress.contains(h),
        meta::satisfies_nonblocking_condition(h),
        meta::satisfies_biprogressing_condition(h),
    );
    println!();
}

fn process_list(ps: &[ProcessId]) -> String {
    if ps.is_empty() {
        "-".to_string()
    } else {
        ps.iter()
            .map(|p| format!("p{}", p.index() + 1))
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn main() {
    audit("Figure 5 (local progress)", &figures::figure_5());
    audit("Figure 6 (global, not local)", &figures::figure_6());
    audit("Figure 7 (solo progress)", &figures::figure_7());
    audit("Figure 9 (Algorithm 1, p1 crashes)", &figures::figure_9());
    audit("Figure 10 (Algorithm 1, p1 correct)", &figures::figure_10());
    audit(
        "Figure 12 (Algorithm 2, p1 parasitic)",
        &figures::figure_12(),
    );
    audit(
        "Figure 14 (blocking: no nonblocking property)",
        &figures::figure_14(),
    );

    println!("=== Property classes over the figure corpus (§5.1) ===");
    let corpus = figures::all_figures();
    let props: [(&str, &dyn TmLivenessProperty); 3] = [
        ("local progress", &LocalProgress),
        ("global progress", &GlobalProgress),
        ("solo progress", &SoloProgress),
    ];
    for (name, p) in props {
        let nonblocking = meta::nonblocking_counterexample(p, &corpus).is_none();
        let biprogressing = meta::biprogressing_counterexample(p, &corpus).is_none();
        println!("  {name:<16} nonblocking: {nonblocking:<5}  biprogressing: {biprogressing}");
    }
    println!("\nMatches the paper: local progress is nonblocking AND biprogressing");
    println!("(hence impossible with opacity, Theorem 2); global progress is not");
    println!("biprogressing; solo progress is nonblocking but not biprogressing.");

    // ---- Phase 2: the liveness model checker across the catalogue ----

    let x = TVarId(0);
    // Constant-write contention: bounded values keep the canonical
    // state graph finite, so lassos exist and the bound is meaningful.
    let scripts = vec![
        ClientScript::new(vec![PlannedOp::Write(x, 1)]),
        ClientScript::new(vec![PlannedOp::Read(x), PlannedOp::Write(x, 2)]),
    ];
    type Factory = Box<dyn Fn() -> BoxedTm>;
    let catalog: Vec<(&str, Factory)> = vec![
        (
            "fgp",
            Box::new(|| Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm),
        ),
        ("tl2", Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm)),
        ("norec", Box::new(|| Box::new(NOrec::new(2, 1)) as BoxedTm)),
        (
            "tinystm",
            Box::new(|| Box::new(TinyStm::new(2, 1)) as BoxedTm),
        ),
        (
            "swisstm",
            Box::new(|| Box::new(SwissTm::new(2, 1)) as BoxedTm),
        ),
        ("ostm", Box::new(|| Box::new(Ostm::new(2, 1)) as BoxedTm)),
        ("dstm", Box::new(|| Box::new(Dstm::new(2, 1)) as BoxedTm)),
        (
            "global-lock",
            Box::new(|| Box::new(GlobalLock::new(2, 1)) as BoxedTm),
        ),
    ];
    let depth = 12;
    // `--progress` forces the stderr NDJSON stream (run_start, phase
    // spans, heartbeats, per-TM verdicts) when TM_TELEMETRY is unset;
    // otherwise the environment decides (off by default).
    let args: Vec<String> = std::env::args().collect();
    let progress = args.iter().any(|a| a == "--progress");
    // `--crashes <k>` / `--parasitic`: fault-prone checking — the
    // scheduler may crash up to k processes and turn processes
    // parasitic, exhaustively at every reachable configuration.
    let crashes: usize = args
        .iter()
        .position(|a| a == "--crashes")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let parasitic = args.iter().any(|a| a == "--parasitic");
    let faults = if parasitic {
        FaultConfig::with_crashes(crashes).and_parasitic()
    } else {
        FaultConfig::with_crashes(crashes)
    };
    let telemetry = if progress && std::env::var_os("TM_TELEMETRY").is_none() {
        Telemetry::to_stderr()
    } else {
        Telemetry::from_env()
    };
    let config = LivecheckConfig::new(depth)
        .with_telemetry(&telemetry)
        .with_faults(faults);

    println!("\n=== Livecheck: lasso search over the canonical state graph ===");
    if faults.enabled() {
        println!(
            "fault mode: up to {crashes} crash(es){} — every placement quantified",
            if parasitic { " + parasitic turns" } else { "" }
        );
    }
    println!(
        "workload: p1 = (write x 1 · tryC)^ω, p2 = (read x · write x 2 · tryC)^ω, depth {depth}\n"
    );
    println!(
        "  {:<12} {:>7} {:>7} {:>7} {:>7}  {:<11} {:<10} {:<10} {:<11} verdict",
        "tm",
        "states",
        "edges",
        "cycles",
        "lassos",
        "progressing",
        "starving",
        "parasitic",
        "blocked"
    );
    let mut reports = Vec::new();
    for (name, factory) in &catalog {
        let report = livecheck(&**factory, &scripts, &config);
        assert_eq!(
            report.rejected_cycles, 0,
            "{name}: a rejected cycle means a fingerprint canonicalization bug"
        );
        let verdict = if report.lasso_starvation_free() {
            "starvation-free at bound"
        } else {
            "starvation/parasitic lasso"
        };
        println!(
            "  {:<12} {:>7} {:>7} {:>7} {:>7}  {:<11} {:<10} {:<10} {:<11} {verdict}",
            *name,
            report.states,
            report.edges,
            report.cycles_detected,
            report.lassos.len(),
            process_list(&report.progressing_processes()),
            process_list(&report.starving_processes()),
            process_list(&report.parasitic_processes()),
            process_list(&report.blocked_processes()),
        );
        if faults.enabled() {
            println!(
                "  {:<12} fair: {} · crash-victims: {} · crashed-mask: {:#b}",
                "",
                if report.fair_starvation_free() {
                    "starvation-free".to_string()
                } else {
                    format!(
                        "starving {}",
                        process_list(&report.fair_starving_processes())
                    )
                },
                process_list(&report.crash_victims()),
                report.crash_injected,
            );
        }
        reports.push((*name, report));
    }

    // A concrete starving lasso from the greedy TM, rendered with the
    // classify machinery — the Figure 6/10 shape found mechanically.
    let (_, fgp) = reports.iter().find(|(n, _)| *n == "fgp").expect("fgp ran");
    let witness = fgp
        .lassos
        .iter()
        .find(|l| !l.starving().is_empty())
        .expect("fgp must yield a starving lasso under contention");
    println!("\n=== A detected Fgp starvation lasso (cf. Figures 6/10) ===");
    print!("{}", witness.lasso.render());
    for (p, class) in &witness.classes {
        println!("  {p}: {class}");
    }
    println!(
        "  local: {:<5}  global: {:<5}",
        LocalProgress.contains(&witness.lasso),
        GlobalProgress.contains(&witness.lasso),
    );

    // ---- Assertions: the CI-checked headline results. ----
    let report_of = |name: &str| {
        &reports
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .1
    };
    // Acceptance: contended greedy Fgp yields a classified starvation
    // lasso consistent with the paper's taxonomy...
    assert!(!report_of("fgp").lasso_starvation_free());
    assert!(GlobalProgress.contains(&witness.lasso));
    assert!(!LocalProgress.contains(&witness.lasso));
    if !faults.enabled() {
        // ...while the fault-free global-lock TM is certified
        // lasso-starvation-free at the same bound (it blocks instead:
        // §1.1 / Figure 14).
        assert!(report_of("global-lock").lasso_starvation_free());
    } else if crashes > 0 {
        // Theorem 1's corollary, mechanically: one crash suffices to
        // make even the lock TM's blocking crash-induced — a crashed
        // holder leaves the other process fair-scheduled yet stuck.
        assert!(
            !report_of("global-lock").crash_victims().is_empty(),
            "a crashed lock holder must produce a certified crash victim"
        );
    }
    assert!(!report_of("global-lock").blocked_processes().is_empty());
    // Every TM in the catalogue keeps some process progressing forever.
    for (name, report) in &reports {
        assert!(
            !report.progressing_processes().is_empty(),
            "{name}: nobody can progress"
        );
    }
    println!("\nliveness_audit: all checks passed");
}
