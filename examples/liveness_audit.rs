//! Liveness audit: classify every process in the paper's infinite-history
//! figures and decide which TM-liveness properties each history ensures —
//! reproducing the claims of §3.2 and §5.1 mechanically.
//!
//! Run with: `cargo run --example liveness_audit`

use tm_liveness_repro::liveness::{
    classify_all, figures, meta, GlobalProgress, InfiniteHistory, LocalProgress, SoloProgress,
    TmLivenessProperty,
};

fn audit(name: &str, h: &InfiniteHistory) {
    println!("=== {name} ===");
    print!("{}", h.render());
    for (p, class) in classify_all(h) {
        println!("  {p}: {class}");
    }
    println!(
        "  local: {:<5}  global: {:<5}  solo: {:<5}  nonblocking-cond: {:<5}  biprogressing-cond: {}",
        LocalProgress.contains(h),
        GlobalProgress.contains(h),
        SoloProgress.contains(h),
        meta::satisfies_nonblocking_condition(h),
        meta::satisfies_biprogressing_condition(h),
    );
    println!();
}

fn main() {
    audit("Figure 5 (local progress)", &figures::figure_5());
    audit("Figure 6 (global, not local)", &figures::figure_6());
    audit("Figure 7 (solo progress)", &figures::figure_7());
    audit("Figure 9 (Algorithm 1, p1 crashes)", &figures::figure_9());
    audit("Figure 10 (Algorithm 1, p1 correct)", &figures::figure_10());
    audit(
        "Figure 12 (Algorithm 2, p1 parasitic)",
        &figures::figure_12(),
    );
    audit(
        "Figure 14 (blocking: no nonblocking property)",
        &figures::figure_14(),
    );

    println!("=== Property classes over the figure corpus (§5.1) ===");
    let corpus = figures::all_figures();
    let props: [(&str, &dyn TmLivenessProperty); 3] = [
        ("local progress", &LocalProgress),
        ("global progress", &GlobalProgress),
        ("solo progress", &SoloProgress),
    ];
    for (name, p) in props {
        let nonblocking = meta::nonblocking_counterexample(p, &corpus).is_none();
        let biprogressing = meta::biprogressing_counterexample(p, &corpus).is_none();
        println!("  {name:<16} nonblocking: {nonblocking:<5}  biprogressing: {biprogressing}");
    }
    println!("\nMatches the paper: local progress is nonblocking AND biprogressing");
    println!("(hence impossible with opacity, Theorem 2); global progress is not");
    println!("biprogressing; solo progress is nonblocking but not biprogressing.");
}
