//! The opacity checker.
//!
//! A finite history `H` is **opaque** iff there exists a sequential history
//! `Hs` equivalent to `com(H)`, preserving the real-time order of `com(H)`,
//! in which every transaction is legal. Opacity requires *every*
//! transaction — including aborted and still-live ones — to observe a
//! consistent state.

use serde::{Deserialize, Serialize};

use tm_core::{History, TxId};

use crate::witness::{find_witness, TooManyTransactions};

/// Result of an exact safety check: either a concrete sequential witness
/// (the property holds) or a proof of absence (the property is violated).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SafetyVerdict {
    /// The property holds; `witness` lists transactions in a legal
    /// real-time-preserving sequential order.
    Satisfied {
        /// Transaction identities in witness order.
        witness: Vec<TxId>,
    },
    /// No legal sequential witness exists.
    Violated,
}

impl SafetyVerdict {
    /// Whether the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, SafetyVerdict::Satisfied { .. })
    }
}

/// Checks opacity of a finite history exactly.
///
/// The history is completed (`com(H)`), its transactions extracted, and the
/// witness space (linear extensions of the real-time order) searched with
/// legality pruning and memoization.
///
/// # Errors
///
/// [`TooManyTransactions`] if `com(H)` has more than
/// [`crate::witness::MAX_EXACT_TRANSACTIONS`] transactions; use
/// [`crate::incremental::IncrementalChecker`] for long histories.
///
/// # Examples
///
/// ```
/// use tm_core::builder::figures;
/// use tm_safety::check_opacity;
///
/// assert!(check_opacity(&figures::figure_1()).unwrap().holds());
/// assert!(!check_opacity(&figures::figure_3()).unwrap().holds());
/// assert!(!check_opacity(&figures::figure_4()).unwrap().holds());
/// ```
pub fn check_opacity(history: &History) -> Result<SafetyVerdict, TooManyTransactions> {
    let completed = history.complete();
    let txs = completed.transactions();
    Ok(match find_witness(&txs)? {
        Some(order) => SafetyVerdict::Satisfied {
            witness: order.into_iter().map(|i| txs[i].id).collect(),
        },
        None => SafetyVerdict::Violated,
    })
}

/// Convenience predicate: whether the history is opaque.
///
/// # Panics
///
/// Panics if the history exceeds the exact checker's size limit; use
/// [`check_opacity`] to handle that case explicitly.
pub fn is_opaque(history: &History) -> bool {
    check_opacity(history)
        .expect("history too large for exact opacity check")
        .holds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::builder::figures;
    use tm_core::{HistoryBuilder, ProcessId, TVarId};

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const P3: ProcessId = ProcessId(2);
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    #[test]
    fn empty_history_is_opaque() {
        assert!(is_opaque(&History::new()));
    }

    #[test]
    fn figure_1_is_opaque() {
        // The paper: "the history in Figure 1 is opaque".
        assert!(is_opaque(&figures::figure_1()));
    }

    #[test]
    fn figure_3_is_not_opaque() {
        // The paper: "the histories in Figure 3 and Figure 4 are not opaque".
        assert!(!is_opaque(&figures::figure_3()));
    }

    #[test]
    fn figure_4_is_not_opaque() {
        assert!(!is_opaque(&figures::figure_4()));
    }

    #[test]
    fn figure_8_terminating_suffix_is_not_opaque() {
        // The central claim of Theorem 1's proof: if Algorithm 1 terminated,
        // the resulting history would not be opaque.
        for v in [0, 1, 7, 41] {
            assert!(!is_opaque(&figures::figure_8(v)));
        }
    }

    #[test]
    fn live_transactions_must_observe_consistent_state() {
        // p1 reads x twice and sees two different committed values without
        // committing or aborting: com(H) aborts it and it must be legal —
        // it is not.
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P2, X, 1)
            .commit(P2)
            .read(P1, X, 1)
            .build()
            .unwrap();
        assert!(!is_opaque(&h));
    }

    #[test]
    fn snapshot_read_of_old_values_is_opaque_if_placed_before_writer() {
        // p1 reads x=0 and y=0 while p2 concurrently writes both and
        // commits: witness places p1's (aborted) transaction first.
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P2, X, 1)
            .write_ok(P2, Y, 1)
            .commit(P2)
            .read(P1, Y, 0)
            .abort_on_try_commit(P1)
            .build()
            .unwrap();
        assert!(is_opaque(&h));
    }

    #[test]
    fn torn_snapshot_is_not_opaque() {
        // p1 reads x=0 (old) then y=1 (new): no single serialization point.
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P2, X, 1)
            .write_ok(P2, Y, 1)
            .commit(P2)
            .read(P1, Y, 1)
            .abort_on_try_commit(P1)
            .build()
            .unwrap();
        assert!(!is_opaque(&h));
    }

    #[test]
    fn witness_identifies_sequential_order() {
        let h = figures::figure_1();
        match check_opacity(&h).unwrap() {
            SafetyVerdict::Satisfied { witness } => {
                assert_eq!(witness.len(), 2);
                // p1's aborted transaction must be serialized before p2's
                // committed write (p1 read 0).
                assert_eq!(witness[0].process, P1);
                assert_eq!(witness[1].process, P2);
            }
            SafetyVerdict::Violated => panic!("figure 1 must be opaque"),
        }
    }

    #[test]
    fn three_process_chain_is_opaque() {
        let h = HistoryBuilder::new()
            .write_ok(P1, X, 1)
            .commit(P1)
            .read(P2, X, 1)
            .write_ok(P2, Y, 2)
            .commit(P2)
            .read(P3, Y, 2)
            .commit(P3)
            .build()
            .unwrap();
        assert!(is_opaque(&h));
    }

    #[test]
    fn write_skew_style_interleaving() {
        // Both read both variables' initial values, each writes a different
        // variable, both commit. Serializable in either order (reads saw
        // initial state, writes disjoint)? Placing T1 then T2: T2 read x=0
        // but T1 committed x=1 → illegal; T2 then T1 symmetric → illegal.
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .read(P1, Y, 0)
            .read(P2, X, 0)
            .read(P2, Y, 0)
            .write_ok(P1, X, 1)
            .write_ok(P2, Y, 1)
            .commit(P1)
            .commit(P2)
            .build()
            .unwrap();
        assert!(!is_opaque(&h));
    }

    #[test]
    fn disjoint_variables_commute() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .read(P2, Y, 0)
            .write_ok(P1, X, 1)
            .write_ok(P2, Y, 1)
            .commit(P1)
            .commit(P2)
            .build()
            .unwrap();
        assert!(is_opaque(&h));
    }

    #[test]
    fn commit_pending_transaction_is_aborted_by_completion() {
        // A commit-pending transaction with consistent reads: opaque.
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .invoke(P1, tm_core::Invocation::TryCommit)
            .build()
            .unwrap();
        assert!(is_opaque(&h));
    }
}
