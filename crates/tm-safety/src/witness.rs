//! Shared witness-search machinery.
//!
//! Both opacity and strict serializability are of the form "there exists a
//! sequential history `Hs`, equivalent to a derived history, preserving the
//! real-time order, in which every transaction is legal". The witness space
//! is the set of linear extensions of the real-time partial order `<H`; the
//! search below enumerates it with two optimizations that make the checker
//! practical far beyond naive factorial enumeration:
//!
//! * **legality pruning** — a transaction is only appended to a partial
//!   witness if it is legal against the committed state reached so far, so
//!   illegal branches die immediately;
//! * **memoization** — the continuation of a partial witness depends only
//!   on (set of placed transactions, committed t-variable state); states
//!   are canonicalized and failed `(mask, state)` pairs are cached.

use std::collections::{BTreeMap, HashSet};

use tm_core::sequential::check_one;
use tm_core::{TVarId, Transaction, TxStatus, Value};

/// The exact checker enumerates subsets with a `u128` mask, limiting it to
/// histories of at most this many transactions. Larger histories should use
/// the incremental commit-order certifier.
pub const MAX_EXACT_TRANSACTIONS: usize = 128;

/// Error returned when a history has too many transactions for the exact
/// checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooManyTransactions {
    /// Number of transactions in the offending history.
    pub count: usize,
}

impl core::fmt::Display for TooManyTransactions {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "history has {} transactions; the exact checker supports at most {}",
            self.count, MAX_EXACT_TRANSACTIONS
        )
    }
}

impl std::error::Error for TooManyTransactions {}

/// Searches for a legal sequential witness order of `txs` (indices into the
/// slice) that is a linear extension of the real-time order.
///
/// Returns `Ok(Some(order))` with a legal witness, `Ok(None)` if no witness
/// exists, or an error if the history is too large for exact search.
///
/// # Errors
///
/// [`TooManyTransactions`] if `txs.len() > MAX_EXACT_TRANSACTIONS`.
pub fn find_witness(txs: &[Transaction]) -> Result<Option<Vec<usize>>, TooManyTransactions> {
    let n = txs.len();
    if n > MAX_EXACT_TRANSACTIONS {
        return Err(TooManyTransactions { count: n });
    }
    if n == 0 {
        return Ok(Some(Vec::new()));
    }

    // pred[i] = mask of transactions that must precede i in any witness.
    let mut pred = vec![0u128; n];
    for (i, ti) in txs.iter().enumerate() {
        for (j, tj) in txs.iter().enumerate() {
            if i != j && tj.precedes(ti) {
                pred[i] |= 1 << j;
            }
        }
    }

    let full: u128 = if n == 128 { u128::MAX } else { (1 << n) - 1 };
    let mut failed: HashSet<(u128, Vec<(TVarId, Value)>)> = HashSet::new();
    let mut order: Vec<usize> = Vec::with_capacity(n);

    fn dfs(
        txs: &[Transaction],
        pred: &[u128],
        full: u128,
        mask: u128,
        state: &BTreeMap<TVarId, Value>,
        failed: &mut HashSet<(u128, Vec<(TVarId, Value)>)>,
        order: &mut Vec<usize>,
    ) -> bool {
        if mask == full {
            return true;
        }
        let key = (
            mask,
            state.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>(),
        );
        if failed.contains(&key) {
            return false;
        }
        for i in 0..txs.len() {
            let bit = 1u128 << i;
            if mask & bit != 0 || pred[i] & !mask != 0 {
                continue;
            }
            // Transaction i is ready; check legality against current state.
            match check_one(&txs[i], state) {
                Err(_) => continue,
                Ok(writes) => {
                    order.push(i);
                    let next_state = if txs[i].status == TxStatus::Committed && !writes.is_empty() {
                        let mut s = state.clone();
                        s.extend(writes);
                        s
                    } else {
                        state.clone()
                    };
                    if dfs(txs, pred, full, mask | bit, &next_state, failed, order) {
                        return true;
                    }
                    order.pop();
                }
            }
        }
        failed.insert(key);
        false
    }

    let initial = BTreeMap::new();
    if dfs(txs, &pred, full, 0, &initial, &mut failed, &mut order) {
        Ok(Some(order))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{HistoryBuilder, ProcessId, TVarId};

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);

    #[test]
    fn empty_set_has_empty_witness() {
        assert_eq!(find_witness(&[]), Ok(Some(Vec::new())));
    }

    #[test]
    fn single_legal_transaction() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .commit(P1)
            .build()
            .unwrap();
        let txs = h.transactions();
        assert_eq!(find_witness(&txs).unwrap(), Some(vec![0]));
    }

    #[test]
    fn single_illegal_transaction_has_no_witness() {
        let h = HistoryBuilder::new()
            .read(P1, X, 9)
            .commit(P1)
            .build()
            .unwrap();
        let txs = h.transactions();
        assert_eq!(find_witness(&txs).unwrap(), None);
    }

    #[test]
    fn witness_reorders_concurrent_transactions() {
        // p1 reads 1 (written by p2's concurrent committed transaction):
        // witness must place p2 first even though p1's transaction started
        // first.
        let h = HistoryBuilder::new()
            .read(P2, X, 0)
            .write_ok(P2, X, 1)
            .read(P1, X, 1)
            .commit(P2)
            .commit(P1)
            .build()
            .unwrap();
        let txs = h.transactions();
        let w = find_witness(&txs).unwrap().expect("witness exists");
        // Transactions sorted by first event: index 0 = p2's, index 1 = p1's.
        assert_eq!(w, vec![0, 1]);
    }

    #[test]
    fn real_time_order_is_respected() {
        // p1's committed transaction finishes before p2's starts, so a
        // witness placing p2 first is not allowed even if legal.
        let h = HistoryBuilder::new()
            .write_ok(P1, X, 1)
            .commit(P1)
            .read(P2, X, 1)
            .commit(P2)
            .build()
            .unwrap();
        let txs = h.transactions();
        assert_eq!(find_witness(&txs).unwrap(), Some(vec![0, 1]));
    }

    #[test]
    fn too_many_transactions_is_an_error() {
        let mut b = HistoryBuilder::new();
        for _ in 0..(MAX_EXACT_TRANSACTIONS + 1) {
            b.read(P1, X, 0).commit(P1);
        }
        let h = b.build().unwrap();
        let txs = h.transactions();
        assert!(find_witness(&txs).is_err());
    }
}
