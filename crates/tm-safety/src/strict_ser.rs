//! The strict serializability checker.
//!
//! A finite history `H` is **strictly serializable** iff there exists a
//! sequential history `Hs` equivalent to `Hcom` — the longest subsequence
//! of `H` containing only committed transactions — preserving the
//! real-time order of `H`, in which every transaction is legal. Unlike
//! opacity, aborted and live transactions need not observe consistent
//! states.

use tm_core::History;

use crate::opacity::SafetyVerdict;
use crate::witness::{find_witness, TooManyTransactions};

/// Checks strict serializability of a finite history exactly.
///
/// # Errors
///
/// [`TooManyTransactions`] if the committed projection has more than
/// [`crate::witness::MAX_EXACT_TRANSACTIONS`] transactions.
///
/// # Examples
///
/// ```
/// use tm_core::builder::figures;
/// use tm_safety::check_strict_serializability;
///
/// // Figure 4 is strictly serializable but (per the opacity checker) not
/// // opaque.
/// assert!(check_strict_serializability(&figures::figure_4()).unwrap().holds());
/// assert!(!check_strict_serializability(&figures::figure_3()).unwrap().holds());
/// ```
pub fn check_strict_serializability(
    history: &History,
) -> Result<SafetyVerdict, TooManyTransactions> {
    let committed = history.committed_projection();
    let txs = committed.transactions();
    Ok(match find_witness(&txs)? {
        Some(order) => SafetyVerdict::Satisfied {
            witness: order.into_iter().map(|i| txs[i].id).collect(),
        },
        None => SafetyVerdict::Violated,
    })
}

/// Convenience predicate: whether the history is strictly serializable.
///
/// # Panics
///
/// Panics if the history exceeds the exact checker's size limit; use
/// [`check_strict_serializability`] to handle that case explicitly.
pub fn is_strictly_serializable(history: &History) -> bool {
    check_strict_serializability(history)
        .expect("history too large for exact strict serializability check")
        .holds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opacity::is_opaque;
    use tm_core::builder::figures;
    use tm_core::{History, HistoryBuilder, ProcessId, TVarId};

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);

    #[test]
    fn empty_history_is_strictly_serializable() {
        assert!(is_strictly_serializable(&History::new()));
    }

    #[test]
    fn figure_1_is_strictly_serializable() {
        // The paper: "the histories in Figure 1 and Figure 4 are strictly
        // serializable".
        assert!(is_strictly_serializable(&figures::figure_1()));
    }

    #[test]
    fn figure_3_is_not_strictly_serializable() {
        assert!(!is_strictly_serializable(&figures::figure_3()));
    }

    #[test]
    fn figure_4_is_strictly_serializable_but_not_opaque() {
        let h = figures::figure_4();
        assert!(is_strictly_serializable(&h));
        assert!(!is_opaque(&h));
    }

    #[test]
    fn figure_8_suffix_violates_strict_serializability_too() {
        // Needed for the generalized result (Theorem 2): the adversary's
        // would-be terminating history violates every strictly serializable
        // safety property.
        assert!(!is_strictly_serializable(&figures::figure_8(0)));
    }

    #[test]
    fn aborted_inconsistency_is_tolerated() {
        // An aborted transaction reading garbage does not violate strict
        // serializability (it does violate opacity).
        let h = HistoryBuilder::new()
            .read(P1, X, 42) // inconsistent read
            .abort_on_try_commit(P1)
            .read(P2, X, 0)
            .commit(P2)
            .build()
            .unwrap();
        assert!(is_strictly_serializable(&h));
        assert!(!is_opaque(&h));
    }

    #[test]
    fn committed_inconsistency_is_not_tolerated() {
        let h = HistoryBuilder::new()
            .read(P1, X, 42)
            .commit(P1)
            .build()
            .unwrap();
        assert!(!is_strictly_serializable(&h));
    }

    #[test]
    fn opacity_implies_strict_serializability_on_examples() {
        // Opacity is a strictly serializable safety property (§5.1).
        for h in [
            figures::figure_1(),
            HistoryBuilder::new()
                .read(P1, X, 0)
                .write_ok(P1, X, 1)
                .commit(P1)
                .read(P2, X, 1)
                .commit(P2)
                .build()
                .unwrap(),
        ] {
            if is_opaque(&h) {
                assert!(is_strictly_serializable(&h));
            }
        }
    }

    #[test]
    fn live_transactions_are_ignored() {
        // p1 still live with an inconsistent read; only p2 committed.
        let h = HistoryBuilder::new()
            .read(P1, X, 7)
            .read(P2, X, 0)
            .commit(P2)
            .build()
            .unwrap();
        assert!(is_strictly_serializable(&h));
    }
}
