//! Online, incremental safety certification for long histories.
//!
//! The exact checkers enumerate witness orders and are limited to ~10²
//! transactions. Adversary games and STM simulations produce histories with
//! 10⁴–10⁶ transactions, so this module provides a **sound but incomplete**
//! online certifier based on *commit-order* witnesses:
//!
//! * committed transactions are serialized in the order of their commit
//!   events (which always extends the real-time order among committed
//!   transactions);
//! * every other transaction (aborted, live, commit-pending) must observe
//!   the committed state at *some* point between its first event and the
//!   present — tracked as a set of candidate serialization slots that
//!   shrinks with every read and grows with every commit.
//!
//! If the certifier accepts a history, the history is opaque (respectively
//! strictly serializable): an explicit witness can be read off the
//! accepted slots. If it rejects, the history may still be safe under a
//! witness that reorders committed transactions — callers should fall back
//! to the exact checker when feasible ([`crate::check_opacity_auto`]).
//!
//! Because candidate slots are checked **eagerly at every read**, an
//! accepted run certifies every prefix of the history, matching the
//! prefix-closedness of the paper's safety properties.
//!
//! # Checkpoint / rollback
//!
//! The model checker walks a *tree* of histories depth-first, so the
//! certifier supports O(events-since) rollback: [`IncrementalChecker::checkpoint`]
//! marks a point, every [`IncrementalChecker::push`] appends inverse
//! operations to an undo log, and [`IncrementalChecker::rollback`]
//! replays the inverses. Certification thereby advances one event per
//! tree edge instead of re-certifying each complete history from event
//! zero, and a rejection latches at the **shortest failing prefix** of
//! the current branch.
//!
//! # Candidate-slot representation
//!
//! Candidate serialization slots are kept in a [`SlotSet`]: a bitset
//! based at the commit count when the transaction began (slots only
//! ever grow upward from there). One inline word covers transactions
//! spanning ≤ 64 commits — the overwhelmingly common case — so pruning
//! on a read is branch-free word masking with **no reallocation**, and
//! each slot is set and cleared at most once over the transaction's
//! lifetime (amortized O(1) per slot, versus re-scanning and shifting a
//! `Vec<usize>` on every read).

use serde::{Deserialize, Serialize};

use tm_core::{Event, EventKind, Invocation, ProcessId, Response, TVarId, Value, INITIAL_VALUE};

/// Which safety property the incremental certifier enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Every transaction (even aborted/live) must observe a consistent
    /// state.
    Opacity,
    /// Only committed transactions must be explainable.
    StrictSerializability,
}

/// A violation detected by the incremental certifier.
///
/// Note that (unlike [`crate::SafetyVerdict::Violated`]) this is evidence
/// that the *commit-order* witness fails, not that no witness exists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitOrderViolation {
    /// The process whose event triggered the violation.
    pub process: ProcessId,
    /// Index of the offending event in the pushed sequence.
    pub position: usize,
    /// Human-readable description.
    pub detail: String,
}

impl core::fmt::Display for CommitOrderViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "commit-order violation by {} at event {}: {}",
            self.process, self.position, self.detail
        )
    }
}

impl std::error::Error for CommitOrderViolation {}

/// A compact set of candidate serialization slots.
///
/// Slots are indices into the committed-state sequence; a transaction's
/// candidates always lie in `[base, base + 64 * (1 + spill.len()))`
/// where `base` is the commit count at its first event, because commits
/// only ever *append* slots. One inline word covers transactions that
/// span up to 64 commits, so the common case never allocates; pruning
/// clears bits in place and each slot toggles on and off at most once
/// over the transaction's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotSet {
    base: usize,
    head: u64,
    spill: Vec<u64>,
}

impl SlotSet {
    /// The set `{slot}`, anchoring the base at `slot`.
    pub fn singleton(slot: usize) -> Self {
        SlotSet {
            base: slot,
            head: 1,
            spill: Vec::new(),
        }
    }

    fn word_bit(&self, slot: usize) -> (usize, u64) {
        debug_assert!(slot >= self.base, "slots never precede the base");
        let offset = slot - self.base;
        (offset / 64, 1u64 << (offset % 64))
    }

    /// Inserts `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` precedes the base the set was created with
    /// (slots only ever grow upward from the base by construction).
    pub fn insert(&mut self, slot: usize) {
        assert!(slot >= self.base, "slot precedes the set's base");
        let (word, bit) = self.word_bit(slot);
        if word == 0 {
            self.head |= bit;
        } else {
            if self.spill.len() < word {
                self.spill.resize(word, 0);
            }
            self.spill[word - 1] |= bit;
        }
    }

    /// Removes `slot` if present (below-base slots are never present).
    pub fn remove(&mut self, slot: usize) {
        if slot < self.base {
            return;
        }
        let (word, bit) = self.word_bit(slot);
        if word == 0 {
            self.head &= !bit;
        } else if let Some(w) = self.spill.get_mut(word - 1) {
            *w &= !bit;
        }
    }

    /// Whether `slot` is in the set.
    pub fn contains(&self, slot: usize) -> bool {
        if slot < self.base {
            return false;
        }
        let (word, bit) = self.word_bit(slot);
        let w = if word == 0 {
            self.head
        } else {
            self.spill.get(word - 1).copied().unwrap_or(0)
        };
        w & bit != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.head == 0 && self.spill.iter().all(|&w| w == 0)
    }

    /// Number of slots in the set.
    pub fn len(&self) -> usize {
        (self.head.count_ones() as usize)
            + self
                .spill
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// Removes every slot failing `keep`, in place, allocation-free.
    pub fn prune(&mut self, mut keep: impl FnMut(usize) -> bool) {
        for word in 0..=self.spill.len() {
            let w = if word == 0 {
                self.head
            } else {
                self.spill[word - 1]
            };
            let mut bits = w;
            while bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let slot = self.base + word * 64 + tz;
                if !keep(slot) {
                    if word == 0 {
                        self.head &= !(1u64 << tz);
                    } else {
                        self.spill[word - 1] &= !(1u64 << tz);
                    }
                }
            }
        }
    }

    /// The slots in ascending order (diagnostics and witness extraction).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let base = self.base;
        std::iter::once(self.head)
            .chain(self.spill.iter().copied())
            .enumerate()
            .flat_map(move |(word, w)| {
                (0..64)
                    .filter(move |bit| w & (1u64 << bit) != 0)
                    .map(move |bit| base + word * 64 + bit)
            })
    }
}

#[derive(Debug, Clone, Default)]
struct OpenTx {
    pending: Option<Invocation>,
    /// Write set, last-write-wins per t-variable (a handful of entries;
    /// a linear vector beats a tree map at this size).
    writes: Vec<(TVarId, Value)>,
    reads: Vec<(TVarId, Value)>,
    /// Candidate serialization slots: indices into `states` at which every
    /// read so far is consistent. Only maintained in opacity mode.
    candidates: SlotSet,
}

impl OpenTx {
    fn write_of(&self, x: TVarId) -> Option<Value> {
        self.writes.iter().find(|&&(y, _)| y == x).map(|&(_, v)| v)
    }

    /// Records a write, returning the previous buffered value for `x`.
    fn record_write(&mut self, x: TVarId, v: Value) -> Option<Value> {
        for entry in &mut self.writes {
            if entry.0 == x {
                return Some(std::mem::replace(&mut entry.1, v));
            }
        }
        self.writes.push((x, v));
        None
    }

    /// Reverses [`OpenTx::record_write`].
    fn unrecord_write(&mut self, x: TVarId, previous: Option<Value>) {
        match previous {
            Some(v) => {
                for entry in &mut self.writes {
                    if entry.0 == x {
                        entry.1 = v;
                        return;
                    }
                }
            }
            None => self.writes.retain(|&(y, _)| y != x),
        }
    }
}

/// One inverse operation in the undo log; applying it reverses the
/// corresponding [`IncrementalChecker::push`]. Entries sit on the model
/// checker's per-edge hot path, so the common ones are kept word-sized:
/// the pending invocation a response consumed is *derived* from the
/// transaction record where possible (a read's variable is its last
/// recorded read, a write's buffered value is in the write set), and
/// retired records are boxed.
#[derive(Debug, Clone)]
enum UndoEntry {
    /// An invocation created this transaction's record.
    OpenInserted(ProcessId),
    /// An invocation set `pending` on an existing record.
    PendingSet(ProcessId, Option<Invocation>),
    /// A read response was accepted in strict-serializability mode
    /// (candidates are not maintained): pop the read and re-derive
    /// `pending` from it.
    ReadKept(ProcessId),
    /// A read response was accepted in opacity mode: additionally
    /// restore the pre-prune candidate set.
    ReadPruned(ProcessId, SlotSet),
    /// A read of the transaction's own write of `var` was accepted.
    OwnReadObserved(ProcessId, TVarId),
    /// A write response was accepted (`previous` = the overwritten
    /// buffered value; the written value is re-derived from the record).
    WriteRecorded(ProcessId, TVarId, Option<Value>),
    /// The transaction aborted and its record was retired.
    TxAborted(ProcessId, Box<OpenTx>),
    /// The transaction committed: a state was appended and the open
    /// transactions in the `granted` bitmask gained the new slot as a
    /// candidate.
    TxCommitted {
        process: ProcessId,
        tx: Box<OpenTx>,
        granted: u64,
    },
    /// The event latched a violation (restoring clears it); the record,
    /// if one was open, was retired.
    Failed(ProcessId, Option<Box<OpenTx>>),
    /// A fused [`IncrementalChecker::push_call`] accepted a read
    /// (`fresh` = the call also created the record).
    CallRead {
        process: ProcessId,
        fresh: bool,
        prior: SlotSet,
    },
    /// A fused call accepted a write.
    CallWrite {
        process: ProcessId,
        fresh: bool,
        var: TVarId,
        previous: Option<Value>,
    },
    /// A fused call aborted the transaction (`None` = the record was
    /// created by the same call, so there is nothing to restore).
    CallAborted(ProcessId, Option<Box<OpenTx>>),
    /// A fused call committed the transaction.
    CallCommitted {
        process: ProcessId,
        tx: Option<Box<OpenTx>>,
        granted: u64,
    },
    /// A fused call latched a violation.
    CallFailed(ProcessId, Option<Box<OpenTx>>),
}

/// A position in the certifier's history, produced by
/// [`IncrementalChecker::checkpoint`] and consumed by
/// [`IncrementalChecker::rollback`].
///
/// Checkpoints form a stack discipline: rolling back to a checkpoint
/// invalidates every checkpoint taken after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    log_len: usize,
    position: usize,
}

/// Online certifier for opacity / strict serializability via commit-order
/// witnesses. Push events as the TM produces them; the first violation is
/// returned (and the certifier latches it).
///
/// # Examples
///
/// ```
/// use tm_core::builder::figures;
/// use tm_safety::{IncrementalChecker, Mode};
///
/// let mut checker = IncrementalChecker::new(Mode::Opacity);
/// for &event in figures::figure_1().events() {
///     checker.push(event).expect("figure 1 is opaque");
/// }
/// assert_eq!(checker.commits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalChecker {
    mode: Mode,
    /// `states[i]` = committed t-variable state after `i` commits, as a
    /// dense per-t-variable vector (absent index = [`INITIAL_VALUE`]).
    states: Vec<Vec<Value>>,
    /// Open transaction per process, indexed by process id (dense and
    /// small in every workload; direct indexing keeps the per-event cost
    /// flat).
    open: Vec<Option<OpenTx>>,
    position: usize,
    violation: Option<CommitOrderViolation>,
    /// Inverse operations for [`IncrementalChecker::rollback`]. Only
    /// recorded once a checkpoint has been taken: pure streaming users
    /// (adversary games, simulations with millions of events) pay
    /// neither time nor memory for rollback support.
    log: Vec<UndoEntry>,
    logging: bool,
}

impl IncrementalChecker {
    /// Creates a certifier in the given mode with all t-variables at
    /// [`INITIAL_VALUE`].
    pub fn new(mode: Mode) -> Self {
        IncrementalChecker {
            mode,
            states: vec![Vec::new()],
            open: Vec::new(),
            position: 0,
            violation: None,
            log: Vec::new(),
            logging: false,
        }
    }

    /// Creates a certifier whose initial committed state is `frontier`
    /// (sparse `(t-variable, value)` pairs; unlisted t-variables stay at
    /// [`INITIAL_VALUE`]) — the entry point for *chunked* certification,
    /// where a history suffix is checked independently against the
    /// committed state its prefix left behind. The frontier occupies
    /// state slot 0, so a transaction that opens inside the chunk can
    /// never serialize before the pre-chunk commits it post-dates.
    ///
    /// ```
    /// use tm_core::{Event, ProcessId, TVarId};
    /// use tm_safety::{IncrementalChecker, Mode};
    ///
    /// let p = ProcessId(0);
    /// let x = TVarId(0);
    /// let mut checker = IncrementalChecker::with_frontier(Mode::Opacity, &[(x, 7)]);
    /// checker.push(Event::read(p, x)).unwrap();
    /// // Reading the frontier value is consistent; reading 0 would not be.
    /// checker.push(Event::value(p, 7)).unwrap();
    /// ```
    pub fn with_frontier(mode: Mode, frontier: &[(TVarId, Value)]) -> Self {
        let mut checker = Self::new(mode);
        for &(x, v) in frontier {
            Self::apply_write(&mut checker.states[0], x, v);
        }
        checker
    }

    /// Largest process/t-variable id the dense tables accept. Real
    /// workloads use small dense ids; this bound turns a malformed or
    /// adversarial id (which would otherwise demand a huge allocation)
    /// into a clear panic.
    const MAX_DENSE_ID: usize = 1 << 20;

    fn open_slot(&mut self, process: ProcessId) -> &mut Option<OpenTx> {
        let k = process.index();
        assert!(
            k <= Self::MAX_DENSE_ID,
            "process id {k} exceeds the certifier's dense-id bound"
        );
        if self.open.len() <= k {
            self.open.resize_with(k + 1, || None);
        }
        &mut self.open[k]
    }

    fn apply_write(next: &mut Vec<Value>, x: TVarId, v: Value) {
        assert!(
            x.index() <= Self::MAX_DENSE_ID,
            "t-variable id {} exceeds the certifier's dense-id bound",
            x.index()
        );
        if next.len() <= x.index() {
            next.resize(x.index() + 1, INITIAL_VALUE);
        }
        next[x.index()] = v;
    }

    /// Marks the current state; [`IncrementalChecker::rollback`] returns
    /// to it in time proportional to the events pushed since.
    ///
    /// The first checkpoint switches the certifier into logging mode:
    /// from here on every push records its inverse (amortized O(1))
    /// until [`IncrementalChecker::compact`].
    pub fn checkpoint(&mut self) -> Checkpoint {
        self.logging = true;
        Checkpoint {
            log_len: self.log.len(),
            position: self.position,
        }
    }

    /// Rolls the certifier back to `checkpoint`, undoing every event
    /// pushed since — including any latched violation.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoint` was invalidated by an earlier rollback
    /// (checkpoints are a stack, not random access).
    pub fn rollback(&mut self, checkpoint: Checkpoint) {
        assert!(
            checkpoint.log_len <= self.log.len(),
            "checkpoint invalidated by an earlier rollback"
        );
        while self.log.len() > checkpoint.log_len {
            let entry = self.log.pop().expect("length checked");
            self.undo(entry);
        }
        self.position = checkpoint.position;
    }

    /// Drops the undo log (freeing memory and invalidating outstanding
    /// checkpoints). Useful after cloning the certifier for a parallel
    /// subtree root, whose workers never roll back past the clone point.
    pub fn compact(&mut self) {
        self.log.clear();
        self.log.shrink_to_fit();
        self.logging = false;
    }

    fn undo(&mut self, entry: UndoEntry) {
        match entry {
            UndoEntry::OpenInserted(p) => {
                self.open[p.index()] = None;
            }
            UndoEntry::PendingSet(p, pending) => {
                if let Some(tx) = self.open[p.index()].as_mut() {
                    tx.pending = pending;
                }
            }
            UndoEntry::ReadKept(process) => {
                let tx = self.open[process.index()]
                    .as_mut()
                    .expect("read had an open tx");
                let (x, _) = tx.reads.pop().expect("undo matches a recorded read");
                tx.pending = Some(Invocation::Read(x));
            }
            UndoEntry::ReadPruned(process, prior) => {
                let tx = self.open[process.index()]
                    .as_mut()
                    .expect("read had an open tx");
                let (x, _) = tx.reads.pop().expect("undo matches a recorded read");
                tx.candidates = prior;
                tx.pending = Some(Invocation::Read(x));
            }
            UndoEntry::OwnReadObserved(process, var) => {
                let tx = self.open[process.index()]
                    .as_mut()
                    .expect("read had an open tx");
                tx.pending = Some(Invocation::Read(var));
            }
            UndoEntry::WriteRecorded(process, var, previous) => {
                let tx = self.open[process.index()]
                    .as_mut()
                    .expect("write had an open tx");
                let written = tx.write_of(var).expect("undo matches a recorded write");
                tx.pending = Some(Invocation::Write(var, written));
                tx.unrecord_write(var, previous);
            }
            UndoEntry::TxAborted(p, tx) => {
                self.open[p.index()] = Some(*tx);
            }
            UndoEntry::TxCommitted {
                process,
                tx,
                granted,
            } => {
                let new_slot = self.states.len() - 1;
                for (q, other) in self.open.iter_mut().enumerate() {
                    if q < 64 && granted & (1 << q) != 0 {
                        if let Some(other) = other.as_mut() {
                            other.candidates.remove(new_slot);
                        }
                    }
                }
                self.states.pop();
                self.open[process.index()] = Some(*tx);
            }
            UndoEntry::Failed(p, tx) => {
                self.violation = None;
                if let Some(tx) = tx {
                    self.open[p.index()] = Some(*tx);
                }
            }
            UndoEntry::CallRead {
                process,
                fresh,
                prior,
            } => {
                if fresh {
                    self.open[process.index()] = None;
                } else {
                    let tx = self.open[process.index()]
                        .as_mut()
                        .expect("fused read had an open tx");
                    tx.reads.pop();
                    tx.candidates = prior;
                }
            }
            UndoEntry::CallWrite {
                process,
                fresh,
                var,
                previous,
            } => {
                if fresh {
                    self.open[process.index()] = None;
                } else {
                    let tx = self.open[process.index()]
                        .as_mut()
                        .expect("fused write had an open tx");
                    tx.unrecord_write(var, previous);
                }
            }
            UndoEntry::CallAborted(p, tx) => {
                self.open[p.index()] = tx.map(|tx| *tx);
            }
            UndoEntry::CallCommitted {
                process,
                tx,
                granted,
            } => {
                let new_slot = self.states.len() - 1;
                for (q, other) in self.open.iter_mut().enumerate() {
                    if q < 64 && granted & (1 << q) != 0 {
                        if let Some(other) = other.as_mut() {
                            other.candidates.remove(new_slot);
                        }
                    }
                }
                self.states.pop();
                self.open[process.index()] = tx.map(|tx| *tx);
            }
            UndoEntry::CallFailed(p, tx) => {
                self.violation = None;
                self.open[p.index()] = tx.map(|tx| *tx);
            }
        }
    }

    /// A canonical 64-bit digest of the certifier's *verdict-relevant*
    /// state: two certifiers with equal digests accept and reject exactly
    /// the same future event sequences (modulo 64-bit collisions).
    ///
    /// Covered: the mode, the committed-state sequence (candidate slots
    /// index into it), every open transaction's pending invocation,
    /// read/write sets and candidate slots, and whether a violation has
    /// latched. Deliberately excluded, with the canonicalization
    /// rationale of `tm_stm::SteppedTm::state_digest`:
    ///
    /// * the event position and the latched violation's detail — they
    ///   parameterize *reports*, never verdicts (the explorer's dedup
    ///   only ever merges subtrees that report nothing);
    /// * the undo log and logging flag — rollback bookkeeping;
    /// * trailing `None` entries of the dense open-transaction table —
    ///   an artifact of which process ids have been touched;
    /// * each candidate set's base/spill representation — the digest
    ///   hashes the slot *values* in ascending order.
    pub fn state_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = tm_core::StableHasher::new();
        matches!(self.mode, Mode::Opacity).hash(&mut h);
        self.states.hash(&mut h);
        for (k, open) in self.open.iter().enumerate() {
            let Some(tx) = open else { continue };
            k.hash(&mut h);
            tx.pending.hash(&mut h);
            tx.reads.hash(&mut h);
            tx.writes.hash(&mut h);
            for slot in tx.candidates.iter() {
                slot.hash(&mut h);
            }
            u64::MAX.hash(&mut h); // terminator between transactions
        }
        self.violation.is_some().hash(&mut h);
        h.finish()
    }

    /// Number of commit events processed so far.
    pub fn commits(&self) -> usize {
        self.states.len() - 1
    }

    /// Number of events pushed so far.
    pub fn events_pushed(&self) -> usize {
        self.position
    }

    /// The first violation encountered, if any.
    pub fn violation(&self) -> Option<&CommitOrderViolation> {
        self.violation.as_ref()
    }

    /// The committed value of `x` in the latest committed state.
    pub fn committed_value(&self, x: TVarId) -> Value {
        self.states
            .last()
            .and_then(|s| s.get(x.index()))
            .copied()
            .unwrap_or(INITIAL_VALUE)
    }

    fn state_value(&self, slot: usize, x: TVarId) -> Value {
        self.states[slot]
            .get(x.index())
            .copied()
            .unwrap_or(INITIAL_VALUE)
    }

    fn fail(&mut self, process: ProcessId, detail: String) -> CommitOrderViolation {
        let v = CommitOrderViolation {
            process,
            position: self.position,
            detail,
        };
        self.violation = Some(v.clone());
        v
    }

    /// Pushes the next event of the history.
    ///
    /// # Errors
    ///
    /// Returns the violation if the commit-order witness fails at this
    /// event (or failed earlier — the certifier latches).
    pub fn push(&mut self, event: Event) -> Result<(), CommitOrderViolation> {
        if let Some(v) = &self.violation {
            return Err(v.clone());
        }
        let process = event.process;
        match event.kind {
            EventKind::Invocation(inv) => {
                let top = self.commits();
                let logging = self.logging;
                let slot = self.open_slot(process);
                let entry = match slot {
                    Some(tx) => UndoEntry::PendingSet(process, tx.pending.replace(inv)),
                    None => {
                        *slot = Some(OpenTx {
                            pending: Some(inv),
                            writes: Vec::new(),
                            reads: Vec::new(),
                            // A fresh transaction can only be serialized at
                            // or after the current committed state.
                            candidates: SlotSet::singleton(top),
                        });
                        UndoEntry::OpenInserted(process)
                    }
                };
                if logging {
                    self.log.push(entry);
                }
            }
            EventKind::Response(resp) => match self.on_response(process, resp) {
                Ok(entry) => {
                    if self.logging {
                        if let Some(entry) = entry {
                            self.log.push(entry);
                        }
                    }
                }
                Err((detail, tx)) => {
                    let v = self.fail(process, detail);
                    if self.logging {
                        self.log.push(UndoEntry::Failed(process, tx));
                    }
                    self.position += 1;
                    return Err(v);
                }
            },
        }
        self.position += 1;
        Ok(())
    }

    /// Handles a response event. Returns the undo-log entry on success;
    /// on failure returns the violation detail together with the retired
    /// transaction record (restored to its pre-event state, captured
    /// only while logging) for the log.
    #[allow(clippy::type_complexity)]
    fn on_response(
        &mut self,
        process: ProcessId,
        resp: Response,
    ) -> Result<Option<UndoEntry>, (String, Option<Box<OpenTx>>)> {
        let Some(mut tx) = self.open_slot(process).take() else {
            // A response with no open transaction: treat as malformed input.
            return Err(("response without an open transaction".to_string(), None));
        };
        let logging = self.logging;
        let pending = tx.pending.take();
        let retire = move |mut tx: OpenTx, pending: Option<Invocation>, detail: String| {
            tx.pending = pending;
            (detail, logging.then(|| Box::new(tx)))
        };
        match resp {
            Response::Aborted => {
                // The transaction ends. In opacity mode its reads were
                // checked eagerly, so nothing further to verify. The
                // retired record is boxed only while logging — streaming
                // users pay no allocation here.
                tx.pending = pending;
                Ok(logging.then(|| UndoEntry::TxAborted(process, Box::new(tx))))
            }
            Response::Value(v) => {
                let Some(Invocation::Read(x)) = pending else {
                    return Err(retire(
                        tx,
                        pending,
                        "value response without pending read".to_string(),
                    ));
                };
                if let Some(w) = tx.write_of(x) {
                    if w != v {
                        return Err(retire(
                            tx,
                            pending,
                            format!(
                                "read of {x} returned {v} but the transaction's own write was {w}"
                            ),
                        ));
                    }
                    self.open[process.index()] = Some(tx);
                    Ok(Some(UndoEntry::OwnReadObserved(process, x)))
                } else {
                    // Capture the pre-prune candidates only while logging
                    // (allocation-free unless the set spilled past 64
                    // commits).
                    let prior = if logging {
                        tx.candidates.clone()
                    } else {
                        SlotSet::default()
                    };
                    let mut narrowed = false;
                    if self.mode == Mode::Opacity {
                        let states = &self.states;
                        tx.candidates.prune(|s| {
                            states[s].get(x.index()).copied().unwrap_or(INITIAL_VALUE) == v
                        });
                        if tx.candidates.is_empty() {
                            if logging {
                                tx.candidates = prior;
                            }
                            return Err(retire(
                                tx,
                                pending,
                                format!(
                                    "read of {x} returned {v}, inconsistent with every candidate \
                                     serialization point"
                                ),
                            ));
                        }
                        // Always restore candidates on undo in opacity
                        // mode: a did-it-narrow comparison to emit the
                        // slimmer `ReadKept` measures consistently slower
                        // than carrying the 40-byte set unconditionally.
                        narrowed = logging;
                    }
                    tx.reads.push((x, v));
                    self.open[process.index()] = Some(tx);
                    Ok(Some(if narrowed {
                        UndoEntry::ReadPruned(process, prior)
                    } else {
                        UndoEntry::ReadKept(process)
                    }))
                }
            }
            Response::Ok => {
                let Some(Invocation::Write(x, v)) = pending else {
                    return Err(retire(
                        tx,
                        pending,
                        "ok response without pending write".to_string(),
                    ));
                };
                let previous = tx.record_write(x, v);
                self.open[process.index()] = Some(tx);
                Ok(Some(UndoEntry::WriteRecorded(process, x, previous)))
            }
            Response::Committed => {
                if !matches!(pending, Some(Invocation::TryCommit)) {
                    return Err(retire(
                        tx,
                        pending,
                        "commit response without pending tryC".to_string(),
                    ));
                }
                let top = self.commits();
                // The committed transaction is serialized last: all its
                // reads must be consistent with the current committed state.
                for &(x, v) in &tx.reads {
                    let cur = self.state_value(top, x);
                    if cur != v {
                        return Err(retire(
                            tx,
                            pending,
                            format!(
                                "committed transaction read {x}={v} but the committed state at \
                                 its serialization point has {x}={cur}"
                            ),
                        ));
                    }
                }
                // Apply its writes to form the next committed state.
                let mut next = self.states[top].clone();
                for &(x, v) in &tx.writes {
                    Self::apply_write(&mut next, x, v);
                }
                self.states.push(next);
                let new_slot = self.commits();
                // The new state is a candidate serialization point for every
                // still-open transaction whose reads it satisfies.
                let mut granted = 0u64;
                if self.mode == Mode::Opacity {
                    let states = &self.states;
                    for (q, other) in self.open.iter_mut().enumerate() {
                        let Some(other) = other.as_mut() else {
                            continue;
                        };
                        let fits = other.reads.iter().all(|&(x, v)| {
                            states[new_slot]
                                .get(x.index())
                                .copied()
                                .unwrap_or(INITIAL_VALUE)
                                == v
                        });
                        if fits {
                            other.candidates.insert(new_slot);
                            if logging {
                                assert!(q < 64, "rollback logging supports at most 64 processes");
                                granted |= 1 << q;
                            }
                        }
                    }
                }
                tx.pending = pending;
                Ok(logging.then(|| UndoEntry::TxCommitted {
                    process,
                    tx: Box::new(tx),
                    granted,
                }))
            }
        }
    }

    /// Pushes an invocation and the response that immediately answers it
    /// as one fused operation — observationally identical to two
    /// [`IncrementalChecker::push`] calls (same verdicts, positions and
    /// rollback behaviour) with one record lookup and one undo-log entry.
    /// This is the model checker's per-edge hot path: non-blocking TMs
    /// answer almost every invocation immediately.
    ///
    /// The caller must respect the sequential-process contract (no other
    /// invocation of `process` may be outstanding).
    ///
    /// # Errors
    ///
    /// Returns the violation if the commit-order witness fails at the
    /// response (or failed earlier — the certifier latches).
    pub fn push_call(
        &mut self,
        process: ProcessId,
        invocation: Invocation,
        response: Response,
    ) -> Result<(), CommitOrderViolation> {
        if let Some(v) = &self.violation {
            return Err(v.clone());
        }
        let top = self.commits();
        let logging = self.logging;
        let (mut tx, fresh) = match self.open_slot(process).take() {
            Some(tx) => {
                debug_assert!(
                    tx.pending.is_none(),
                    "driver violated the sequential-process contract"
                );
                (tx, false)
            }
            None => (
                OpenTx {
                    pending: None,
                    writes: Vec::new(),
                    reads: Vec::new(),
                    // A fresh transaction can only be serialized at or
                    // after the current committed state.
                    candidates: SlotSet::singleton(top),
                },
                true,
            ),
        };
        // Failure helper: the response event (position + 1) latches; the
        // consumed record is retired exactly as two sequential pushes
        // would leave it.
        macro_rules! fail_call {
            ($tx:expr, $detail:expr) => {{
                let v = CommitOrderViolation {
                    process,
                    position: self.position + 1,
                    detail: $detail,
                };
                self.violation = Some(v.clone());
                if logging {
                    let retired = if fresh { None } else { Some(Box::new($tx)) };
                    self.log.push(UndoEntry::CallFailed(process, retired));
                }
                self.position += 2;
                return Err(v);
            }};
        }
        let entry = match response {
            Response::Aborted => {
                // The transaction ends; eager read checks already ran.
                // The retired record is boxed only while logging.
                if !logging {
                    self.position += 2;
                    return Ok(());
                }
                let retired = if fresh { None } else { Some(Box::new(tx)) };
                UndoEntry::CallAborted(process, retired)
            }
            Response::Value(v) => {
                let Invocation::Read(x) = invocation else {
                    fail_call!(tx, "value response without pending read".to_string());
                };
                if let Some(w) = tx.write_of(x) {
                    if w != v {
                        fail_call!(
                            tx,
                            format!(
                                "read of {x} returned {v} but the transaction's own write was {w}"
                            )
                        );
                    }
                    // Reading the own buffered write mutates nothing.
                    self.open[process.index()] = Some(tx);
                    self.position += 2;
                    return Ok(());
                }
                let prior = if logging {
                    tx.candidates.clone()
                } else {
                    SlotSet::default()
                };
                if self.mode == Mode::Opacity {
                    let states = &self.states;
                    tx.candidates
                        .prune(|s| states[s].get(x.index()).copied().unwrap_or(INITIAL_VALUE) == v);
                    if tx.candidates.is_empty() {
                        if logging {
                            tx.candidates = prior;
                        }
                        fail_call!(
                            tx,
                            format!(
                                "read of {x} returned {v}, inconsistent with every candidate \
                                 serialization point"
                            )
                        );
                    }
                }
                tx.reads.push((x, v));
                self.open[process.index()] = Some(tx);
                UndoEntry::CallRead {
                    process,
                    fresh,
                    prior,
                }
            }
            Response::Ok => {
                let Invocation::Write(x, v) = invocation else {
                    fail_call!(tx, "ok response without pending write".to_string());
                };
                let previous = tx.record_write(x, v);
                self.open[process.index()] = Some(tx);
                UndoEntry::CallWrite {
                    process,
                    fresh,
                    var: x,
                    previous,
                }
            }
            Response::Committed => {
                if invocation != Invocation::TryCommit {
                    fail_call!(tx, "commit response without pending tryC".to_string());
                }
                for &(x, v) in &tx.reads {
                    let cur = self.state_value(top, x);
                    if cur != v {
                        fail_call!(
                            tx,
                            format!(
                                "committed transaction read {x}={v} but the committed state at \
                                 its serialization point has {x}={cur}"
                            )
                        );
                    }
                }
                let mut next = self.states[top].clone();
                for &(x, v) in &tx.writes {
                    Self::apply_write(&mut next, x, v);
                }
                self.states.push(next);
                let new_slot = self.commits();
                let mut granted = 0u64;
                if self.mode == Mode::Opacity {
                    let states = &self.states;
                    for (q, other) in self.open.iter_mut().enumerate() {
                        let Some(other) = other.as_mut() else {
                            continue;
                        };
                        let fits = other.reads.iter().all(|&(x, v)| {
                            states[new_slot]
                                .get(x.index())
                                .copied()
                                .unwrap_or(INITIAL_VALUE)
                                == v
                        });
                        if fits {
                            other.candidates.insert(new_slot);
                            if logging {
                                assert!(q < 64, "rollback logging supports at most 64 processes");
                                granted |= 1 << q;
                            }
                        }
                    }
                }
                if !logging {
                    self.position += 2;
                    return Ok(());
                }
                let retired = if fresh { None } else { Some(Box::new(tx)) };
                UndoEntry::CallCommitted {
                    process,
                    tx: retired,
                    granted,
                }
            }
        };
        if logging {
            self.log.push(entry);
        }
        self.position += 2;
        Ok(())
    }

    /// Pushes every event of an iterator, stopping at the first violation.
    ///
    /// # Errors
    ///
    /// Returns the first violation encountered.
    pub fn push_all<I: IntoIterator<Item = Event>>(
        &mut self,
        events: I,
    ) -> Result<(), CommitOrderViolation> {
        for event in events {
            self.push(event)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::builder::figures;
    use tm_core::{HistoryBuilder, ProcessId, TVarId};

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    fn accepts(mode: Mode, h: &tm_core::History) -> bool {
        let mut c = IncrementalChecker::new(mode);
        c.push_all(h.iter().copied()).is_ok()
    }

    #[test]
    fn figure_1_accepted_in_both_modes() {
        let h = figures::figure_1();
        assert!(accepts(Mode::Opacity, &h));
        assert!(accepts(Mode::StrictSerializability, &h));
    }

    #[test]
    fn figure_3_rejected_in_both_modes() {
        let h = figures::figure_3();
        assert!(!accepts(Mode::Opacity, &h));
        assert!(!accepts(Mode::StrictSerializability, &h));
    }

    #[test]
    fn figure_4_split_verdict() {
        let h = figures::figure_4();
        assert!(!accepts(Mode::Opacity, &h));
        assert!(accepts(Mode::StrictSerializability, &h));
    }

    #[test]
    fn violation_latches() {
        let h = figures::figure_3();
        let mut c = IncrementalChecker::new(Mode::Opacity);
        let err = c.push_all(h.iter().copied()).unwrap_err();
        assert_eq!(c.violation(), Some(&err));
        // Further pushes keep failing.
        assert!(c.push(Event::read(P1, X)).is_err());
    }

    #[test]
    fn eager_read_check_rejects_torn_snapshot_mid_transaction() {
        let mut c = IncrementalChecker::new(Mode::Opacity);
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P2, X, 1)
            .write_ok(P2, Y, 1)
            .commit(P2)
            .build()
            .unwrap();
        c.push_all(h.iter().copied()).unwrap();
        // p1 now reads the *new* y while holding the *old* x: violation at
        // the read, before p1 even terminates.
        c.push(Event::read(P1, Y)).unwrap();
        assert!(c.push(Event::value(P1, 1)).is_err());
    }

    #[test]
    fn snapshot_before_writer_is_accepted() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P2, X, 1)
            .write_ok(P2, Y, 1)
            .commit(P2)
            .read(P1, Y, 0) // consistent with the pre-commit slot
            .abort_on_try_commit(P1)
            .build()
            .unwrap();
        assert!(accepts(Mode::Opacity, &h));
    }

    #[test]
    fn late_candidate_slot_allows_reading_new_state() {
        // p1 starts, then p2 commits x=1, then p1 reads x=1: p1 serializes
        // after p2.
        let h = HistoryBuilder::new()
            .read(P1, Y, 0)
            .write_ok(P2, X, 1)
            .commit(P2)
            .read(P1, X, 1)
            .abort_on_try_commit(P1)
            .build()
            .unwrap();
        assert!(accepts(Mode::Opacity, &h));
    }

    #[test]
    fn own_write_shadowing() {
        let h = HistoryBuilder::new()
            .write_ok(P1, X, 7)
            .read(P1, X, 7)
            .commit(P1)
            .build()
            .unwrap();
        assert!(accepts(Mode::Opacity, &h));

        let bad = HistoryBuilder::new()
            .write_ok(P1, X, 7)
            .read(P1, X, 0)
            .commit(P1)
            .build()
            .unwrap();
        assert!(!accepts(Mode::Opacity, &bad));
    }

    #[test]
    fn committed_value_tracks_state() {
        let mut c = IncrementalChecker::new(Mode::Opacity);
        assert_eq!(c.committed_value(X), 0);
        let h = HistoryBuilder::new()
            .write_ok(P1, X, 5)
            .commit(P1)
            .build()
            .unwrap();
        c.push_all(h.iter().copied()).unwrap();
        assert_eq!(c.committed_value(X), 5);
        assert_eq!(c.commits(), 1);
    }

    #[test]
    fn frontier_seeds_the_initial_state() {
        // A chunk whose prefix committed X=5: reading 5 is consistent,
        // reading the stale initial 0 is not.
        let h = HistoryBuilder::new()
            .read(P1, X, 5)
            .commit(P1)
            .build()
            .unwrap();
        let mut c = IncrementalChecker::with_frontier(Mode::Opacity, &[(X, 5)]);
        assert!(c.push_all(h.iter().copied()).is_ok());
        assert_eq!(c.committed_value(X), 5);

        let stale = HistoryBuilder::new()
            .read(P1, X, 0)
            .commit(P1)
            .build()
            .unwrap();
        let mut c = IncrementalChecker::with_frontier(Mode::Opacity, &[(X, 5)]);
        assert!(c.push_all(stale.iter().copied()).is_err());
    }

    #[test]
    fn long_adversary_shaped_run_is_linear_time() {
        // 10_000 rounds of the Figure 1 pattern; the certifier must accept
        // every prefix.
        let mut c = IncrementalChecker::new(Mode::Opacity);
        for v in 0..10_000 {
            let round = HistoryBuilder::new()
                .read(P1, X, v)
                .read(P2, X, v)
                .write_ok(P2, X, v + 1)
                .commit(P2)
                .write_ok(P1, X, v + 1)
                .abort_on_try_commit(P1)
                .build()
                .unwrap();
            c.push_all(round.iter().copied()).unwrap();
        }
        assert_eq!(c.commits(), 10_000);
    }

    #[test]
    fn slot_set_basic_operations() {
        let mut s = SlotSet::singleton(5);
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 1);
        s.insert(7);
        s.insert(6);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 6, 7]);
        s.remove(6);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 7]);
        s.prune(|slot| slot >= 7);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![7]);
        s.remove(7);
        assert!(s.is_empty());
    }

    #[test]
    fn slot_set_below_base_is_safe() {
        let mut s = SlotSet::singleton(10);
        assert!(!s.contains(5));
        s.remove(5); // never present: a no-op, not a wrap-around
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "slot precedes the set's base")]
    fn slot_set_insert_below_base_panics() {
        SlotSet::singleton(10).insert(5);
    }

    #[test]
    #[should_panic(expected = "dense-id bound")]
    fn absurd_process_ids_panic_cleanly() {
        // The dense tables refuse multi-terabyte ids with a clear panic
        // instead of attempting the allocation.
        let mut c = IncrementalChecker::new(Mode::Opacity);
        let _ = c.push(Event::read(ProcessId(1 << 40), X));
    }

    #[test]
    fn slot_set_spills_past_sixty_four_slots() {
        let mut s = SlotSet::singleton(10);
        for slot in 10..10 + 200 {
            s.insert(slot);
        }
        assert_eq!(s.len(), 200);
        assert!(s.contains(10 + 199));
        s.prune(|slot| slot % 2 == 0);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|slot| slot % 2 == 0));
        for slot in (11..10 + 200).step_by(2) {
            s.insert(slot);
        }
        assert_eq!(s.len(), 200);
    }

    /// Replaying a suffix after rollback must be indistinguishable from a
    /// fresh certifier that saw the same events — for every split point.
    fn assert_rollback_transparent(h: &tm_core::History, mode: Mode) {
        let events: Vec<Event> = h.iter().copied().collect();
        let mut fresh = IncrementalChecker::new(mode);
        let fresh_verdicts: Vec<bool> = events.iter().map(|e| fresh.push(*e).is_ok()).collect();
        for split in 0..=events.len() {
            let mut c = IncrementalChecker::new(mode);
            for e in &events[..split] {
                let _ = c.push(*e);
            }
            let cp = c.checkpoint();
            let first: Vec<bool> = events[split..].iter().map(|e| c.push(*e).is_ok()).collect();
            c.rollback(cp);
            let second: Vec<bool> = events[split..].iter().map(|e| c.push(*e).is_ok()).collect();
            assert_eq!(first, second, "split {split}: replay diverged");
            assert_eq!(
                first.as_slice(),
                &fresh_verdicts[split..],
                "split {split}: rollback replay diverged from fresh run"
            );
            assert_eq!(c.commits(), fresh.commits(), "split {split}");
            assert_eq!(c.events_pushed(), fresh.events_pushed(), "split {split}");
            assert_eq!(
                c.violation().map(|v| v.position),
                fresh.violation().map(|v| v.position),
                "split {split}"
            );
        }
    }

    #[test]
    fn rollback_is_transparent_on_the_figures() {
        for h in [
            figures::figure_1(),
            figures::figure_3(),
            figures::figure_4(),
        ] {
            assert_rollback_transparent(&h, Mode::Opacity);
            assert_rollback_transparent(&h, Mode::StrictSerializability);
        }
    }

    /// Pushes `events` using `push_call` for adjacent invocation/response
    /// pairs of one process and `push` otherwise, mirroring the explorer.
    fn push_fused(c: &mut IncrementalChecker, events: &[Event]) -> Vec<bool> {
        let mut verdicts = Vec::new();
        let mut i = 0;
        while i < events.len() {
            let e = events[i];
            let fuse = match (e.kind, events.get(i + 1)) {
                (EventKind::Invocation(inv), Some(next)) if next.process == e.process => {
                    match next.kind {
                        EventKind::Response(resp) => Some((inv, resp)),
                        EventKind::Invocation(_) => None,
                    }
                }
                _ => None,
            };
            if let Some((inv, resp)) = fuse {
                let ok = c.push_call(e.process, inv, resp).is_ok();
                verdicts.push(ok);
                verdicts.push(ok);
                i += 2;
            } else {
                verdicts.push(c.push(e).is_ok());
                i += 1;
            }
        }
        verdicts
    }

    /// Fused pushes must be observationally identical to sequential
    /// pushes — verdicts, positions, commits — including after a
    /// rollback/replay cycle.
    fn assert_fused_matches_sequential(h: &tm_core::History, mode: Mode) {
        let events: Vec<Event> = h.iter().copied().collect();
        let mut seq = IncrementalChecker::new(mode);
        let _seq_verdicts: Vec<bool> = events.iter().map(|e| seq.push(*e).is_ok()).collect();

        let mut fused = IncrementalChecker::new(mode);
        let cp = fused.checkpoint();
        let first = push_fused(&mut fused, &events);
        assert_eq!(first.len(), events.len());
        assert_eq!(fused.commits(), seq.commits());
        assert_eq!(fused.events_pushed(), seq.events_pushed());
        assert_eq!(
            fused.violation().map(|v| (v.position, v.detail.clone())),
            seq.violation().map(|v| (v.position, v.detail.clone()))
        );
        // Roll back and replay: identical behaviour again.
        fused.rollback(cp);
        assert!(fused.violation().is_none());
        assert_eq!(fused.events_pushed(), 0);
        assert_eq!(fused.commits(), 0);
        let second = push_fused(&mut fused, &events);
        assert_eq!(first, second);
        assert_eq!(fused.commits(), seq.commits());
        assert_eq!(
            fused.violation().map(|v| v.position),
            seq.violation().map(|v| v.position)
        );
    }

    #[test]
    fn fused_calls_match_sequential_pushes() {
        let contended = HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P2, X, 1)
            .write_ok(P2, Y, 1)
            .commit(P2)
            .read(P1, Y, 0)
            .write_ok(P1, X, 9)
            .read(P1, X, 9)
            .abort_on_try_commit(P1)
            .read(P2, X, 1)
            .write_ok(P2, X, 2)
            .commit(P2)
            .build()
            .unwrap();
        for h in [
            figures::figure_1(),
            figures::figure_3(),
            figures::figure_4(),
            contended,
        ] {
            assert_fused_matches_sequential(&h, Mode::Opacity);
            assert_fused_matches_sequential(&h, Mode::StrictSerializability);
        }
    }

    #[test]
    fn fused_calls_handle_malformed_pairs() {
        // Ok response answering a read: both forms latch with the same
        // detail and position.
        let mut seq = IncrementalChecker::new(Mode::Opacity);
        seq.push(Event::read(P1, X)).unwrap();
        let seq_err = seq.push(Event::ok(P1)).unwrap_err();
        let mut fused = IncrementalChecker::new(Mode::Opacity);
        let fused_err = fused
            .push_call(P1, Invocation::Read(X), Response::Ok)
            .unwrap_err();
        assert_eq!(seq_err.position, fused_err.position);
        assert_eq!(seq_err.detail, fused_err.detail);
    }

    #[test]
    fn rollback_is_transparent_on_a_contended_interleaving() {
        // Multiple commits, an abort, own-write shadowing and snapshot
        // reads — exercises every undo-entry variant.
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P2, X, 1)
            .write_ok(P2, Y, 1)
            .commit(P2)
            .read(P1, Y, 0)
            .write_ok(P1, X, 9)
            .read(P1, X, 9)
            .abort_on_try_commit(P1)
            .read(P2, X, 1)
            .write_ok(P2, X, 2)
            .commit(P2)
            .build()
            .unwrap();
        assert_rollback_transparent(&h, Mode::Opacity);
        assert_rollback_transparent(&h, Mode::StrictSerializability);
    }

    #[test]
    fn rollback_clears_a_latched_violation() {
        let mut c = IncrementalChecker::new(Mode::Opacity);
        let cp = c.checkpoint();
        let bad = figures::figure_3();
        assert!(c.push_all(bad.iter().copied()).is_err());
        assert!(c.violation().is_some());
        c.rollback(cp);
        assert!(c.violation().is_none());
        assert_eq!(c.events_pushed(), 0);
        assert_eq!(c.commits(), 0);
        // The certifier is fully reusable after the rollback.
        assert!(c.push_all(figures::figure_1().iter().copied()).is_ok());
        assert_eq!(c.commits(), 1);
    }

    #[test]
    fn checkpoints_nest_like_a_stack() {
        let mut c = IncrementalChecker::new(Mode::Opacity);
        let cp0 = c.checkpoint();
        c.push(Event::write(P1, X, 3)).unwrap();
        c.push(Event::ok(P1)).unwrap();
        let cp1 = c.checkpoint();
        c.push(Event::try_commit(P1)).unwrap();
        c.push(Event::committed(P1)).unwrap();
        assert_eq!(c.commits(), 1);
        c.rollback(cp1);
        assert_eq!(c.commits(), 0);
        assert_eq!(c.committed_value(X), 0);
        c.rollback(cp0);
        assert_eq!(c.events_pushed(), 0);
    }

    #[test]
    #[should_panic(expected = "checkpoint invalidated")]
    fn stale_checkpoint_panics() {
        let mut c = IncrementalChecker::new(Mode::Opacity);
        c.push(Event::read(P1, X)).unwrap();
        let outer = c.checkpoint();
        c.push(Event::value(P1, 0)).unwrap();
        let inner = c.checkpoint();
        c.rollback(outer);
        c.rollback(inner);
    }

    #[test]
    fn compact_preserves_verdicts_for_clones() {
        let mut c = IncrementalChecker::new(Mode::Opacity);
        let h = figures::figure_1();
        c.push_all(h.iter().copied()).unwrap();
        let mut clone = c.clone();
        clone.compact();
        let cp = clone.checkpoint();
        assert!(clone.push(Event::read(P1, X)).is_ok());
        clone.rollback(cp);
        assert_eq!(clone.commits(), c.commits());
    }

    #[test]
    fn strict_serializability_ignores_aborted_reads() {
        let h = HistoryBuilder::new()
            .read(P1, X, 42)
            .abort_on_try_commit(P1)
            .build()
            .unwrap();
        assert!(accepts(Mode::StrictSerializability, &h));
        assert!(!accepts(Mode::Opacity, &h));
    }
}
