//! Online, incremental safety certification for long histories.
//!
//! The exact checkers enumerate witness orders and are limited to ~10²
//! transactions. Adversary games and STM simulations produce histories with
//! 10⁴–10⁶ transactions, so this module provides a **sound but incomplete**
//! online certifier based on *commit-order* witnesses:
//!
//! * committed transactions are serialized in the order of their commit
//!   events (which always extends the real-time order among committed
//!   transactions);
//! * every other transaction (aborted, live, commit-pending) must observe
//!   the committed state at *some* point between its first event and the
//!   present — tracked as a set of candidate serialization slots that
//!   shrinks with every read and grows with every commit.
//!
//! If the certifier accepts a history, the history is opaque (respectively
//! strictly serializable): an explicit witness can be read off the
//! accepted slots. If it rejects, the history may still be safe under a
//! witness that reorders committed transactions — callers should fall back
//! to the exact checker when feasible ([`crate::check_opacity_auto`]).
//!
//! Because candidate slots are checked **eagerly at every read**, an
//! accepted run certifies every prefix of the history, matching the
//! prefix-closedness of the paper's safety properties.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use tm_core::{
    Event, EventKind, Invocation, ProcessId, Response, TVarId, Value, INITIAL_VALUE,
};

/// Which safety property the incremental certifier enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Every transaction (even aborted/live) must observe a consistent
    /// state.
    Opacity,
    /// Only committed transactions must be explainable.
    StrictSerializability,
}

/// A violation detected by the incremental certifier.
///
/// Note that (unlike [`crate::SafetyVerdict::Violated`]) this is evidence
/// that the *commit-order* witness fails, not that no witness exists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitOrderViolation {
    /// The process whose event triggered the violation.
    pub process: ProcessId,
    /// Index of the offending event in the pushed sequence.
    pub position: usize,
    /// Human-readable description.
    pub detail: String,
}

impl core::fmt::Display for CommitOrderViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "commit-order violation by {} at event {}: {}",
            self.process, self.position, self.detail
        )
    }
}

impl std::error::Error for CommitOrderViolation {}

#[derive(Debug, Clone, Default)]
struct OpenTx {
    pending: Option<Invocation>,
    writes: BTreeMap<TVarId, Value>,
    reads: Vec<(TVarId, Value)>,
    /// Candidate serialization slots: indices into `states` at which every
    /// read so far is consistent. Only maintained in opacity mode.
    candidates: Vec<usize>,
}

/// Online certifier for opacity / strict serializability via commit-order
/// witnesses. Push events as the TM produces them; the first violation is
/// returned (and the certifier latches it).
///
/// # Examples
///
/// ```
/// use tm_core::builder::figures;
/// use tm_safety::{IncrementalChecker, Mode};
///
/// let mut checker = IncrementalChecker::new(Mode::Opacity);
/// for &event in figures::figure_1().events() {
///     checker.push(event).expect("figure 1 is opaque");
/// }
/// assert_eq!(checker.commits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalChecker {
    mode: Mode,
    /// `states[i]` = committed t-variable state after `i` commits.
    states: Vec<BTreeMap<TVarId, Value>>,
    open: BTreeMap<ProcessId, OpenTx>,
    position: usize,
    violation: Option<CommitOrderViolation>,
}

impl IncrementalChecker {
    /// Creates a certifier in the given mode with all t-variables at
    /// [`INITIAL_VALUE`].
    pub fn new(mode: Mode) -> Self {
        IncrementalChecker {
            mode,
            states: vec![BTreeMap::new()],
            open: BTreeMap::new(),
            position: 0,
            violation: None,
        }
    }

    /// Number of commit events processed so far.
    pub fn commits(&self) -> usize {
        self.states.len() - 1
    }

    /// Number of events pushed so far.
    pub fn events_pushed(&self) -> usize {
        self.position
    }

    /// The first violation encountered, if any.
    pub fn violation(&self) -> Option<&CommitOrderViolation> {
        self.violation.as_ref()
    }

    /// The committed value of `x` in the latest committed state.
    pub fn committed_value(&self, x: TVarId) -> Value {
        self.states
            .last()
            .and_then(|s| s.get(&x))
            .copied()
            .unwrap_or(INITIAL_VALUE)
    }

    fn state_value(&self, slot: usize, x: TVarId) -> Value {
        self.states[slot].get(&x).copied().unwrap_or(INITIAL_VALUE)
    }

    fn fail(&mut self, process: ProcessId, detail: String) -> CommitOrderViolation {
        let v = CommitOrderViolation {
            process,
            position: self.position,
            detail,
        };
        self.violation = Some(v.clone());
        v
    }

    /// Pushes the next event of the history.
    ///
    /// # Errors
    ///
    /// Returns the violation if the commit-order witness fails at this
    /// event (or failed earlier — the certifier latches).
    pub fn push(&mut self, event: Event) -> Result<(), CommitOrderViolation> {
        if let Some(v) = &self.violation {
            return Err(v.clone());
        }
        let process = event.process;
        match event.kind {
            EventKind::Invocation(inv) => {
                let top = self.commits();
                let tx = self.open.entry(process).or_insert_with(|| OpenTx {
                    pending: None,
                    writes: BTreeMap::new(),
                    reads: Vec::new(),
                    // A fresh transaction can only be serialized at or after
                    // the current committed state.
                    candidates: vec![top],
                });
                tx.pending = Some(inv);
            }
            EventKind::Response(resp) => {
                let result = self.on_response(process, resp);
                if let Err(detail) = result {
                    let v = self.fail(process, detail);
                    self.position += 1;
                    return Err(v);
                }
            }
        }
        self.position += 1;
        Ok(())
    }

    fn on_response(&mut self, process: ProcessId, resp: Response) -> Result<(), String> {
        let Some(mut tx) = self.open.remove(&process) else {
            // A response with no open transaction: treat as malformed input.
            return Err("response without an open transaction".to_string());
        };
        let pending = tx.pending.take();
        match resp {
            Response::Aborted => {
                // The transaction ends. In opacity mode its reads were
                // checked eagerly, so nothing further to verify.
                Ok(())
            }
            Response::Value(v) => {
                let Some(Invocation::Read(x)) = pending else {
                    return Err("value response without pending read".to_string());
                };
                if let Some(&w) = tx.writes.get(&x) {
                    if w != v {
                        return Err(format!(
                            "read of {x} returned {v} but the transaction's own write was {w}"
                        ));
                    }
                } else {
                    tx.reads.push((x, v));
                    if self.mode == Mode::Opacity {
                        let states = &self.states;
                        tx.candidates
                            .retain(|&s| states[s].get(&x).copied().unwrap_or(INITIAL_VALUE) == v);
                        if tx.candidates.is_empty() {
                            return Err(format!(
                                "read of {x} returned {v}, inconsistent with every candidate \
                                 serialization point"
                            ));
                        }
                    }
                }
                self.open.insert(process, tx);
                Ok(())
            }
            Response::Ok => {
                let Some(Invocation::Write(x, v)) = pending else {
                    return Err("ok response without pending write".to_string());
                };
                tx.writes.insert(x, v);
                self.open.insert(process, tx);
                Ok(())
            }
            Response::Committed => {
                if !matches!(pending, Some(Invocation::TryCommit)) {
                    return Err("commit response without pending tryC".to_string());
                }
                let top = self.commits();
                // The committed transaction is serialized last: all its
                // reads must be consistent with the current committed state.
                for &(x, v) in &tx.reads {
                    let cur = self.state_value(top, x);
                    if cur != v {
                        return Err(format!(
                            "committed transaction read {x}={v} but the committed state at its \
                             serialization point has {x}={cur}"
                        ));
                    }
                }
                // Apply its writes to form the next committed state.
                let mut next = self.states[top].clone();
                next.extend(tx.writes.iter().map(|(&k, &v)| (k, v)));
                self.states.push(next);
                let new_slot = self.commits();
                // The new state is a candidate serialization point for every
                // still-open transaction whose reads it satisfies.
                if self.mode == Mode::Opacity {
                    let states = &self.states;
                    for other in self.open.values_mut() {
                        let fits = other.reads.iter().all(|&(x, v)| {
                            states[new_slot].get(&x).copied().unwrap_or(INITIAL_VALUE) == v
                        });
                        if fits {
                            other.candidates.push(new_slot);
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Pushes every event of an iterator, stopping at the first violation.
    ///
    /// # Errors
    ///
    /// Returns the first violation encountered.
    pub fn push_all<I: IntoIterator<Item = Event>>(
        &mut self,
        events: I,
    ) -> Result<(), CommitOrderViolation> {
        for event in events {
            self.push(event)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::builder::figures;
    use tm_core::{HistoryBuilder, ProcessId, TVarId};

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    fn accepts(mode: Mode, h: &tm_core::History) -> bool {
        let mut c = IncrementalChecker::new(mode);
        c.push_all(h.iter().copied()).is_ok()
    }

    #[test]
    fn figure_1_accepted_in_both_modes() {
        let h = figures::figure_1();
        assert!(accepts(Mode::Opacity, &h));
        assert!(accepts(Mode::StrictSerializability, &h));
    }

    #[test]
    fn figure_3_rejected_in_both_modes() {
        let h = figures::figure_3();
        assert!(!accepts(Mode::Opacity, &h));
        assert!(!accepts(Mode::StrictSerializability, &h));
    }

    #[test]
    fn figure_4_split_verdict() {
        let h = figures::figure_4();
        assert!(!accepts(Mode::Opacity, &h));
        assert!(accepts(Mode::StrictSerializability, &h));
    }

    #[test]
    fn violation_latches() {
        let h = figures::figure_3();
        let mut c = IncrementalChecker::new(Mode::Opacity);
        let err = c.push_all(h.iter().copied()).unwrap_err();
        assert_eq!(c.violation(), Some(&err));
        // Further pushes keep failing.
        assert!(c.push(Event::read(P1, X)).is_err());
    }

    #[test]
    fn eager_read_check_rejects_torn_snapshot_mid_transaction() {
        let mut c = IncrementalChecker::new(Mode::Opacity);
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P2, X, 1)
            .write_ok(P2, Y, 1)
            .commit(P2)
            .build()
            .unwrap();
        c.push_all(h.iter().copied()).unwrap();
        // p1 now reads the *new* y while holding the *old* x: violation at
        // the read, before p1 even terminates.
        c.push(Event::read(P1, Y)).unwrap();
        assert!(c.push(Event::value(P1, 1)).is_err());
    }

    #[test]
    fn snapshot_before_writer_is_accepted() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P2, X, 1)
            .write_ok(P2, Y, 1)
            .commit(P2)
            .read(P1, Y, 0) // consistent with the pre-commit slot
            .abort_on_try_commit(P1)
            .build()
            .unwrap();
        assert!(accepts(Mode::Opacity, &h));
    }

    #[test]
    fn late_candidate_slot_allows_reading_new_state() {
        // p1 starts, then p2 commits x=1, then p1 reads x=1: p1 serializes
        // after p2.
        let h = HistoryBuilder::new()
            .read(P1, Y, 0)
            .write_ok(P2, X, 1)
            .commit(P2)
            .read(P1, X, 1)
            .abort_on_try_commit(P1)
            .build()
            .unwrap();
        assert!(accepts(Mode::Opacity, &h));
    }

    #[test]
    fn own_write_shadowing() {
        let h = HistoryBuilder::new()
            .write_ok(P1, X, 7)
            .read(P1, X, 7)
            .commit(P1)
            .build()
            .unwrap();
        assert!(accepts(Mode::Opacity, &h));

        let bad = HistoryBuilder::new()
            .write_ok(P1, X, 7)
            .read(P1, X, 0)
            .commit(P1)
            .build()
            .unwrap();
        assert!(!accepts(Mode::Opacity, &bad));
    }

    #[test]
    fn committed_value_tracks_state() {
        let mut c = IncrementalChecker::new(Mode::Opacity);
        assert_eq!(c.committed_value(X), 0);
        let h = HistoryBuilder::new()
            .write_ok(P1, X, 5)
            .commit(P1)
            .build()
            .unwrap();
        c.push_all(h.iter().copied()).unwrap();
        assert_eq!(c.committed_value(X), 5);
        assert_eq!(c.commits(), 1);
    }

    #[test]
    fn long_adversary_shaped_run_is_linear_time() {
        // 10_000 rounds of the Figure 1 pattern; the certifier must accept
        // every prefix.
        let mut c = IncrementalChecker::new(Mode::Opacity);
        let mut v = 0;
        for _ in 0..10_000 {
            let round = HistoryBuilder::new()
                .read(P1, X, v)
                .read(P2, X, v)
                .write_ok(P2, X, v + 1)
                .commit(P2)
                .write_ok(P1, X, v + 1)
                .abort_on_try_commit(P1)
                .build()
                .unwrap();
            c.push_all(round.iter().copied()).unwrap();
            v += 1;
        }
        assert_eq!(c.commits(), 10_000);
    }

    #[test]
    fn strict_serializability_ignores_aborted_reads() {
        let h = HistoryBuilder::new()
            .read(P1, X, 42)
            .abort_on_try_commit(P1)
            .build()
            .unwrap();
        assert!(accepts(Mode::StrictSerializability, &h));
        assert!(!accepts(Mode::Opacity, &h));
    }
}
