//! Safety properties as first-class values.
//!
//! Section 5.1 of the paper quantifies over the class of *strictly
//! serializable safety properties* — properties at least as strong as
//! strict serializability. [`SafetyProperty`] makes that class
//! representable: harnesses and the generalized impossibility experiments
//! are parameterized by `&dyn SafetyProperty`.

use tm_core::History;

use crate::opacity::check_opacity;
use crate::strict_ser::check_strict_serializability;

/// A prefix-closed property of finite histories.
pub trait SafetyProperty {
    /// Human-readable name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Whether the property holds for the history.
    ///
    /// Implementations may panic on histories beyond their checkable size;
    /// harnesses use the incremental certifier for long runs.
    fn holds(&self, history: &History) -> bool;

    /// Whether the property is *strictly serializable* in the paper's sense
    /// (at least as strong as strict serializability). Both provided
    /// properties are; the flag lets experiments assert the precondition of
    /// Theorem 2.
    fn is_strictly_serializable_property(&self) -> bool;
}

/// Opacity (the safety property ensured by most TMs; Guerraoui & Kapałka).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Opacity;

impl SafetyProperty for Opacity {
    fn name(&self) -> &'static str {
        "opacity"
    }

    fn holds(&self, history: &History) -> bool {
        check_opacity(history)
            .expect("history too large for exact opacity check")
            .holds()
    }

    fn is_strictly_serializable_property(&self) -> bool {
        true
    }
}

/// Strict serializability (Papadimitriou).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrictSerializability;

impl SafetyProperty for StrictSerializability {
    fn name(&self) -> &'static str {
        "strict serializability"
    }

    fn holds(&self, history: &History) -> bool {
        check_strict_serializability(history)
            .expect("history too large for exact strict serializability check")
            .holds()
    }

    fn is_strictly_serializable_property(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::builder::figures;

    #[test]
    fn trait_objects_work() {
        let properties: Vec<Box<dyn SafetyProperty>> =
            vec![Box::new(Opacity), Box::new(StrictSerializability)];
        let h = figures::figure_4();
        let verdicts: Vec<(&str, bool)> =
            properties.iter().map(|p| (p.name(), p.holds(&h))).collect();
        assert_eq!(
            verdicts,
            vec![("opacity", false), ("strict serializability", true)]
        );
    }

    #[test]
    fn both_are_strictly_serializable_properties() {
        assert!(Opacity.is_strictly_serializable_property());
        assert!(StrictSerializability.is_strictly_serializable_property());
    }

    #[test]
    fn opacity_implies_strict_serializability_on_figures() {
        for h in [
            figures::figure_1(),
            figures::figure_3(),
            figures::figure_4(),
        ] {
            if Opacity.holds(&h) {
                assert!(StrictSerializability.holds(&h));
            }
        }
    }
}
