//! Exact and incremental checkers for TM safety properties.
//!
//! This crate decides the two safety properties of *On the Liveness of
//! Transactional Memory* (PODC 2012, §2.4) on finite histories:
//!
//! * **opacity** — every transaction (even aborted or live) observes a
//!   consistent state: [`check_opacity`] / [`is_opaque`];
//! * **strict serializability** — every committed transaction observes a
//!   consistent state: [`check_strict_serializability`] /
//!   [`is_strictly_serializable`].
//!
//! Both are decided *exactly* by searching the space of real-time-preserving
//! sequential witnesses (with legality pruning and memoization), and
//! *incrementally* for arbitrarily long histories by the sound-but-incomplete
//! commit-order certifier [`IncrementalChecker`]. [`check_opacity_auto`]
//! combines the two.
//!
//! ```
//! use tm_core::builder::figures;
//! use tm_safety::{is_opaque, is_strictly_serializable};
//!
//! // The paper's verdict table for Figures 1, 3 and 4:
//! assert!(is_opaque(&figures::figure_1()));
//! assert!(is_strictly_serializable(&figures::figure_1()));
//! assert!(!is_opaque(&figures::figure_3()));
//! assert!(!is_strictly_serializable(&figures::figure_3()));
//! assert!(!is_opaque(&figures::figure_4()));
//! assert!(is_strictly_serializable(&figures::figure_4()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod incremental;
pub mod opacity;
pub mod property;
pub mod strict_ser;
pub mod witness;

pub use incremental::{Checkpoint, CommitOrderViolation, IncrementalChecker, Mode, SlotSet};
pub use opacity::{check_opacity, is_opaque, SafetyVerdict};
pub use property::{Opacity, SafetyProperty, StrictSerializability};
pub use strict_ser::{check_strict_serializability, is_strictly_serializable};
pub use witness::{TooManyTransactions, MAX_EXACT_TRANSACTIONS};

use tm_core::History;

/// Outcome of a combined (incremental + exact) safety check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The property provably holds.
    Holds,
    /// The property provably does not hold.
    Violated,
    /// The history is too large for the exact checker and the fast
    /// commit-order certifier could not certify it.
    Unknown,
}

impl CheckOutcome {
    /// Whether the property was proven to hold.
    pub fn holds(self) -> bool {
        self == CheckOutcome::Holds
    }
}

fn check_auto(history: &History, mode: Mode) -> CheckOutcome {
    let mut fast = IncrementalChecker::new(mode);
    if fast.push_all(history.iter().copied()).is_ok() {
        return CheckOutcome::Holds;
    }
    let exact = match mode {
        Mode::Opacity => check_opacity(history),
        Mode::StrictSerializability => check_strict_serializability(history),
    };
    match exact {
        Ok(v) if v.holds() => CheckOutcome::Holds,
        Ok(_) => CheckOutcome::Violated,
        Err(_) => CheckOutcome::Unknown,
    }
}

/// Checks opacity with the fast commit-order certifier, falling back to the
/// exact checker when the fast path rejects.
///
/// # Examples
///
/// ```
/// use tm_core::builder::figures;
/// use tm_safety::{check_opacity_auto, CheckOutcome};
///
/// assert_eq!(check_opacity_auto(&figures::figure_1()), CheckOutcome::Holds);
/// assert_eq!(check_opacity_auto(&figures::figure_3()), CheckOutcome::Violated);
/// ```
pub fn check_opacity_auto(history: &History) -> CheckOutcome {
    check_auto(history, Mode::Opacity)
}

/// Checks strict serializability with the fast commit-order certifier,
/// falling back to the exact checker when the fast path rejects.
pub fn check_strict_serializability_auto(history: &History) -> CheckOutcome {
    check_auto(history, Mode::StrictSerializability)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::builder::figures;
    use tm_core::{HistoryBuilder, ProcessId, TVarId};

    #[test]
    fn auto_checker_matches_exact_on_figures() {
        assert_eq!(
            check_opacity_auto(&figures::figure_1()),
            CheckOutcome::Holds
        );
        assert_eq!(
            check_opacity_auto(&figures::figure_3()),
            CheckOutcome::Violated
        );
        assert_eq!(
            check_opacity_auto(&figures::figure_4()),
            CheckOutcome::Violated
        );
        assert_eq!(
            check_strict_serializability_auto(&figures::figure_4()),
            CheckOutcome::Holds
        );
    }

    #[test]
    fn auto_uses_exact_fallback_when_commit_order_fails() {
        // p1 reads x=0, p2 writes x=1 and commits, then p1 commits.
        // Commit order (p2, p1) fails — p1 read x=0 against state x=1 —
        // but the exact witness (p1, p2) exists, so the history is opaque.
        let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
        let h = HistoryBuilder::new()
            .read(p1, x, 0)
            .write_ok(p2, x, 1)
            .commit(p2)
            .commit(p1)
            .build()
            .unwrap();
        let mut fast = IncrementalChecker::new(Mode::Opacity);
        assert!(fast.push_all(h.iter().copied()).is_err());
        assert_eq!(check_opacity_auto(&h), CheckOutcome::Holds);
    }
}
