//! Round-trip property tests for `tm_telemetry::Json` — the single
//! serializer behind both wire formats (the NDJSON event stream and
//! the `BENCH_*.json` artifacts) and now also the substrate of the
//! tm-obs consumer's parser.
//!
//! The property: for every document, `parse(display(doc))` equals
//! `quantize(doc)`, where quantization is the one lossy step the
//! format admits — floats print at millisecond-scale (`{:.3}`)
//! precision and non-finite floats print as `null`. For documents
//! containing no floats the round trip is exact.

use tm_telemetry::Json;

/// The serializer's value of a document after one emit/parse cycle:
/// floats quantized to the printed precision (re-parsed, so a float
/// that prints without a fraction stays `Num` only via its `.3`
/// digits), non-finite floats collapsed to `Null`.
fn quantize(doc: &Json) -> Json {
    match doc {
        Json::Num(x) if !x.is_finite() => Json::Null,
        Json::Num(x) => Json::Num(format!("{x:.3}").parse().expect("printed float reparses")),
        Json::Arr(items) => Json::Arr(items.iter().map(quantize).collect()),
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .map(|(k, v)| (k.clone(), quantize(v)))
                .collect(),
        ),
        other => other.clone(),
    }
}

fn assert_round_trips(doc: &Json) {
    let text = doc.to_string();
    let parsed = Json::parse(&text)
        .unwrap_or_else(|e| panic!("serialized document must reparse ({e}): {text}"));
    assert_eq!(parsed, quantize(doc), "round trip diverged for: {text}");
    // Emission is canonical: a second cycle is byte-stable.
    assert_eq!(parsed.to_string(), quantize(doc).to_string());
}

/// A tiny deterministic generator (xorshift64*), so the property runs
/// over hundreds of structured documents without a randomness
/// dependency and failures reproduce exactly.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut s = self.0;
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        self.0 = s;
        s.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn string(&mut self) -> String {
        let len = self.below(8);
        (0..len)
            .map(|_| {
                // Bias toward the characters the escaper must handle.
                match self.below(10) {
                    0 => '"',
                    1 => '\\',
                    2 => '\n',
                    3 => '\t',
                    4 => '\u{1}',  // control char → 
                    5 => 'λ',      // multi-byte UTF-8
                    6 => '\u{1F}', // last control char
                    _ => (b'a' + (self.below(26) as u8)) as char,
                }
            })
            .collect()
    }

    fn value(&mut self, depth: usize) -> Json {
        let choices = if depth == 0 { 5 } else { 7 };
        match self.below(choices) {
            0 => Json::Null,
            1 => Json::Bool(self.next().is_multiple_of(2)),
            2 => Json::Int(self.next() as i64),
            3 => Json::Num(f64::from_bits(self.next() % (1u64 << 62)) % 1e9),
            4 => Json::Str(self.string()),
            5 => Json::Arr((0..self.below(4)).map(|_| self.value(depth - 1)).collect()),
            _ => Json::Obj(
                (0..self.below(4))
                    .map(|i| (format!("{}{i}", self.string()), self.value(depth - 1)))
                    .collect(),
            ),
        }
    }
}

#[test]
fn property_generated_documents_round_trip() {
    let mut gen = Gen(0x9E3779B97F4A7C15);
    for _ in 0..500 {
        assert_round_trips(&gen.value(3));
    }
}

#[test]
fn string_escape_edge_cases_round_trip() {
    for s in [
        "",
        "\"",
        "\\",
        "\\\\\"",
        "\n\t",
        "\u{0}\u{1}\u{1f}",
        "already \\u0041 escaped-looking",
        "mixed λ unicode → arrows",
        "trailing backslash \\",
        "quote\"in\\the\nmiddle",
    ] {
        assert_round_trips(&Json::Str(s.to_string()));
        // Also as an object key, which goes through the same escaper.
        assert_round_trips(&Json::Obj(vec![(s.to_string(), Json::Int(1))]));
    }
}

#[test]
fn number_edge_cases_round_trip() {
    for i in [0, 1, -1, i64::MAX, i64::MIN, 1_000_000_007] {
        assert_round_trips(&Json::Int(i));
    }
    for x in [
        0.0,
        -0.0,
        0.0005, // rounds to 0.001 at the wire precision
        1.5,
        -273.15,
        1e9,
        -1e9,
        123456789.123456, // truncated to .123
        f64::NAN,         // emits as null
        f64::INFINITY,
        f64::NEG_INFINITY,
    ] {
        assert_round_trips(&Json::Num(x));
    }
    // Exponent forms parse (as floats) even though emission never
    // produces them.
    assert_eq!(Json::parse("1e3"), Ok(Json::Num(1000.0)));
    assert_eq!(Json::parse("-2.5E-1"), Ok(Json::Num(-0.25)));
}

#[test]
fn nested_structures_round_trip() {
    assert_round_trips(&Json::Arr(vec![]));
    assert_round_trips(&Json::Obj(vec![]));
    assert_round_trips(&Json::Arr(vec![
        Json::Arr(vec![Json::Arr(vec![Json::Null])]),
        Json::Obj(vec![(
            "deep".into(),
            Json::Obj(vec![("er".into(), Json::Arr(vec![Json::Bool(false)]))]),
        )]),
    ]));
    // Duplicate keys are preserved positionally (first wins on get).
    let dup = Json::Obj(vec![("k".into(), Json::Int(1)), ("k".into(), Json::Int(2))]);
    assert_round_trips(&dup);
    assert_eq!(dup.get("k"), Some(&Json::Int(1)));
}
