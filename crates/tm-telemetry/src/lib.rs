//! Engine-wide observability for the model checkers: deterministic
//! counters, phase spans, timing histograms and a line-buffered NDJSON
//! event stream.
//!
//! The checkers prune aggressively (DPOR, dedup-DAG, parallel
//! frontiers) but used to be opaque while running: the only outputs
//! were the final report and the bench JSON. This crate is the
//! observability layer threaded through the whole stack —
//! `tm_sim::engine` (frontier splits, worker steps, memo hits/misses,
//! DPOR races, sleep-set blocks), both checkers (phase spans, schedule
//! and state counters, lasso/violation/verdict events) and `tm_stm`
//! (TmPool fork/refork tallies and timing histograms) — and the wire
//! format the ROADMAP's portfolio checking service consumes: racing
//! engines with first-to-verdict cancellation need live per-engine
//! progress, which is exactly the heartbeat/verdict stream below.
//!
//! # The `Telemetry` handle
//!
//! [`Telemetry`] is a cheap-to-clone handle (an `Option<Arc<_>>`). The
//! default handle is **off**: every hot-path hook compiles to one
//! predictable branch on a `None`, counters are not allocated, and no
//! I/O ever happens. An enabled handle counts into relaxed atomics;
//! hot loops additionally batch into plain locals and flush at phase
//! boundaries, so enabling counters does not perturb the measured
//! loops. Construction:
//!
//! * [`Telemetry::off`] — the no-op default (what `Default` returns);
//! * [`Telemetry::counters`] — in-memory counters only, for
//!   [`Telemetry::snapshot`] assertions in tests and benches;
//! * [`Telemetry::to_stderr`] / [`Telemetry::to_path`] — counters plus
//!   the NDJSON event stream;
//! * [`Telemetry::from_env`] — the CLI entry point: `TM_TELEMETRY=path`
//!   or `TM_TELEMETRY=stderr` selects the stream destination (unset:
//!   off), `TM_TELEMETRY_TIMING=1` enables the timing histograms, and
//!   `TM_TELEMETRY_HEARTBEAT_MS` tunes the heartbeat rate limit
//!   (default 200 ms).
//!
//! # Counter semantics
//!
//! Counters accumulate over the lifetime of one handle (pass a fresh
//! handle per run to get per-run numbers) and are **deterministic**:
//! every increment is a fixed property of the search (an executed
//! transition, a memo lookup, a fork), never of thread scheduling, so
//! for a fixed configuration the [`Snapshot`] is byte-identical across
//! thread counts and runs. Wall-clock data (timing histograms, phase
//! durations, heartbeats) is deliberately **excluded** from the
//! snapshot.
//!
//! The executed / replayed / pruned contract, shared by both checkers:
//!
//! * **executed** counts work actually performed against a TM:
//!   [`Counter::SchedulesExecuted`] is every complete schedule the
//!   safety explorer accounts for (including memoized subtree
//!   summaries — it equals the report's `schedules` field), and
//!   [`Counter::StepsExecuted`] is every TM transition the liveness
//!   checker executes (each graph edge exactly once under reduction).
//! * **replayed** counts re-walks served from recorded results instead
//!   of TM execution: [`Counter::StepsReplayed`] (livecheck edge
//!   replays) and [`Counter::MemoHits`] (seen-set hits in either
//!   engine). Replayed work still contributes to *executed* schedule
//!   totals — a memoized subtree's schedules count as executed because
//!   the summary is exact — but costs no TM stepping.
//! * **pruned** counts search the engine proved redundant and skipped
//!   entirely: [`Counter::SchedulesPruned`] (leaves of the full
//!   `n^depth` tree minus executed leaves, saturating) and
//!   [`Counter::SleepSetBlocks`] (subtrees sleep sets skipped).
//!
//! **Exception — the online-pipeline counters.** The streaming
//! certifier (`tm_sim::online`) runs real OS threads against real
//! atomics, so its counters are properties of one physical execution,
//! not of a deterministic search: [`Counter::TxCommits`] and
//! [`Counter::OpsRecorded`] are workload-determined, but
//! [`Counter::TxAborts`] (contention), [`Counter::EpochsSealed`],
//! [`Counter::ChunksCertified`] (batching boundaries) and
//! [`Counter::CheckerLagEpochs`] (a scheduling-dependent high-water
//! mark recorded via [`Telemetry::record_max`]) legitimately vary
//! across runs. Determinism suites must not snapshot-compare them.
//!
//! # The NDJSON event schema (version 1)
//!
//! With a stream destination configured, the sink emits **one JSON
//! object per line** (no pretty-printing, `\n` terminated, flushed per
//! line). Every event carries:
//!
//! * `"v"` — the schema version, currently `1`;
//! * `"ev"` — the event tag, one of [`EVENT_TAGS`];
//! * `"t_ms"` — milliseconds since the handle was created (wall clock,
//!   not deterministic).
//!
//! Event tags and their additional fields:
//!
//! | `ev` | fields |
//! |------|--------|
//! | `run_start` | `engine` (`"explore"` \| `"livecheck"` \| `"online"`), `tm`, `depth`, `processes` |
//! | `phase_start` | `engine`, `phase` |
//! | `phase_end` | `engine`, `phase`, `dur_us` |
//! | `heartbeat` | `engine` plus live gauges (e.g. `steps`, `steps_per_sec`, `states`, `frontier`, `dedup_hit_rate`; the online certifier streams `ops`, `ops_per_sec`, `epochs_sealed`, `lag_epochs`) |
//! | `lasso_found` | `prefix_len`, `cycle_len`, `starving`, `parasitic` (process index arrays) |
//! | `violation` | `engine`, `schedule` (process index array), `detail` |
//! | `trace` | `engine`, `kind` (`"violation"` \| `"lasso"`), `idx` (witness index within the run), `schedule` (process index array), `cycle_start` (lasso only: step index where the repeated cycle begins), `steps` (per-step objects `{"p","op","resp","digest"}`: process, operation, TM response — `null` while withheld — and the canonical state fingerprint after the step, present when the TM implements `state_digest`) |
//! | `verdict` | `engine`, `tm`, plus the engine's headline result (`all_opaque` + `schedules`, or `starvation_free` + `states`/`edges`/`lassos`; the online certifier reuses `all_opaque` + `ops`/`epochs`/`chunks`/`max_lag_epochs`) — or, for a budget-exhausted/partial run, `partial: true` + `reason` and **no** boolean headline |
//! | `counter_snapshot` | `label`, `counters` (object of non-zero counters), `timers` (object of log2 bucket arrays, only with timing) |
//! | `fault_injected` | `engine`, `kind` (`"crash"` \| `"parasite"`), `process` — one event per distinct fault transition the fault-aware search exercised |
//! | `budget_exhausted` | `engine`, `reason` (which cap tripped) — the run degrades to a partial report; its `verdict` carries `partial: true` |
//!
//! Consumers must ignore unknown fields and unknown `ev` tags within a
//! major version; field *removal* or semantic change bumps `"v"`.
//! Heartbeats are rate-limited ([`Telemetry::heartbeat`]); each checker
//! run additionally emits one final unconditional heartbeat before its
//! `verdict`, so even sub-millisecond runs produce at least one.
//! Each `trace` event immediately follows the `violation` /
//! `lasso_found` event it annotates, and is produced by a deterministic
//! out-of-band replay of the witness schedule — never by the search hot
//! path — so enabling traces cannot perturb [`Snapshot`] equality.
//!
//! # Consuming the stream
//!
//! The workspace ships a reference consumer: the `tm-obs` crate
//! (`crates/tm-obs`), a typed forward-compatible parser for this schema
//! plus a binary with four subcommands — `tm-obs summary` (per-run
//! reports and a TM × config verdict matrix), `tm-obs tail` (live
//! single-line progress rendered from heartbeats), `tm-obs explain`
//! (annotated per-step witness timelines from `trace` events) and
//! `tm-obs diff` (threshold-based regression comparison of counter
//! snapshots and `BENCH_*.json` artifacts; CI's perf gate). New
//! consumers — the portfolio service above all — should build on
//! `tm_obs::event` rather than re-parsing lines by hand.
//!
//! # Timing histograms
//!
//! With timing enabled, [`Telemetry::timer_start`]/[`timer_stop`]
//! record per-TM fork, refork and step durations into fixed-bucket
//! [`Log2Histogram`]s (bucket `i` counts durations in
//! `[2^(i-1), 2^i)` nanoseconds) — no allocation, no dependencies, and
//! a strictly bounded footprint. Timing data is wall-clock and
//! therefore never part of [`Snapshot`] equality.
//!
//! [`timer_stop`]: Telemetry::timer_stop

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

pub use json::Json;

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Every event tag the version-1 NDJSON schema may emit (see the module
/// docs for per-tag fields). Validation suites check emitted `ev`
/// values against this list.
pub const EVENT_TAGS: &[&str] = &[
    "run_start",
    "phase_start",
    "phase_end",
    "heartbeat",
    "lasso_found",
    "violation",
    "trace",
    "verdict",
    "counter_snapshot",
    "fault_injected",
    "budget_exhausted",
];

/// The deterministic engine counters (see the module docs for the
/// executed / replayed / pruned contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Schedule-tree walk steps (`SearchSpace::step` executions in the
    /// safety explorer, interior nodes included).
    WorkerSteps,
    /// Parallel frontier splits performed (one per explorer split, one
    /// per livecheck BFS level distributed).
    FrontierSplits,
    /// Work items distributed over the parallel frontier (subtree
    /// roots; level configurations).
    FrontierItems,
    /// Seen-set hits: memoized subtree summaries replayed (explorer
    /// dedup) or re-expansions skipped (livecheck budget dedup).
    MemoHits,
    /// Seen-set lookups that missed (explorer dedup only).
    MemoMisses,
    /// Reversible races the source-set DPOR analysis detected.
    DporRaces,
    /// Subtrees skipped by sleep-set pruning.
    SleepSetBlocks,
    /// Complete schedules the safety explorer accounted for (equals the
    /// report's `schedules`; includes memoized replays).
    SchedulesExecuted,
    /// Leaves of the full `width^depth` schedule tree not accounted for
    /// (saturating at `u64::MAX` for unrepresentable trees).
    SchedulesPruned,
    /// Histories that fell back to the exact opacity checker.
    ExactFallbacks,
    /// Definitive opacity violations reported.
    ViolationsFound,
    /// Distinct configurations interned by the liveness checker (the
    /// interner's size: states including frontier nodes).
    GraphNodes,
    /// Edges of the explored liveness state graph.
    GraphEdges,
    /// TM transitions the liveness checker executed (each graph edge
    /// exactly once under reduction or parallel search).
    StepsExecuted,
    /// Liveness edge re-walks served by replaying recorded events.
    StepsReplayed,
    /// Back-edges (cycles) the liveness DFS encountered, with
    /// multiplicity.
    CyclesDetected,
    /// Cycles with no events (blocked shapes).
    EventlessCycles,
    /// Lasso findings stored (deduplicated, capped).
    LassosFound,
    /// Allocating TM forks performed by the branching pool.
    TmForks,
    /// Allocation-free TM reforks performed by the branching pool.
    TmReforks,
    /// Race-reversal sequences inserted into wakeup trees (optimal
    /// DPOR).
    WakeupInserts,
    /// Race reversals proved already covered — rejected by the
    /// weak-initial sleep guard or subsumed by an existing wakeup-tree
    /// branch (optimal DPOR).
    WakeupRedundant,
    /// Executions the sleep discipline blocked: in source-set mode,
    /// race-inserted backtrack branches suppressed because their process
    /// was already asleep (each is a walk the classic SDPOR formulation
    /// starts and abandons); in optimal mode, wakeup-tree branches whose
    /// head was asleep when scheduled — provably none, so the counter
    /// must read 0 there.
    SleepBlockedExecutions,
    /// Fault transitions (`crash(p)` / `parasite(p)`) the fault-aware
    /// search executed as scheduler-level branches.
    FaultsInjected,
    /// Transactions committed by an `atomically*` retry loop (one per
    /// successful loop exit; workload-determined).
    TxCommits,
    /// Attempts aborted by an `atomically*` retry loop (one per retry;
    /// contention-dependent — see the online-counter exception in the
    /// module docs).
    TxAborts,
    /// Operations (read / write / commit attempts) stamped by the
    /// sharded online recorder.
    OpsRecorded,
    /// Epochs the online pipeline's sealer closed and handed to the
    /// certifier.
    EpochsSealed,
    /// History chunks the online certifier checked to completion.
    ChunksCertified,
    /// High-water mark of the online checker's lag (epochs sealed but
    /// not yet certified), recorded via [`Telemetry::record_max`] —
    /// scheduling-dependent, never snapshot-compared.
    CheckerLagEpochs,
}

impl Counter {
    /// Number of counters (the snapshot array length).
    pub const COUNT: usize = 30;

    /// Every counter, in snapshot order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::WorkerSteps,
        Counter::FrontierSplits,
        Counter::FrontierItems,
        Counter::MemoHits,
        Counter::MemoMisses,
        Counter::DporRaces,
        Counter::SleepSetBlocks,
        Counter::SchedulesExecuted,
        Counter::SchedulesPruned,
        Counter::ExactFallbacks,
        Counter::ViolationsFound,
        Counter::GraphNodes,
        Counter::GraphEdges,
        Counter::StepsExecuted,
        Counter::StepsReplayed,
        Counter::CyclesDetected,
        Counter::EventlessCycles,
        Counter::LassosFound,
        Counter::TmForks,
        Counter::TmReforks,
        Counter::WakeupInserts,
        Counter::WakeupRedundant,
        Counter::SleepBlockedExecutions,
        Counter::FaultsInjected,
        Counter::TxCommits,
        Counter::TxAborts,
        Counter::OpsRecorded,
        Counter::EpochsSealed,
        Counter::ChunksCertified,
        Counter::CheckerLagEpochs,
    ];

    /// The counter's stable snake_case name (the `counter_snapshot`
    /// field key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::WorkerSteps => "worker_steps",
            Counter::FrontierSplits => "frontier_splits",
            Counter::FrontierItems => "frontier_items",
            Counter::MemoHits => "memo_hits",
            Counter::MemoMisses => "memo_misses",
            Counter::DporRaces => "dpor_races",
            Counter::SleepSetBlocks => "sleep_set_blocks",
            Counter::SchedulesExecuted => "schedules_executed",
            Counter::SchedulesPruned => "schedules_pruned",
            Counter::ExactFallbacks => "exact_fallbacks",
            Counter::ViolationsFound => "violations_found",
            Counter::GraphNodes => "graph_nodes",
            Counter::GraphEdges => "graph_edges",
            Counter::StepsExecuted => "steps_executed",
            Counter::StepsReplayed => "steps_replayed",
            Counter::CyclesDetected => "cycles_detected",
            Counter::EventlessCycles => "eventless_cycles",
            Counter::LassosFound => "lassos_found",
            Counter::TmForks => "tm_forks",
            Counter::TmReforks => "tm_reforks",
            Counter::WakeupInserts => "wakeup_inserts",
            Counter::WakeupRedundant => "wakeup_redundant",
            Counter::SleepBlockedExecutions => "sleep_blocked_executions",
            Counter::FaultsInjected => "faults_injected",
            Counter::TxCommits => "tx_commits",
            Counter::TxAborts => "tx_aborts",
            Counter::OpsRecorded => "ops_recorded",
            Counter::EpochsSealed => "epochs_sealed",
            Counter::ChunksCertified => "chunks_certified",
            Counter::CheckerLagEpochs => "checker_lag_epochs",
        }
    }
}

/// The timed operations (histogram slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Timer {
    /// An allocating `fork` of the checked TM.
    Fork,
    /// An allocation-free refork into a recycled box.
    Refork,
    /// One scheduler step executed against the TM.
    Step,
}

impl Timer {
    /// Number of timers.
    pub const COUNT: usize = 3;

    /// Every timer, in slot order.
    pub const ALL: [Timer; Timer::COUNT] = [Timer::Fork, Timer::Refork, Timer::Step];

    /// The timer's stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Timer::Fork => "fork_ns",
            Timer::Refork => "refork_ns",
            Timer::Step => "step_ns",
        }
    }
}

const HIST_BUCKETS: usize = 40;

/// A fixed-bucket base-2 logarithmic histogram of nanosecond durations:
/// bucket `i` counts samples in `[2^(i-1), 2^i)` ns (bucket 0 counts
/// zeros; the last bucket absorbs everything ≥ `2^38` ns ≈ 4.6 min).
/// Lock-free (relaxed atomics), allocation-free, dependency-free.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Log2Histogram {
    /// Records one duration.
    pub fn record(&self, nanos: u64) {
        let idx = (64 - nanos.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Relaxed);
    }

    /// The per-bucket counts.
    pub fn counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Relaxed))
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }
}

/// A deterministic, comparable copy of every counter (see the module
/// docs: timing data is excluded, so equality across thread counts is
/// an invariant the test suites assert).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    counts: [u64; Counter::COUNT],
}

impl Snapshot {
    /// One counter's value.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counts[counter as usize]
    }

    /// The non-zero counters, in snapshot order, by stable name.
    pub fn nonzero(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .filter(|&&c| self.counts[c as usize] != 0)
            .map(|&c| (c.name(), self.counts[c as usize]))
            .collect()
    }

    /// Whether every counter is zero (e.g. the handle was off).
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut map = f.debug_map();
        for (name, value) in self.nonzero() {
            map.entry(&name, &value);
        }
        map.finish()
    }
}

struct Inner {
    counters: [AtomicU64; Counter::COUNT],
    timers: [Log2Histogram; Timer::COUNT],
    timing: bool,
    /// Completed phase spans: `(name, duration_nanos)` — inspectable
    /// in-memory even without a stream sink.
    phases: Mutex<Vec<(String, u64)>>,
    sink: Option<Mutex<Box<dyn Write + Send>>>,
    start: Instant,
    heartbeat_ms: u64,
    /// Milliseconds-since-start of the last heartbeat, plus one
    /// (so zero means "never"). A benign race: two threads may both
    /// pass the gate and emit, which only makes heartbeats denser.
    last_beat: AtomicU64,
}

/// The observability handle threaded through the engine, the checkers
/// and the TM pool. Cheap to clone (an `Option<Arc<_>>`); the default
/// handle is off and every hook on it is a no-op. See the module docs
/// for the schema and counter contracts.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Telemetry(off)"),
            Some(inner) if inner.sink.is_some() => f.write_str("Telemetry(streaming)"),
            Some(_) => f.write_str("Telemetry(counters)"),
        }
    }
}

fn build(sink: Option<Box<dyn Write + Send>>) -> Telemetry {
    Telemetry {
        inner: Some(Arc::new(Inner {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            timers: std::array::from_fn(|_| Log2Histogram::default()),
            timing: false,
            phases: Mutex::new(Vec::new()),
            sink: sink.map(Mutex::new),
            start: Instant::now(),
            heartbeat_ms: 200,
            last_beat: AtomicU64::new(0),
        })),
    }
}

impl Telemetry {
    /// The no-op handle: no counters, no I/O, hooks compile to a branch.
    pub fn off() -> Telemetry {
        Telemetry::default()
    }

    /// In-memory counters and phase spans only — no event stream. The
    /// handle the determinism suites snapshot.
    pub fn counters() -> Telemetry {
        build(None)
    }

    /// Counters plus the NDJSON event stream on standard error.
    pub fn to_stderr() -> Telemetry {
        build(Some(Box::new(std::io::stderr())))
    }

    /// Counters plus the NDJSON event stream appended to a file.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn to_path(path: impl AsRef<std::path::Path>) -> std::io::Result<Telemetry> {
        let file = std::fs::File::create(path)?;
        Ok(build(Some(Box::new(std::io::BufWriter::new(file)))))
    }

    /// The environment entry point (see the module docs):
    /// `TM_TELEMETRY=stderr|<path>` selects the stream (unset or empty:
    /// off), `TM_TELEMETRY_TIMING=1` enables timing histograms,
    /// `TM_TELEMETRY_HEARTBEAT_MS=<ms>` tunes the heartbeat rate limit.
    pub fn from_env() -> Telemetry {
        let dest = match std::env::var("TM_TELEMETRY") {
            Ok(dest) if !dest.is_empty() => dest,
            _ => return Telemetry::off(),
        };
        let mut telemetry = if dest == "stderr" {
            Telemetry::to_stderr()
        } else {
            match Telemetry::to_path(&dest) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("TM_TELEMETRY: cannot open `{dest}` ({e}); streaming to stderr");
                    Telemetry::to_stderr()
                }
            }
        };
        if std::env::var("TM_TELEMETRY_TIMING").is_ok_and(|v| v == "1") {
            telemetry = telemetry.with_timing();
        }
        if let Some(ms) = std::env::var("TM_TELEMETRY_HEARTBEAT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            telemetry = telemetry.with_heartbeat_ms(ms);
        }
        telemetry
    }

    /// Enables the fork/refork/step timing histograms. Construction-time
    /// option: a no-op once the handle has been cloned.
    #[must_use]
    pub fn with_timing(mut self) -> Telemetry {
        if let Some(inner) = self.inner.as_mut().and_then(Arc::get_mut) {
            inner.timing = true;
        }
        self
    }

    /// Sets the heartbeat rate limit. Construction-time option: a no-op
    /// once the handle has been cloned.
    #[must_use]
    pub fn with_heartbeat_ms(mut self, ms: u64) -> Telemetry {
        if let Some(inner) = self.inner.as_mut().and_then(Arc::get_mut) {
            inner.heartbeat_ms = ms;
        }
        self
    }

    /// Whether any instrumentation is active (counters at minimum).
    #[inline]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether the NDJSON event stream is configured.
    #[inline]
    pub fn streams(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.sink.is_some())
    }

    /// Whether the timing histograms are recording.
    #[inline]
    pub fn timing_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.timing)
    }

    /// Adds `n` to a counter (relaxed atomic; a no-op when off).
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            if n != 0 {
                inner.counters[counter as usize].fetch_add(n, Relaxed);
            }
        }
    }

    /// Raises a counter to `v` if `v` exceeds its current value — the
    /// high-water-mark discipline for gauge-like counters such as
    /// [`Counter::CheckerLagEpochs`] (relaxed atomic; a no-op when off).
    #[inline]
    pub fn record_max(&self, counter: Counter, v: u64) {
        if let Some(inner) = &self.inner {
            inner.counters[counter as usize].fetch_max(v, Relaxed);
        }
    }

    /// One counter's current value (0 when off).
    pub fn value(&self, counter: Counter) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.counters[counter as usize].load(Relaxed))
    }

    /// Seconds since the handle was created (0.0 when off).
    pub fn elapsed_secs(&self) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |i| i.start.elapsed().as_secs_f64())
    }

    /// A deterministic copy of every counter (all-zero when off).
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            None => Snapshot::default(),
            Some(inner) => Snapshot {
                counts: std::array::from_fn(|i| inner.counters[i].load(Relaxed)),
            },
        }
    }

    /// Starts a duration measurement iff timing is enabled; pass the
    /// result to [`Telemetry::timer_stop`]. The disabled path is one
    /// branch — no clock read.
    #[inline]
    pub fn timer_start(&self) -> Option<Instant> {
        match &self.inner {
            Some(inner) if inner.timing => Some(Instant::now()),
            _ => None,
        }
    }

    /// Completes a measurement started by [`Telemetry::timer_start`].
    #[inline]
    pub fn timer_stop(&self, timer: Timer, started: Option<Instant>) {
        if let (Some(inner), Some(started)) = (&self.inner, started) {
            inner.timers[timer as usize]
                .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Total samples one timing histogram has recorded.
    pub fn timer_total(&self, timer: Timer) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.timers[timer as usize].total())
    }

    /// Completed phase spans as `(name, duration_nanos)`, in completion
    /// order.
    pub fn phases(&self) -> Vec<(String, u64)> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.phases.lock().expect("phases lock").clone())
    }

    /// Opens a phase span: emits `phase_start` now and, when the guard
    /// drops, records the duration and emits `phase_end`.
    #[must_use = "the span measures until dropped — bind it with `let _span = ...`"]
    pub fn phase(&self, engine: &'static str, name: &'static str) -> PhaseSpan {
        let start = self.inner.as_ref().map(|_| Instant::now());
        if start.is_some() {
            self.event(
                "phase_start",
                &[("engine", Json::str(engine)), ("phase", Json::str(name))],
            );
        }
        PhaseSpan {
            telemetry: self.clone(),
            engine,
            name,
            start,
        }
    }

    /// Emits one NDJSON event (a no-op without a stream sink). The
    /// standard envelope fields `v`, `ev` and `t_ms` are prepended.
    pub fn event(&self, ev: &str, fields: &[(&str, Json)]) {
        let Some(inner) = &self.inner else { return };
        let Some(sink) = &inner.sink else { return };
        let mut pairs = Vec::with_capacity(fields.len() + 3);
        pairs.push(("v".to_string(), Json::Int(1)));
        pairs.push(("ev".to_string(), Json::str(ev)));
        pairs.push((
            "t_ms".to_string(),
            Json::Num(inner.start.elapsed().as_secs_f64() * 1e3),
        ));
        for (k, v) in fields {
            pairs.push(((*k).to_string(), v.clone()));
        }
        let line = Json::Obj(pairs);
        // Telemetry is best-effort: a closed pipe must not kill a run.
        let mut out = sink.lock().expect("sink lock");
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }

    /// Emits a rate-limited `heartbeat` event; `fields` is only
    /// evaluated when a beat is due (a no-op without a stream sink).
    pub fn heartbeat<F>(&self, engine: &str, fields: F)
    where
        F: FnOnce() -> Vec<(&'static str, Json)>,
    {
        let Some(inner) = &self.inner else { return };
        if inner.sink.is_none() {
            return;
        }
        let now = u64::try_from(inner.start.elapsed().as_millis()).unwrap_or(u64::MAX);
        let last = inner.last_beat.load(Relaxed);
        if last != 0 && now.saturating_sub(last - 1) < inner.heartbeat_ms {
            return;
        }
        inner.last_beat.store(now + 1, Relaxed);
        self.emit_heartbeat(engine, &fields());
    }

    /// Emits a `heartbeat` event unconditionally — each checker run's
    /// final beat, so even sub-millisecond runs stream at least one.
    pub fn heartbeat_now(&self, engine: &str, fields: &[(&'static str, Json)]) {
        if self.streams() {
            if let Some(inner) = &self.inner {
                let now = u64::try_from(inner.start.elapsed().as_millis()).unwrap_or(u64::MAX);
                inner.last_beat.store(now + 1, Relaxed);
            }
            self.emit_heartbeat(engine, fields);
        }
    }

    fn emit_heartbeat(&self, engine: &str, fields: &[(&'static str, Json)]) {
        let mut all: Vec<(&str, Json)> = vec![("engine", Json::str(engine))];
        all.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
        self.event("heartbeat", &all);
    }

    /// Emits a `counter_snapshot` event of every non-zero counter (plus
    /// the timing histograms when enabled); a no-op without a sink.
    pub fn emit_counters(&self, label: &str) {
        self.emit_counters_pinned(label, &[]);
    }

    /// [`Self::emit_counters`], with `pinned` counters included even at
    /// zero. Zero is normally elided as noise, but some zeros *are* the
    /// datum — the explorer's optimal-DPOR mode pins
    /// [`Counter::SleepBlockedExecutions`] so its guaranteed-zero value
    /// is visible (and assertable) in the event stream.
    pub fn emit_counters_pinned(&self, label: &str, pinned: &[Counter]) {
        let Some(inner) = &self.inner else { return };
        if inner.sink.is_none() {
            return;
        }
        let snapshot = self.snapshot();
        let counters = Json::Obj(
            Counter::ALL
                .iter()
                .filter(|&&c| snapshot.get(c) != 0 || pinned.contains(&c))
                .map(|&c| {
                    (
                        c.name().to_string(),
                        Json::Int(i64::try_from(snapshot.get(c)).unwrap_or(i64::MAX)),
                    )
                })
                .collect(),
        );
        let mut fields = vec![("label", Json::str(label)), ("counters", counters)];
        if inner.timing {
            let timers = Json::Obj(
                Timer::ALL
                    .iter()
                    .filter(|&&t| inner.timers[t as usize].total() != 0)
                    .map(|&t| {
                        let counts = inner.timers[t as usize].counts();
                        let last = counts.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
                        (
                            t.name().to_string(),
                            Json::Arr(
                                counts[..last]
                                    .iter()
                                    .map(|&c| Json::Int(i64::try_from(c).unwrap_or(i64::MAX)))
                                    .collect(),
                            ),
                        )
                    })
                    .collect(),
            );
            fields.push(("timers", timers));
        }
        self.event("counter_snapshot", &fields);
    }
}

/// An RAII phase span returned by [`Telemetry::phase`]: measures from
/// creation to drop, records the duration in-memory, and emits the
/// `phase_start`/`phase_end` event pair when streaming.
pub struct PhaseSpan {
    telemetry: Telemetry,
    engine: &'static str,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(inner) = &self.telemetry.inner {
            inner
                .phases
                .lock()
                .expect("phases lock")
                .push((self.name.to_string(), nanos));
        }
        self.telemetry.event(
            "phase_end",
            &[
                ("engine", Json::str(self.engine)),
                ("phase", Json::str(self.name)),
                ("dur_us", Json::Num(nanos as f64 / 1e3)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_off_handle_is_inert() {
        let t = Telemetry::off();
        t.add(Counter::WorkerSteps, 10);
        assert!(!t.is_on() && !t.streams() && !t.timing_enabled());
        assert!(t.snapshot().is_empty());
        assert_eq!(t.timer_start(), None);
        let _span = t.phase("explore", "walk");
        drop(_span);
        assert!(t.phases().is_empty());
    }

    #[test]
    fn counters_accumulate_and_snapshot_compares() {
        let a = Telemetry::counters();
        let b = Telemetry::counters();
        for t in [&a, &b] {
            t.add(Counter::SchedulesExecuted, 100);
            t.add(Counter::MemoHits, 7);
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.snapshot().get(Counter::SchedulesExecuted), 100);
        b.add(Counter::MemoHits, 1);
        assert_ne!(a.snapshot(), b.snapshot());
        assert_eq!(
            a.snapshot().nonzero(),
            vec![("memo_hits", 7), ("schedules_executed", 100)]
        );
    }

    #[test]
    fn clones_share_the_counter_store() {
        let t = Telemetry::counters();
        let clone = t.clone();
        clone.add(Counter::TmForks, 3);
        assert_eq!(t.value(Counter::TmForks), 3);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Log2Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // [1,2) -> bucket 1
        h.record(2); // [2,4) -> bucket 2
        h.record(3);
        h.record(1024); // bucket 11
        h.record(u64::MAX); // clamped to the last bucket
        let counts = h.counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 2);
        assert_eq!(counts[11], 1);
        assert_eq!(counts[HIST_BUCKETS - 1], 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn timing_is_opt_in() {
        let plain = Telemetry::counters();
        assert_eq!(plain.timer_start(), None);
        let timed = Telemetry::counters().with_timing();
        let started = timed.timer_start();
        assert!(started.is_some());
        timed.timer_stop(Timer::Fork, started);
        assert_eq!(timed.timer_total(Timer::Fork), 1);
        assert_eq!(timed.timer_total(Timer::Step), 0);
    }

    #[test]
    fn phase_spans_record_in_memory() {
        let t = Telemetry::counters();
        {
            let _span = t.phase("livecheck", "graph_build");
        }
        let phases = t.phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].0, "graph_build");
    }

    #[test]
    fn stream_lines_are_schema_valid_json() {
        let path =
            std::env::temp_dir().join(format!("tm_telemetry_unit_{}.ndjson", std::process::id()));
        let t = Telemetry::to_path(&path).expect("open sink");
        t.add(Counter::StepsExecuted, 5);
        t.event(
            "run_start",
            &[("engine", Json::str("livecheck")), ("tm", Json::str("tl2"))],
        );
        {
            let _span = t.phase("livecheck", "search");
        }
        t.heartbeat_now("livecheck", &[("states", Json::Int(9))]);
        t.emit_counters("tl2");
        drop(t);
        let text = std::fs::read_to_string(&path).expect("read stream");
        let _ = std::fs::remove_file(&path);
        let mut tags = Vec::new();
        for line in text.lines() {
            let doc = Json::parse(line).expect("every line parses");
            assert_eq!(doc.get("v").and_then(Json::as_int), Some(1));
            let tag = doc
                .get("ev")
                .and_then(Json::as_str)
                .expect("ev present")
                .to_string();
            assert!(EVENT_TAGS.contains(&tag.as_str()), "unknown tag {tag}");
            tags.push(tag);
        }
        assert_eq!(
            tags,
            vec![
                "run_start",
                "phase_start",
                "phase_end",
                "heartbeat",
                "counter_snapshot"
            ]
        );
    }

    #[test]
    fn heartbeats_are_rate_limited_but_now_is_unconditional() {
        let path =
            std::env::temp_dir().join(format!("tm_telemetry_beats_{}.ndjson", std::process::id()));
        let t = Telemetry::to_path(&path)
            .expect("open sink")
            .with_heartbeat_ms(10_000);
        let mut evaluated = 0;
        for _ in 0..5 {
            t.heartbeat("explore", || {
                evaluated += 1;
                vec![("steps", Json::Int(1))]
            });
        }
        t.heartbeat_now("explore", &[("steps", Json::Int(2))]);
        drop(t);
        let text = std::fs::read_to_string(&path).expect("read stream");
        let _ = std::fs::remove_file(&path);
        assert_eq!(evaluated, 1, "rate limit must skip field construction");
        assert_eq!(text.lines().count(), 2, "one limited beat + one forced");
    }
}
