//! A minimal JSON value: serializer and parser, with no dependencies.
//!
//! This is the single serializer behind every machine-readable artifact
//! the workspace emits — the telemetry NDJSON event stream and the
//! `BENCH_*.json` benchmark artifacts (re-exported by the `bench`
//! crate) — so their formats cannot drift apart. The parser exists for
//! the consumers: the NDJSON validation tests and the future portfolio
//! orchestrator, which must read verdict/heartbeat events back.

/// Minimal JSON value for machine-readable artifacts (`BENCH_*.json`,
/// the telemetry NDJSON stream), so output plumbing and validation need
/// no serialization dependency.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// The null value.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (emitted without a fraction).
    Int(i64),
    /// A float (emitted with millisecond-scale precision).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks a key up in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Parses one complete JSON document (trailing whitespace allowed).
    ///
    /// This is the validation half of the NDJSON contract: every line
    /// the telemetry sink emits must round-trip through this parser.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(x) => {
                if x.is_finite() {
                    write!(f, "{x:.3}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at offset {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, "\"")?;
    let mut out = String::new();
    loop {
        let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
        let mut chars = rest.char_indices();
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some((_, '"')) => {
                *pos += 1;
                return Ok(out);
            }
            Some((_, '\\')) => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = std::str::from_utf8(
                            bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?,
                        )
                        .map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for the emitted
                        // subset (escapes cover only control characters).
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some((i, c)) => {
                out.push(c);
                *pos += c.len_utf8() + i;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' | b'-' | b'+' => *pos += 1,
            b'.' | b'e' | b'E' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected a value at offset {start}"));
    }
    if fractional {
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("v".into(), Json::Int(1)),
            ("ev".into(), Json::str("verdict")),
            ("ok".into(), Json::Bool(true)),
            ("ms".into(), Json::Num(1.5)),
            ("none".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::Int(-3), Json::str("a\"b\\c\nd")]),
            ),
        ]);
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("parse back");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let parsed = Json::parse(" { \"k\" : [ 1 , \"\\u0041\\t\" ] } ").expect("parse");
        assert_eq!(
            parsed.get("k").and_then(|v| match v {
                Json::Arr(items) => items.get(1).and_then(Json::as_str),
                _ => None,
            }),
            Some("A\t")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"k\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
