//! Regression comparison of two counter snapshots or two `BENCH_*.json`
//! artifacts — the repo's CI perf gate.
//!
//! Inputs are detected by shape: a single JSON object with a `bench`
//! key is a benchmark artifact; anything else is parsed as an NDJSON
//! stream whose **last** `counter_snapshot` event is the snapshot under
//! comparison. Artifacts from different machines are not comparable —
//! every artifact records the `cores` it was measured on, and the diff
//! **refuses** cross-`cores` comparisons unless explicitly overridden.
//! The same refusal applies per row: a row-level `cores` field (as in
//! `BENCH_online.json`) that differs between sides, or a baseline row
//! whose only identity mismatch is its `threads` count, is a usage
//! error (`--ignore-cores` / `--ignore-threads` to override) — thread
//! scaling changes contention, so cross-thread-count numbers are not a
//! regression signal any more than cross-machine ones.
//!
//! Columns are classified by name, each with its own threshold
//! direction:
//!
//! * **rates and ratios** (`speedup_*`, `*reduction*`, `*_per_sec`,
//!   `throughput*`) — higher is better; a regression is a drop beyond
//!   the ratio threshold;
//! * **times** (`*_ms`, `*_us`, `*_ns`, `*secs`) — lower is better; a
//!   regression is an increase beyond the time threshold;
//! * **counts** (everything else numeric: schedules, states, forks…) —
//!   deterministic search properties; a regression is *any* drift
//!   beyond the count threshold (default: exact equality).
//!
//! Rows of benchmark tables are matched by their identity fields
//! (string/bool columns such as `workload`, plus the structural ints
//! `processes`/`depth`/`threads`/`rounds`); rows or columns present on
//! only one side are reported as skipped, never as regressions — a
//! `--test`-mode smoke artifact can therefore be diffed against a
//! full checked-in artifact over their common rows.

use tm_telemetry::Json;

use crate::event::{parse_stream, EventBody};

/// Int-valued row fields that identify a row rather than measure it.
const IDENTITY_INTS: &[&str] = &["processes", "depth", "threads", "rounds"];

/// Per-class thresholds, in percent, plus per-column overrides.
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Allowed increase for time columns (percent).
    pub time_pct: f64,
    /// Allowed decrease for rate/ratio columns (percent).
    pub ratio_pct: f64,
    /// Allowed drift (either direction) for count columns (percent).
    pub count_pct: f64,
    /// Per-column overrides (column name → percent), taking precedence
    /// over the class defaults; the class still sets the direction.
    pub per_column: Vec<(String, f64)>,
    /// Compare artifacts measured on different core counts anyway.
    pub ignore_cores: bool,
    /// Let rows that differ only in `threads` go unmatched (skipped)
    /// instead of refusing the whole diff.
    pub ignore_threads: bool,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            time_pct: 25.0,
            ratio_pct: 25.0,
            count_pct: 0.0,
            per_column: Vec::new(),
            ignore_cores: false,
            ignore_threads: false,
        }
    }
}

/// How a column's values compare: which direction is worse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColumnClass {
    /// Higher is better (speedups, throughputs, reductions).
    Ratio,
    /// Lower is better (wall-clock times).
    Time,
    /// Deterministic count: any drift is suspect.
    Count,
}

fn classify(name: &str) -> ColumnClass {
    if name.starts_with("speedup")
        || name.starts_with("throughput")
        || name.contains("reduction")
        || name.contains("_per_sec")
    {
        ColumnClass::Ratio
    } else if name.ends_with("_ms")
        || name.ends_with("_us")
        || name.ends_with("_ns")
        || name.ends_with("secs")
    {
        ColumnClass::Time
    } else {
        ColumnClass::Count
    }
}

/// One side of a diff, detected from its text shape.
#[derive(Debug, Clone)]
pub enum DiffInput {
    /// A `BENCH_*.json` artifact.
    Bench {
        /// The artifact's `bench` name.
        name: String,
        /// The `cores` the artifact was measured on.
        cores: i64,
        /// The full artifact object.
        root: Json,
    },
    /// A counter snapshot taken from an NDJSON stream.
    Counters {
        /// The snapshot label.
        label: String,
        /// The counters, in snapshot order.
        counters: Vec<(String, i64)>,
    },
}

impl DiffInput {
    /// Detects and parses one input.
    ///
    /// # Errors
    ///
    /// Unparseable text, or a stream without any `counter_snapshot`.
    pub fn load(text: &str) -> Result<DiffInput, String> {
        if let Ok(root) = Json::parse(text.trim()) {
            if root.get("bench").is_some() {
                return Ok(DiffInput::Bench {
                    name: root
                        .get("bench")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    cores: root.get("cores").and_then(Json::as_int).unwrap_or(0),
                    root,
                });
            }
        }
        let events = parse_stream(text).map_err(|e| e.to_string())?;
        let snapshot = events
            .into_iter()
            .rev()
            .find_map(|env| match env.body {
                EventBody::CounterSnapshot { label, counters } => Some((label, counters)),
                _ => None,
            })
            .ok_or_else(|| {
                "input is neither a BENCH_*.json artifact nor a stream with a counter_snapshot"
                    .to_string()
            })?;
        Ok(DiffInput::Counters {
            label: snapshot.0,
            counters: snapshot.1,
        })
    }
}

/// The outcome of one diff.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// One line per detected regression (empty: the gate passes).
    pub regressions: Vec<String>,
    /// Numeric cells compared.
    pub compared: usize,
    /// Rows/columns present on only one side, reported not judged.
    pub skipped: Vec<String>,
}

impl DiffReport {
    /// Whether the gate passes.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the report for terminal output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for note in &self.skipped {
            let _ = writeln!(out, "  (skipped) {note}");
        }
        for regression in &self.regressions {
            let _ = writeln!(out, "  REGRESSION {regression}");
        }
        let _ = writeln!(
            out,
            "{} cells compared, {} skipped, {} regressions",
            self.compared,
            self.skipped.len(),
            self.regressions.len()
        );
        out
    }
}

fn as_f64(value: &Json) -> Option<f64> {
    match value {
        Json::Int(i) => Some(*i as f64),
        Json::Num(x) => Some(*x),
        _ => None,
    }
}

fn threshold_for(name: &str, th: &Thresholds) -> f64 {
    th.per_column
        .iter()
        .find(|(col, _)| col == name)
        .map(|(_, pct)| *pct)
        .unwrap_or(match classify(name) {
            ColumnClass::Ratio => th.ratio_pct,
            ColumnClass::Time => th.time_pct,
            ColumnClass::Count => th.count_pct,
        })
}

/// Compares one numeric cell, pushing a regression line if it trips.
fn compare_cell(
    context: &str,
    name: &str,
    baseline: f64,
    candidate: f64,
    th: &Thresholds,
    report: &mut DiffReport,
) {
    report.compared += 1;
    let pct = threshold_for(name, th);
    let frac = pct / 100.0;
    let tripped = match classify(name) {
        // Times near the clock floor jitter wildly in relative terms; a
        // 5 µs absolute floor keeps sub-threshold noise out of the gate.
        ColumnClass::Time => candidate > baseline * (1.0 + frac) && candidate - baseline > 0.005,
        ColumnClass::Ratio => candidate < baseline * (1.0 - frac),
        ColumnClass::Count => (candidate - baseline).abs() > baseline.abs() * frac + 1e-9,
    };
    if tripped {
        report.regressions.push(format!(
            "{context}{name}: {baseline} → {candidate} (threshold {pct}%)"
        ));
    }
}

/// A row's identity: its string/bool fields plus the structural ints.
fn row_identity(row: &Json) -> Vec<(String, String)> {
    let Json::Obj(pairs) = row else {
        return Vec::new();
    };
    pairs
        .iter()
        .filter(|(k, v)| {
            matches!(v, Json::Str(_) | Json::Bool(_))
                || (matches!(v, Json::Int(_)) && IDENTITY_INTS.contains(&k.as_str()))
        })
        .map(|(k, v)| (k.clone(), v.to_string()))
        .collect()
}

fn identity_label(identity: &[(String, String)]) -> String {
    let parts: Vec<String> = identity
        .iter()
        .map(|(k, v)| format!("{k}={}", v.trim_matches('"')))
        .collect();
    parts.join(" ")
}

fn diff_rows(
    table: &str,
    baseline: &Json,
    candidate: &Json,
    th: &Thresholds,
    report: &mut DiffReport,
) -> Result<(), String> {
    let (Json::Obj(base_pairs), Json::Obj(cand_pairs)) = (baseline, candidate) else {
        return Ok(());
    };
    let context = format!("{table}[{}] ", identity_label(&row_identity(baseline)));
    // Rows may carry their own `cores` (per-row measurement context, as
    // in BENCH_online.json): a machine mismatch there is refused just
    // like an envelope-level one, and never judged as a count drift.
    let row_cores = |row: &Json| row.get("cores").and_then(Json::as_int);
    if let (Some(base_cores), Some(cand_cores)) = (row_cores(baseline), row_cores(candidate)) {
        if base_cores != cand_cores && !th.ignore_cores {
            return Err(format!(
                "refusing cross-cores comparison: {context}measured on {base_cores} core(s), \
                 candidate row on {cand_cores} (pass --ignore-cores to override)"
            ));
        }
    }
    for (name, base_value) in base_pairs {
        let Some(base_num) = as_f64(base_value) else {
            continue;
        };
        if IDENTITY_INTS.contains(&name.as_str()) || name == "cores" {
            continue;
        }
        match cand_pairs.iter().find(|(k, _)| k == name) {
            Some((_, cand_value)) => {
                if let Some(cand_num) = as_f64(cand_value) {
                    compare_cell(&context, name, base_num, cand_num, th, report);
                }
            }
            None => report
                .skipped
                .push(format!("{context}column {name} missing from candidate")),
        }
    }
    Ok(())
}

/// A row identity with `threads` struck out, for detecting rows whose
/// only mismatch is the thread count they were measured at.
fn identity_without_threads(identity: &[(String, String)]) -> Vec<(String, String)> {
    identity
        .iter()
        .filter(|(k, _)| k != "threads")
        .cloned()
        .collect()
}

fn diff_bench(
    base_root: &Json,
    cand_root: &Json,
    th: &Thresholds,
    report: &mut DiffReport,
) -> Result<(), String> {
    let Json::Obj(base_pairs) = base_root else {
        return Ok(());
    };
    for (field, base_value) in base_pairs {
        if field == "cores" || field == "test_mode" || field == "bench" {
            continue;
        }
        let Some(cand_value) = cand_root.get(field) else {
            report
                .skipped
                .push(format!("section {field} missing from candidate"));
            continue;
        };
        match (base_value, cand_value) {
            (Json::Arr(base_rows), Json::Arr(cand_rows)) => {
                for base_row in base_rows {
                    let identity = row_identity(base_row);
                    match cand_rows.iter().find(|r| row_identity(r) == identity) {
                        Some(cand_row) => diff_rows(field, base_row, cand_row, th, report)?,
                        None => {
                            // An unmatched row that *would* match with
                            // `threads` struck from its identity was
                            // measured at a different thread count —
                            // refused like cross-cores, not skipped.
                            let loose = identity_without_threads(&identity);
                            let cross_threads = loose.len() < identity.len()
                                && cand_rows
                                    .iter()
                                    .any(|r| identity_without_threads(&row_identity(r)) == loose);
                            if cross_threads && !th.ignore_threads {
                                return Err(format!(
                                    "refusing cross-thread-count comparison: {field}[{}] only \
                                     matches candidate rows at a different `threads` (pass \
                                     --ignore-threads to skip such rows)",
                                    identity_label(&identity)
                                ));
                            }
                            report.skipped.push(format!(
                                "{field}[{}] missing from candidate",
                                identity_label(&identity)
                            ));
                        }
                    }
                }
            }
            _ => {
                if let (Some(base_num), Some(cand_num)) = (as_f64(base_value), as_f64(cand_value)) {
                    compare_cell("", field, base_num, cand_num, th, report);
                }
            }
        }
    }
    Ok(())
}

fn diff_counters(
    baseline: &[(String, i64)],
    candidate: &[(String, i64)],
    th: &Thresholds,
    report: &mut DiffReport,
) {
    let get =
        |side: &[(String, i64)], name: &str| side.iter().find(|(k, _)| k == name).map(|(_, v)| *v);
    for (name, base) in baseline {
        let cand = get(candidate, name).unwrap_or(0);
        compare_cell("", name, *base as f64, cand as f64, th, report);
    }
    for (name, cand) in candidate {
        if get(baseline, name).is_none() {
            compare_cell("", name, 0.0, *cand as f64, th, report);
        }
    }
}

/// Diffs a candidate against a baseline.
///
/// # Errors
///
/// Mismatched input kinds, different `bench` names, different `cores`
/// (envelope- or row-level, unless [`Thresholds::ignore_cores`]), or a
/// baseline row whose only identity mismatch is its `threads` count
/// (unless [`Thresholds::ignore_threads`]); these are usage errors,
/// distinct from regressions.
pub fn diff(
    baseline: &DiffInput,
    candidate: &DiffInput,
    th: &Thresholds,
) -> Result<DiffReport, String> {
    let mut report = DiffReport::default();
    match (baseline, candidate) {
        (
            DiffInput::Bench {
                name: base_name,
                cores: base_cores,
                root: base_root,
            },
            DiffInput::Bench {
                name: cand_name,
                cores: cand_cores,
                root: cand_root,
            },
        ) => {
            if base_name != cand_name {
                return Err(format!(
                    "refusing to compare different benches: `{base_name}` vs `{cand_name}`"
                ));
            }
            if base_cores != cand_cores && !th.ignore_cores {
                return Err(format!(
                    "refusing cross-cores comparison: baseline measured on {base_cores} \
                     core(s), candidate on {cand_cores} (pass --ignore-cores to override)"
                ));
            }
            diff_bench(base_root, cand_root, th, &mut report)?;
        }
        (
            DiffInput::Counters { counters: base, .. },
            DiffInput::Counters { counters: cand, .. },
        ) => diff_counters(base, cand, th, &mut report),
        _ => {
            return Err(
                "cannot compare a BENCH_*.json artifact against a counter snapshot".to_string(),
            )
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARTIFACT: &str = r#"{"bench":"explorer","cores":1,"test_mode":false,"tm":"fgp","comparison":[{"processes":2,"depth":8,"schedules":256,"dfs_seq_ms":0.5,"executed_schedules":33,"speedup_dfs_vs_naive":4.5}]}"#;

    #[test]
    fn self_diff_is_clean() {
        let input = DiffInput::load(ARTIFACT).expect("load");
        let report = diff(&input, &input, &Thresholds::default()).expect("diff");
        assert!(report.is_clean(), "{report:?}");
        assert!(report.compared > 0);
    }

    #[test]
    fn regressions_trip_per_class() {
        let base = DiffInput::load(ARTIFACT).expect("load");
        // Time ×10, count drifted, speedup halved: three regressions.
        let regressed = ARTIFACT
            .replace("\"dfs_seq_ms\":0.5", "\"dfs_seq_ms\":5.0")
            .replace("\"executed_schedules\":33", "\"executed_schedules\":40")
            .replace(
                "\"speedup_dfs_vs_naive\":4.5",
                "\"speedup_dfs_vs_naive\":2.0",
            );
        let cand = DiffInput::load(&regressed).expect("load");
        let report = diff(&base, &cand, &Thresholds::default()).expect("diff");
        assert_eq!(report.regressions.len(), 3, "{report:?}");
        // An improvement in every class is not a regression.
        let improved = ARTIFACT
            .replace("\"dfs_seq_ms\":0.5", "\"dfs_seq_ms\":0.1")
            .replace(
                "\"speedup_dfs_vs_naive\":4.5",
                "\"speedup_dfs_vs_naive\":9.0",
            );
        let cand = DiffInput::load(&improved).expect("load");
        let report = diff(&base, &cand, &Thresholds::default()).expect("diff");
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn refuses_cross_cores_unless_overridden() {
        let base = DiffInput::load(ARTIFACT).expect("load");
        let other = ARTIFACT.replace("\"cores\":1", "\"cores\":8");
        let cand = DiffInput::load(&other).expect("load");
        assert!(diff(&base, &cand, &Thresholds::default()).is_err());
        let th = Thresholds {
            ignore_cores: true,
            ..Thresholds::default()
        };
        assert!(diff(&base, &cand, &th).expect("diff").is_clean());
    }

    const ONLINE: &str = r#"{"bench":"online","cores":1,"test_mode":false,"pipeline":[{"tm":"tl2","threads":2,"cores":1,"certified_ops_per_sec":4000000.0,"max_lag_epochs":6}]}"#;

    #[test]
    fn refuses_cross_cores_rows_unless_overridden() {
        let base = DiffInput::load(ONLINE).expect("load");
        // Row-level cores differ while the envelope agrees: still refused.
        let other = ONLINE.replace("\"threads\":2,\"cores\":1", "\"threads\":2,\"cores\":8");
        let cand = DiffInput::load(&other).expect("load");
        let err = diff(&base, &cand, &Thresholds::default()).expect_err("must refuse");
        assert!(err.contains("cross-cores"), "{err}");
        // Overridden, the rows compare — but `cores` itself is context,
        // never a count cell, so the 1 → 8 jump is not a regression.
        let th = Thresholds {
            ignore_cores: true,
            ..Thresholds::default()
        };
        assert!(diff(&base, &cand, &th).expect("diff").is_clean());
    }

    #[test]
    fn refuses_cross_thread_count_rows_unless_overridden() {
        let base = DiffInput::load(ONLINE).expect("load");
        // The candidate measured the same tm at a different thread
        // count: contention changed, the numbers are incomparable.
        let rethreaded = ONLINE.replace("\"threads\":2", "\"threads\":4");
        let cand = DiffInput::load(&rethreaded).expect("load");
        let err = diff(&base, &cand, &Thresholds::default()).expect_err("must refuse");
        assert!(err.contains("cross-thread-count"), "{err}");
        assert!(err.contains("--ignore-threads"), "{err}");
        // With the override the unmatched row is skipped, not judged.
        let th = Thresholds {
            ignore_threads: true,
            ..Thresholds::default()
        };
        let report = diff(&base, &cand, &th).expect("diff");
        assert!(report.is_clean(), "{report:?}");
        assert!(!report.skipped.is_empty());
        // A row missing for any *other* reason stays a plain skip.
        let renamed = ONLINE.replace("\"tm\":\"tl2\"", "\"tm\":\"norec\"");
        let cand = DiffInput::load(&renamed).expect("load");
        let report = diff(&base, &cand, &Thresholds::default()).expect("diff");
        assert!(report.is_clean(), "{report:?}");
        assert!(!report.skipped.is_empty());
    }

    #[test]
    fn missing_rows_are_skipped_not_regressions() {
        let base = DiffInput::load(ARTIFACT).expect("load");
        let shallow = r#"{"bench":"explorer","cores":1,"test_mode":true,"tm":"fgp","comparison":[{"processes":2,"depth":4,"schedules":16,"dfs_seq_ms":0.1}]}"#;
        let cand = DiffInput::load(shallow).expect("load");
        let report = diff(&base, &cand, &Thresholds::default()).expect("diff");
        assert!(report.is_clean(), "{report:?}");
        assert!(!report.skipped.is_empty());
    }

    #[test]
    fn counter_snapshots_diff_from_streams() {
        let stream_a =
            "{\"v\":1,\"ev\":\"counter_snapshot\",\"t_ms\":0.1,\"label\":\"fgp\",\"counters\":{\"schedules_executed\":33,\"memo_hits\":5}}\n";
        let stream_b =
            "{\"v\":1,\"ev\":\"counter_snapshot\",\"t_ms\":0.1,\"label\":\"fgp\",\"counters\":{\"schedules_executed\":35,\"memo_hits\":5}}\n";
        let a = DiffInput::load(stream_a).expect("load");
        let b = DiffInput::load(stream_b).expect("load");
        assert!(diff(&a, &a, &Thresholds::default())
            .expect("diff")
            .is_clean());
        let report = diff(&a, &b, &Thresholds::default()).expect("diff");
        assert_eq!(report.regressions.len(), 1, "{report:?}");
        // A per-column waiver admits the drift.
        let th = Thresholds {
            per_column: vec![("schedules_executed".to_string(), 10.0)],
            ..Thresholds::default()
        };
        assert!(diff(&a, &b, &th).expect("diff").is_clean());
    }
}
