//! The typed, forward-compatible parser for NDJSON v1 events.
//!
//! One [`Envelope`] per stream line: the common envelope fields plus a
//! typed [`EventBody`]. Forward compatibility follows the published
//! contract (tm-telemetry module docs): unknown `ev` tags decode as
//! [`EventBody::Unknown`], unknown fields on known tags are simply not
//! looked at, and missing fields decode as zero/empty defaults — only
//! malformed JSON, a broken envelope, or a major-version bump is a
//! [`ParseError`]. The raw object is preserved on the envelope so
//! consumers can reach fields the typed layer does not model.

use tm_telemetry::Json;

/// A stream line the parser could not accept: the 1-based line number
/// and what went wrong. Unknown tags and fields are *not* errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number within the parsed text.
    pub line: usize,
    /// Human-readable description of the defect.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// One parsed stream line: the envelope timestamp, the typed body, and
/// the raw object (for fields the typed layer does not model).
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Milliseconds since the producing handle was created (`t_ms`).
    pub t_ms: f64,
    /// The typed event body.
    pub body: EventBody,
    /// The full raw object as parsed.
    pub raw: Json,
}

/// One step of a `trace` event's witness timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// The scheduled process index.
    pub process: i64,
    /// The operation the step performed (`x.read`, `x.write(v)`,
    /// `tryC`, or `poll` for a delivery attempt on a withheld call).
    pub op: String,
    /// The TM's response, `None` while the call is withheld or a poll
    /// came back empty.
    pub resp: Option<String>,
    /// The canonical state fingerprint *after* the step, as emitted
    /// (16 hex digits); `None` when the TM does not fingerprint.
    pub digest: Option<String>,
}

/// The typed body of one v1 event (see the tm-telemetry module docs
/// for the per-tag field tables).
#[derive(Debug, Clone, PartialEq)]
pub enum EventBody {
    /// A checker run began.
    RunStart {
        /// The producing engine (`"explore"` or `"livecheck"`).
        engine: String,
        /// The TM under check.
        tm: String,
        /// The search depth bound.
        depth: i64,
        /// The process count.
        processes: i64,
    },
    /// A phase span opened.
    PhaseStart {
        /// The producing engine.
        engine: String,
        /// The phase name (e.g. `graph_build`, `lasso_scan`).
        phase: String,
    },
    /// A phase span closed.
    PhaseEnd {
        /// The producing engine.
        engine: String,
        /// The phase name.
        phase: String,
        /// The span duration in microseconds.
        dur_us: i64,
    },
    /// A rate-limited liveness signal with engine-specific gauges.
    Heartbeat {
        /// The producing engine.
        engine: String,
        /// Every gauge field, in emitted order (name → value).
        gauges: Vec<(String, Json)>,
    },
    /// The liveness checker stored a classified lasso.
    LassoFound {
        /// Steps before the cycle.
        prefix_len: i64,
        /// Steps inside the cycle.
        cycle_len: i64,
        /// Starving process indices.
        starving: Vec<i64>,
        /// Parasitic process indices.
        parasitic: Vec<i64>,
    },
    /// The safety explorer found an opacity violation.
    Violation {
        /// The producing engine.
        engine: String,
        /// The violating schedule (process indices).
        schedule: Vec<i64>,
        /// The certifier's human-readable reason.
        detail: String,
    },
    /// A per-step witness timeline, adjacent to the `violation` /
    /// `lasso_found` event it annotates.
    Trace {
        /// The producing engine.
        engine: String,
        /// `"violation"` or `"lasso"`.
        kind: String,
        /// Witness index within the run.
        idx: i64,
        /// The full witness schedule (prefix + cycle for lassos).
        schedule: Vec<i64>,
        /// Lasso only: the step index where the repeated cycle begins.
        cycle_start: Option<i64>,
        /// The replayed per-step timeline.
        steps: Vec<TraceStep>,
    },
    /// A checker exercised a fault transition (once per distinct fault,
    /// at end of run).
    FaultInjected {
        /// The producing engine.
        engine: String,
        /// `"crash"` or `"parasite"`.
        kind: String,
        /// The faulted process index.
        process: i64,
    },
    /// An exploration budget tripped: the run's verdict is partial.
    BudgetExhausted {
        /// The producing engine.
        engine: String,
        /// Which budget tripped, human-readable.
        reason: String,
    },
    /// A run's headline result.
    Verdict {
        /// The producing engine.
        engine: String,
        /// The TM under check.
        tm: String,
        /// The boolean headline (`all_opaque`, `starvation_free`, or
        /// `conserved`), whichever the producer emits. `None` for a
        /// partial verdict — a truncated run makes no claim.
        ok: Option<bool>,
        /// Whether the producer marked the verdict partial (a budget
        /// tripped or a worker died before the search completed).
        partial: bool,
        /// Every non-envelope field, in emitted order.
        fields: Vec<(String, Json)>,
    },
    /// A deterministic counter snapshot.
    CounterSnapshot {
        /// The snapshot label (the TM name in both checkers).
        label: String,
        /// The emitted counters in snapshot order (zero-valued counters
        /// are elided at the source unless pinned).
        counters: Vec<(String, i64)>,
    },
    /// An event tag this consumer does not know — skipped, per the v1
    /// contract.
    Unknown {
        /// The unrecognized tag.
        tag: String,
    },
}

impl EventBody {
    /// The stable tag this body was parsed from.
    pub fn tag(&self) -> &str {
        match self {
            EventBody::RunStart { .. } => "run_start",
            EventBody::PhaseStart { .. } => "phase_start",
            EventBody::PhaseEnd { .. } => "phase_end",
            EventBody::Heartbeat { .. } => "heartbeat",
            EventBody::LassoFound { .. } => "lasso_found",
            EventBody::Violation { .. } => "violation",
            EventBody::FaultInjected { .. } => "fault_injected",
            EventBody::BudgetExhausted { .. } => "budget_exhausted",
            EventBody::Trace { .. } => "trace",
            EventBody::Verdict { .. } => "verdict",
            EventBody::CounterSnapshot { .. } => "counter_snapshot",
            EventBody::Unknown { tag } => tag,
        }
    }
}

/// The envelope fields every event must carry, stripped before typed
/// field extraction.
const ENVELOPE: &[&str] = &["v", "ev", "t_ms"];

fn get_str(obj: &Json, key: &str) -> String {
    obj.get(key)
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string()
}

fn get_int(obj: &Json, key: &str) -> i64 {
    obj.get(key).and_then(Json::as_int).unwrap_or(0)
}

fn get_num(obj: &Json, key: &str) -> Option<f64> {
    match obj.get(key) {
        Some(Json::Num(x)) => Some(*x),
        Some(Json::Int(i)) => Some(*i as f64),
        _ => None,
    }
}

fn get_int_arr(obj: &Json, key: &str) -> Vec<i64> {
    match obj.get(key) {
        Some(Json::Arr(items)) => items.iter().filter_map(Json::as_int).collect(),
        _ => Vec::new(),
    }
}

fn get_bool(obj: &Json, key: &str) -> Option<bool> {
    match obj.get(key) {
        Some(Json::Bool(b)) => Some(*b),
        _ => None,
    }
}

fn non_envelope_fields(obj: &Json) -> Vec<(String, Json)> {
    match obj {
        Json::Obj(pairs) => pairs
            .iter()
            .filter(|(k, _)| !ENVELOPE.contains(&k.as_str()))
            .cloned()
            .collect(),
        _ => Vec::new(),
    }
}

fn trace_steps(obj: &Json) -> Vec<TraceStep> {
    let Some(Json::Arr(items)) = obj.get("steps") else {
        return Vec::new();
    };
    items
        .iter()
        .map(|step| TraceStep {
            process: get_int(step, "p"),
            op: get_str(step, "op"),
            resp: step.get("resp").and_then(Json::as_str).map(str::to_string),
            digest: step
                .get("digest")
                .and_then(Json::as_str)
                .map(str::to_string),
        })
        .collect()
}

/// Parses one NDJSON line into a typed [`Envelope`].
///
/// `line_no` is only used for error reporting (1-based).
///
/// # Errors
///
/// Malformed JSON, a non-object line, a missing envelope field, or a
/// schema version other than 1. Unknown tags and fields are accepted.
pub fn parse_line(line: &str, line_no: usize) -> Result<Envelope, ParseError> {
    let err = |message: String| ParseError {
        line: line_no,
        message,
    };
    let raw = Json::parse(line).map_err(|e| err(format!("not valid JSON ({e})")))?;
    if !matches!(raw, Json::Obj(_)) {
        return Err(err("event line is not a JSON object".to_string()));
    }
    match raw.get("v").and_then(Json::as_int) {
        Some(1) => {}
        Some(v) => return Err(err(format!("unsupported schema version {v} (expected 1)"))),
        None => return Err(err("missing schema version field `v`".to_string())),
    }
    let t_ms = get_num(&raw, "t_ms").ok_or_else(|| err("missing envelope field `t_ms`".into()))?;
    let tag = raw
        .get("ev")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing envelope field `ev`".to_string()))?
        .to_string();

    let body = match tag.as_str() {
        "run_start" => EventBody::RunStart {
            engine: get_str(&raw, "engine"),
            tm: get_str(&raw, "tm"),
            depth: get_int(&raw, "depth"),
            processes: get_int(&raw, "processes"),
        },
        "phase_start" => EventBody::PhaseStart {
            engine: get_str(&raw, "engine"),
            phase: get_str(&raw, "phase"),
        },
        "phase_end" => EventBody::PhaseEnd {
            engine: get_str(&raw, "engine"),
            phase: get_str(&raw, "phase"),
            dur_us: get_int(&raw, "dur_us"),
        },
        "heartbeat" => EventBody::Heartbeat {
            engine: get_str(&raw, "engine"),
            gauges: non_envelope_fields(&raw)
                .into_iter()
                .filter(|(k, _)| k != "engine")
                .collect(),
        },
        "lasso_found" => EventBody::LassoFound {
            prefix_len: get_int(&raw, "prefix_len"),
            cycle_len: get_int(&raw, "cycle_len"),
            starving: get_int_arr(&raw, "starving"),
            parasitic: get_int_arr(&raw, "parasitic"),
        },
        "violation" => EventBody::Violation {
            engine: get_str(&raw, "engine"),
            schedule: get_int_arr(&raw, "schedule"),
            detail: get_str(&raw, "detail"),
        },
        "trace" => EventBody::Trace {
            engine: get_str(&raw, "engine"),
            kind: get_str(&raw, "kind"),
            idx: get_int(&raw, "idx"),
            schedule: get_int_arr(&raw, "schedule"),
            cycle_start: raw.get("cycle_start").and_then(Json::as_int),
            steps: trace_steps(&raw),
        },
        "fault_injected" => EventBody::FaultInjected {
            engine: get_str(&raw, "engine"),
            kind: get_str(&raw, "kind"),
            process: get_int(&raw, "process"),
        },
        "budget_exhausted" => EventBody::BudgetExhausted {
            engine: get_str(&raw, "engine"),
            reason: get_str(&raw, "reason"),
        },
        "verdict" => EventBody::Verdict {
            engine: get_str(&raw, "engine"),
            tm: get_str(&raw, "tm"),
            ok: get_bool(&raw, "all_opaque")
                .or_else(|| get_bool(&raw, "starvation_free"))
                .or_else(|| get_bool(&raw, "conserved")),
            partial: get_bool(&raw, "partial").unwrap_or(false),
            fields: non_envelope_fields(&raw),
        },
        "counter_snapshot" => EventBody::CounterSnapshot {
            label: get_str(&raw, "label"),
            counters: match raw.get("counters") {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .filter_map(|(k, v)| v.as_int().map(|i| (k.clone(), i)))
                    .collect(),
                _ => Vec::new(),
            },
        },
        _ => EventBody::Unknown { tag },
    };
    Ok(Envelope { t_ms, body, raw })
}

/// Parses a whole stream (blank lines skipped), stopping at the first
/// malformed line.
///
/// # Errors
///
/// The first [`ParseError`] encountered; see [`parse_line`].
pub fn parse_stream(text: &str) -> Result<Vec<Envelope>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(line, i + 1)?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_run_start() {
        let env = parse_line(
            r#"{"v":1,"ev":"run_start","t_ms":0.5,"engine":"explore","tm":"fgp","depth":8,"processes":2}"#,
            1,
        )
        .expect("parse");
        assert_eq!(env.t_ms, 0.5);
        assert_eq!(
            env.body,
            EventBody::RunStart {
                engine: "explore".into(),
                tm: "fgp".into(),
                depth: 8,
                processes: 2,
            }
        );
    }

    // The forward-compatibility contract (tm-telemetry module docs):
    // consumers must ignore unknown `ev` tags and unknown fields on
    // known tags within a major version. This is the pin.
    #[test]
    fn unknown_tags_and_fields_are_skipped_not_errors() {
        // An unknown tag decodes as Unknown, never an error.
        let env = parse_line(
            r#"{"v":1,"ev":"quantum_leap","t_ms":1.0,"surprise":[1,2,3]}"#,
            1,
        )
        .expect("unknown tag must parse");
        assert_eq!(
            env.body,
            EventBody::Unknown {
                tag: "quantum_leap".into()
            }
        );

        // Unknown fields on a known tag are ignored; the known fields
        // still decode.
        let env = parse_line(
            r#"{"v":1,"ev":"verdict","t_ms":2.0,"engine":"explore","tm":"tl2","all_opaque":true,"schedules":9,"flux_capacitance":0.9,"shiny":{"nested":true}}"#,
            2,
        )
        .expect("unknown fields must parse");
        match env.body {
            EventBody::Verdict { engine, tm, ok, .. } => {
                assert_eq!(engine, "explore");
                assert_eq!(tm, "tl2");
                assert_eq!(ok, Some(true));
            }
            other => panic!("expected a verdict, got {other:?}"),
        }

        // A whole stream mixing both still parses end to end.
        let stream = concat!(
            "{\"v\":1,\"ev\":\"run_start\",\"t_ms\":0.1,\"engine\":\"livecheck\",\"tm\":\"fgp\",\"depth\":4,\"processes\":2,\"extra\":null}\n",
            "{\"v\":1,\"ev\":\"from_the_future\",\"t_ms\":0.2}\n",
            "\n",
            "{\"v\":1,\"ev\":\"heartbeat\",\"t_ms\":0.3,\"engine\":\"livecheck\",\"states\":7,\"new_gauge\":\"ok\"}\n",
        );
        let events = parse_stream(stream).expect("mixed stream must parse");
        assert_eq!(events.len(), 3);
        assert_eq!(events[1].body.tag(), "from_the_future");
        match &events[2].body {
            EventBody::Heartbeat { gauges, .. } => {
                // Unknown gauges are carried through generically.
                assert!(gauges.iter().any(|(k, _)| k == "new_gauge"));
            }
            other => panic!("expected a heartbeat, got {other:?}"),
        }
    }

    #[test]
    fn version_bumps_and_broken_envelopes_are_errors() {
        assert!(parse_line(r#"{"v":2,"ev":"run_start","t_ms":0.1}"#, 1).is_err());
        assert!(parse_line(r#"{"ev":"run_start","t_ms":0.1}"#, 1).is_err());
        assert!(parse_line(r#"{"v":1,"t_ms":0.1}"#, 1).is_err());
        assert!(parse_line(r#"{"v":1,"ev":"run_start"}"#, 1).is_err());
        assert!(parse_line("[1,2,3]", 1).is_err());
        assert!(parse_line("not json", 1).is_err());
    }
}
