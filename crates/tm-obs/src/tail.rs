//! Live progress: folds a stream into single-line heartbeat gauges.
//!
//! Each event folds into a [`TailState`]; heartbeats produce
//! [`TailLine::Progress`] (meant for `\r`-overwriting in place),
//! run starts and verdicts produce [`TailLine::Keep`] (meant to stay
//! on screen). Gauges render generically in emitted order, so new
//! producer gauges appear without a consumer change; the dedup hit
//! rate is derived from the last `counter_snapshot`'s memo counters
//! when one has streamed.

use tm_telemetry::Json;

use crate::event::{Envelope, EventBody};

/// What the tail renderer carries between events.
#[derive(Debug, Clone, Default)]
pub struct TailState {
    engine: String,
    tm: String,
    memo_hits: Option<(i64, i64)>,
}

/// One rendered tail line.
#[derive(Debug, Clone, PartialEq)]
pub enum TailLine {
    /// A transient progress line: overwrite the previous one (`\r`).
    Progress(String),
    /// A line that should persist (run boundary or verdict).
    Keep(String),
}

fn render_gauge(value: &Json) -> String {
    match value {
        Json::Num(x) => format!("{x:.0}"),
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

/// Folds one event into the state, returning a line to display if the
/// event warrants one.
pub fn fold(env: &Envelope, state: &mut TailState) -> Option<TailLine> {
    match &env.body {
        EventBody::RunStart {
            engine,
            tm,
            depth,
            processes,
        } => {
            state.engine = engine.clone();
            state.tm = tm.clone();
            state.memo_hits = None;
            Some(TailLine::Keep(format!(
                "▶ {engine}/{tm} depth={depth} processes={processes}"
            )))
        }
        EventBody::Heartbeat { gauges, .. } => {
            let mut parts: Vec<String> = gauges
                .iter()
                .map(|(name, value)| format!("{name} {}", render_gauge(value)))
                .collect();
            if let Some((hits, misses)) = state.memo_hits {
                let total = hits + misses;
                if total > 0 {
                    parts.push(format!("dedup {:.1}%", 100.0 * hits as f64 / total as f64));
                }
            }
            Some(TailLine::Progress(format!(
                "[{}/{}] {}",
                state.engine,
                state.tm,
                parts.join(" · ")
            )))
        }
        EventBody::CounterSnapshot { counters, .. } => {
            let get = |name: &str| {
                counters
                    .iter()
                    .find(|(k, _)| k == name)
                    .map_or(0, |(_, v)| *v)
            };
            state.memo_hits = Some((get("memo_hits"), get("memo_misses")));
            None
        }
        EventBody::FaultInjected { kind, process, .. } => Some(TailLine::Keep(format!(
            "⚡ {}/{} {kind} p{process}",
            state.engine, state.tm
        ))),
        EventBody::BudgetExhausted { reason, .. } => Some(TailLine::Keep(format!(
            "⏳ {}/{} partial: {reason}",
            state.engine, state.tm
        ))),
        EventBody::Verdict { ok, fields, .. } => {
            let headline = match ok {
                Some(true) => "✓",
                Some(false) => "✗",
                None => "•",
            };
            let rest: Vec<String> = fields
                .iter()
                .filter(|(k, _)| k != "engine" && k != "tm")
                .map(|(k, v)| format!("{k}={}", render_gauge(v)))
                .collect();
            Some(TailLine::Keep(format!(
                "{headline} {}/{} {}",
                state.engine,
                state.tm,
                rest.join(" ")
            )))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_stream;

    #[test]
    fn heartbeats_render_as_progress_with_dedup_rate() {
        let stream = concat!(
            "{\"v\":1,\"ev\":\"run_start\",\"t_ms\":0.1,\"engine\":\"livecheck\",\"tm\":\"tl2\",\"depth\":12,\"processes\":2}\n",
            "{\"v\":1,\"ev\":\"heartbeat\",\"t_ms\":0.2,\"engine\":\"livecheck\",\"states\":100,\"frontier\":12,\"steps\":321,\"states_per_sec\":1234.5}\n",
            "{\"v\":1,\"ev\":\"counter_snapshot\",\"t_ms\":0.3,\"label\":\"tl2\",\"counters\":{\"memo_hits\":30,\"memo_misses\":70}}\n",
            "{\"v\":1,\"ev\":\"heartbeat\",\"t_ms\":0.4,\"engine\":\"livecheck\",\"states\":200,\"frontier\":9,\"steps\":642,\"states_per_sec\":2100.0}\n",
            "{\"v\":1,\"ev\":\"verdict\",\"t_ms\":0.5,\"engine\":\"livecheck\",\"tm\":\"tl2\",\"starvation_free\":true,\"states\":200}\n",
        );
        let mut state = TailState::default();
        let lines: Vec<TailLine> = parse_stream(stream)
            .expect("parse")
            .iter()
            .filter_map(|e| fold(e, &mut state))
            .collect();
        assert_eq!(lines.len(), 4);
        assert!(matches!(&lines[0], TailLine::Keep(l) if l.contains("livecheck/tl2")));
        assert!(
            matches!(&lines[1], TailLine::Progress(l) if l.contains("states 100") && l.contains("frontier 12")),
            "{lines:?}"
        );
        // After the snapshot, the derived dedup hit rate appears.
        assert!(
            matches!(&lines[2], TailLine::Progress(l) if l.contains("dedup 30.0%")),
            "{lines:?}"
        );
        assert!(matches!(&lines[3], TailLine::Keep(l) if l.starts_with('✓')));
    }
}
