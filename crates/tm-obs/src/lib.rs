//! The consumer side of the tm-telemetry NDJSON v1 stream.
//!
//! `tm-telemetry` defines the wire format both checkers emit (one JSON
//! object per line; see that crate's module docs for the versioned
//! schema); this crate is the other half of the contract — a typed,
//! **forward-compatible** parser plus the aggregations every consumer
//! of the stream needs:
//!
//! * [`event`] — [`event::parse_stream`] turns raw NDJSON into typed
//!   [`event::Envelope`]s, ignoring unknown `ev` tags and unknown
//!   fields on known tags exactly as the v1 contract requires (only a
//!   major-version bump or malformed JSON is an error);
//! * [`summary`] — per-run reports (phase durations, counter tables,
//!   witness counts) and a TM × config verdict matrix for catalogue
//!   sweeps; the counter tables are the stream's `counter_snapshot`
//!   events verbatim, so they cross-check byte-identical against the
//!   engines' in-memory [`tm_telemetry::Snapshot`]s;
//! * [`tail`] — folds a live stream into single-line progress rendered
//!   from heartbeat gauges (steps/sec, frontier size, dedup hit rate);
//! * [`explain`] — renders `violation` / `lasso_found` events and their
//!   adjacent `trace` events as annotated per-step witness timelines;
//! * [`diff`] — threshold-based regression comparison of two counter
//!   snapshots or two `BENCH_*.json` artifacts (CI's perf gate; refuses
//!   cross-`cores` comparisons).
//!
//! The `tm-obs` binary exposes each module as a subcommand (`summary`,
//! `tail`, `explain`, `diff`). New consumers — the ROADMAP's portfolio
//! checking service above all — should build on [`event`] rather than
//! re-parsing lines by hand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod event;
pub mod explain;
pub mod summary;
pub mod tail;

pub use event::{parse_line, parse_stream, Envelope, EventBody, ParseError};
