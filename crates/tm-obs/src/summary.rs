//! Stream aggregation: per-run reports and the verdict matrix.
//!
//! A *run* is everything between one `run_start` and the next; both
//! checkers emit their events strictly in run order on one handle, so
//! this grouping is exact. The counter table of a run is the last
//! `counter_snapshot` the run emitted, **verbatim** — the engines emit
//! snapshots from their own in-memory [`tm_telemetry::Snapshot`], so a
//! summary's totals cross-check byte-identical against the engine
//! (asserted by the `obs_consumer` integration suite).

use tm_telemetry::Json;

use crate::event::{parse_stream, EventBody, ParseError};

/// The headline result of one run, as streamed in its `verdict` event.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictSummary {
    /// The boolean headline (`all_opaque` / `starvation_free`), when
    /// the engine emitted one.
    pub ok: Option<bool>,
    /// Whether the engine marked the verdict partial (a budget tripped
    /// or a worker died): the run closed without a headline claim.
    pub partial: bool,
    /// Every non-envelope verdict field, in emitted order.
    pub fields: Vec<(String, Json)>,
}

/// Everything one run of one engine streamed, aggregated.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// The producing engine (`"explore"` / `"livecheck"` / custom).
    pub engine: String,
    /// The TM under check.
    pub tm: String,
    /// The depth bound the run announced.
    pub depth: i64,
    /// The process count the run announced.
    pub processes: i64,
    /// Completed phase spans within the run: name → duration (µs).
    pub phases: Vec<(String, i64)>,
    /// Heartbeats observed.
    pub heartbeats: usize,
    /// `violation` events observed.
    pub violations: usize,
    /// `lasso_found` events observed.
    pub lassos: usize,
    /// `trace` events observed.
    pub traces: usize,
    /// `fault_injected` events observed (distinct fault transitions the
    /// run exercised).
    pub faults: usize,
    /// The reason of the run's `budget_exhausted` event, when one
    /// streamed: the search was truncated and the verdict is partial.
    pub exhausted: Option<String>,
    /// The label of the run's last `counter_snapshot`.
    pub counter_label: Option<String>,
    /// The run's last `counter_snapshot`, verbatim (snapshot order,
    /// zero-valued counters elided at the source unless pinned).
    pub counters: Vec<(String, i64)>,
    /// The run's verdict, when one streamed.
    pub verdict: Option<VerdictSummary>,
}

impl RunSummary {
    fn new(engine: String, tm: String, depth: i64, processes: i64) -> Self {
        RunSummary {
            engine,
            tm,
            depth,
            processes,
            phases: Vec::new(),
            heartbeats: 0,
            violations: 0,
            lassos: 0,
            traces: 0,
            faults: 0,
            exhausted: None,
            counter_label: None,
            counters: Vec::new(),
            verdict: None,
        }
    }
}

/// A whole stream, aggregated into runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamSummary {
    /// The runs, in stream order.
    pub runs: Vec<RunSummary>,
    /// Events with tags this consumer does not know (skipped).
    pub unknown_events: usize,
    /// Events seen before the first `run_start` (attached to no run).
    pub orphan_events: usize,
}

impl StreamSummary {
    /// Whether every run closed with a verdict (and at least one ran).
    pub fn all_runs_have_verdicts(&self) -> bool {
        !self.runs.is_empty() && self.runs.iter().all(|r| r.verdict.is_some())
    }

    /// Whether some run closed with a *partial* verdict (budget tripped
    /// or worker died) — gates reject these unless `--allow-partial`.
    pub fn has_partial_runs(&self) -> bool {
        self.runs
            .iter()
            .any(|r| r.exhausted.is_some() || r.verdict.as_ref().is_some_and(|v| v.partial))
    }
}

/// Aggregates a raw NDJSON stream into a [`StreamSummary`].
///
/// # Errors
///
/// Propagates the first [`ParseError`] (malformed line or version
/// bump); unknown tags and fields are counted, not rejected.
pub fn summarize(text: &str) -> Result<StreamSummary, ParseError> {
    let mut out = StreamSummary::default();
    for env in parse_stream(text)? {
        let current = out.runs.last_mut();
        match env.body {
            EventBody::RunStart {
                engine,
                tm,
                depth,
                processes,
            } => out.runs.push(RunSummary::new(engine, tm, depth, processes)),
            EventBody::Unknown { .. } => out.unknown_events += 1,
            body => match current {
                None => out.orphan_events += 1,
                Some(run) => match body {
                    EventBody::PhaseEnd { phase, dur_us, .. } => run.phases.push((phase, dur_us)),
                    EventBody::Heartbeat { .. } => run.heartbeats += 1,
                    EventBody::Violation { .. } => run.violations += 1,
                    EventBody::LassoFound { .. } => run.lassos += 1,
                    EventBody::Trace { .. } => run.traces += 1,
                    EventBody::FaultInjected { .. } => run.faults += 1,
                    EventBody::BudgetExhausted { reason, .. } => run.exhausted = Some(reason),
                    EventBody::CounterSnapshot { label, counters } => {
                        run.counter_label = Some(label);
                        run.counters = counters;
                    }
                    EventBody::Verdict {
                        ok,
                        partial,
                        fields,
                        ..
                    } => {
                        run.verdict = Some(VerdictSummary {
                            ok,
                            partial,
                            fields,
                        })
                    }
                    // phase_start carries no data beyond its matching
                    // phase_end; run_start/unknown were handled above.
                    _ => {}
                },
            },
        }
    }
    Ok(out)
}

fn render_json_short(value: &Json) -> String {
    match value {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

/// Renders one summary as a human-readable report: one block per run,
/// then (for multi-run sweeps) the TM × config verdict matrix.
pub fn render(summary: &StreamSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, run) in summary.runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "run {i}: {} {} depth={} processes={}",
            run.engine, run.tm, run.depth, run.processes
        );
        match &run.verdict {
            Some(v) => {
                let fields: Vec<String> = v
                    .fields
                    .iter()
                    .filter(|(k, _)| k != "engine" && k != "tm")
                    .map(|(k, val)| format!("{k}={}", render_json_short(val)))
                    .collect();
                let _ = writeln!(out, "  verdict: {}", fields.join(" "));
            }
            None => {
                let _ = writeln!(out, "  verdict: (none — run did not close)");
            }
        }
        if let Some(reason) = &run.exhausted {
            let _ = writeln!(out, "  partial: {reason}");
        }
        if !run.phases.is_empty() {
            let phases: Vec<String> = run
                .phases
                .iter()
                .map(|(name, us)| format!("{name}={us}us"))
                .collect();
            let _ = writeln!(out, "  phases: {}", phases.join(" "));
        }
        let faults = if run.faults > 0 {
            format!(", {} faults", run.faults)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  events: {} heartbeats, {} violations, {} lassos, {} traces{faults}",
            run.heartbeats, run.violations, run.lassos, run.traces
        );
        if !run.counters.is_empty() {
            let _ = writeln!(
                out,
                "  counters ({}):",
                run.counter_label.as_deref().unwrap_or("unlabelled")
            );
            let width = run
                .counters
                .iter()
                .map(|(name, _)| name.len())
                .max()
                .unwrap_or(0);
            for (name, value) in &run.counters {
                let _ = writeln!(out, "    {name:<width$}  {value}");
            }
        }
    }
    if summary.runs.len() > 1 {
        out.push('\n');
        out.push_str(&render_matrix(summary));
    }
    if summary.unknown_events > 0 {
        let _ = writeln!(
            out,
            "\n({} events with unknown tags skipped)",
            summary.unknown_events
        );
    }
    out
}

/// Renders the TM × config verdict matrix: one row per TM, one column
/// per distinct (engine, processes, depth) configuration, `✓` for an
/// affirmative headline verdict (opaque / starvation-free), `✗` for a
/// negative one, `?` for a run without a boolean verdict.
pub fn render_matrix(summary: &StreamSummary) -> String {
    use std::fmt::Write as _;
    let mut configs: Vec<(String, i64, i64)> = Vec::new();
    let mut tms: Vec<String> = Vec::new();
    for run in &summary.runs {
        let config = (run.engine.clone(), run.processes, run.depth);
        if !configs.contains(&config) {
            configs.push(config);
        }
        if !tms.contains(&run.tm) {
            tms.push(run.tm.clone());
        }
    }
    let headers: Vec<String> = configs
        .iter()
        .map(|(engine, p, d)| format!("{engine} p{p} d{d}"))
        .collect();
    let tm_width = tms.iter().map(String::len).max().unwrap_or(2).max(2);
    let mut out = String::new();
    let _ = write!(out, "{:<tm_width$}", "tm");
    for header in &headers {
        let _ = write!(out, "  {header}");
    }
    out.push('\n');
    for tm in &tms {
        let _ = write!(out, "{tm:<tm_width$}");
        for (config, header) in configs.iter().zip(&headers) {
            let cell = summary
                .runs
                .iter()
                .find(|r| r.tm == *tm && (r.engine.clone(), r.processes, r.depth) == *config)
                .map_or(" ", |r| match r.verdict.as_ref().and_then(|v| v.ok) {
                    Some(true) => "✓",
                    Some(false) => "✗",
                    None => "?",
                });
            let _ = write!(out, "  {cell:<width$}", width = header.len());
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const STREAM: &str = concat!(
        "{\"v\":1,\"ev\":\"run_start\",\"t_ms\":0.1,\"engine\":\"livecheck\",\"tm\":\"fgp\",\"depth\":10,\"processes\":2}\n",
        "{\"v\":1,\"ev\":\"phase_start\",\"t_ms\":0.2,\"engine\":\"livecheck\",\"phase\":\"search\"}\n",
        "{\"v\":1,\"ev\":\"lasso_found\",\"t_ms\":0.3,\"prefix_len\":2,\"cycle_len\":2,\"starving\":[1],\"parasitic\":[]}\n",
        "{\"v\":1,\"ev\":\"phase_end\",\"t_ms\":0.4,\"engine\":\"livecheck\",\"phase\":\"search\",\"dur_us\":200}\n",
        "{\"v\":1,\"ev\":\"heartbeat\",\"t_ms\":0.5,\"engine\":\"livecheck\",\"states\":17,\"steps\":64}\n",
        "{\"v\":1,\"ev\":\"counter_snapshot\",\"t_ms\":0.6,\"label\":\"fgp\",\"counters\":{\"graph_nodes\":17,\"steps_executed\":64}}\n",
        "{\"v\":1,\"ev\":\"verdict\",\"t_ms\":0.7,\"engine\":\"livecheck\",\"tm\":\"fgp\",\"starvation_free\":false,\"states\":17}\n",
        "{\"v\":1,\"ev\":\"run_start\",\"t_ms\":0.8,\"engine\":\"livecheck\",\"tm\":\"global-lock\",\"depth\":10,\"processes\":2}\n",
        "{\"v\":1,\"ev\":\"verdict\",\"t_ms\":0.9,\"engine\":\"livecheck\",\"tm\":\"global-lock\",\"starvation_free\":true,\"states\":12}\n",
    );

    #[test]
    fn groups_events_into_runs() {
        let summary = summarize(STREAM).expect("summarize");
        assert_eq!(summary.runs.len(), 2);
        assert!(summary.all_runs_have_verdicts());
        let fgp = &summary.runs[0];
        assert_eq!(fgp.tm, "fgp");
        assert_eq!(fgp.lassos, 1);
        assert_eq!(fgp.heartbeats, 1);
        assert_eq!(fgp.phases, vec![("search".to_string(), 200)]);
        assert_eq!(
            fgp.counters,
            vec![
                ("graph_nodes".to_string(), 17),
                ("steps_executed".to_string(), 64)
            ]
        );
        assert_eq!(fgp.verdict.as_ref().and_then(|v| v.ok), Some(false));
        assert_eq!(
            summary.runs[1].verdict.as_ref().and_then(|v| v.ok),
            Some(true)
        );
    }

    #[test]
    fn matrix_marks_verdicts_per_tm() {
        let summary = summarize(STREAM).expect("summarize");
        let matrix = render_matrix(&summary);
        assert!(matrix.contains("livecheck p2 d10"), "{matrix}");
        let fgp_row = matrix.lines().find(|l| l.starts_with("fgp")).unwrap();
        assert!(fgp_row.contains('✗'), "{matrix}");
        let gl_row = matrix
            .lines()
            .find(|l| l.starts_with("global-lock"))
            .unwrap();
        assert!(gl_row.contains('✓'), "{matrix}");
    }
}
