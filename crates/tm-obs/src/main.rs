//! The `tm-obs` binary: consumer-side tooling for the tm-telemetry
//! NDJSON v1 stream.
//!
//! ```text
//! tm-obs summary [FILE|-] [--require-verdicts] [--allow-partial] [--expect-runs N]
//! tm-obs tail    [FILE|-] [--follow]
//! tm-obs explain [FILE|-]
//! tm-obs diff    [--against] BASELINE CANDIDATE
//!                [--time-threshold PCT] [--ratio-threshold PCT]
//!                [--count-threshold PCT] [--threshold COL=PCT]
//!                [--ignore-cores] [--ignore-threads]
//! ```
//!
//! Exit codes: 0 success, 1 gate failure (regression detected or an
//! expectation not met), 2 usage or parse error.

use std::io::{BufRead, Read as _, Write as _};
use std::process::ExitCode;

use tm_obs::{diff, explain, summary, tail};

const USAGE: &str = "usage: tm-obs <summary|tail|explain|diff> [args]  (tm-obs help for details)";

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(text)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("tm-obs: {message}");
    ExitCode::from(2)
}

fn cmd_summary(args: &[String]) -> ExitCode {
    let mut path = "-".to_string();
    let mut require_verdicts = false;
    let mut allow_partial = false;
    let mut expect_runs: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--require-verdicts" => require_verdicts = true,
            "--allow-partial" => allow_partial = true,
            "--expect-runs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => expect_runs = Some(n),
                None => return fail("--expect-runs needs a number"),
            },
            other => path = other.to_string(),
        }
    }
    let text = match read_input(&path) {
        Ok(text) => text,
        Err(e) => return fail(&e),
    };
    let stream = match summary::summarize(&text) {
        Ok(stream) => stream,
        Err(e) => return fail(&e.to_string()),
    };
    print!("{}", summary::render(&stream));
    if let Some(expected) = expect_runs {
        if stream.runs.len() != expected {
            eprintln!(
                "tm-obs: expected {expected} runs, stream has {}",
                stream.runs.len()
            );
            return ExitCode::from(1);
        }
    }
    if require_verdicts && !stream.all_runs_have_verdicts() {
        let missing = stream.runs.iter().filter(|r| r.verdict.is_none()).count();
        eprintln!(
            "tm-obs: {} of {} runs closed without a verdict",
            missing,
            stream.runs.len()
        );
        return ExitCode::from(1);
    }
    // A partial verdict (budget tripped, worker died) is a verdict that
    // makes no claim: the gate rejects it unless explicitly allowed.
    if require_verdicts && !allow_partial && stream.has_partial_runs() {
        let partial = stream
            .runs
            .iter()
            .filter(|r| r.exhausted.is_some() || r.verdict.as_ref().is_some_and(|v| v.partial))
            .count();
        eprintln!(
            "tm-obs: {} of {} runs closed with a partial verdict (rerun with --allow-partial to accept)",
            partial,
            stream.runs.len()
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn print_tail_line(line: &tail::TailLine, width: &mut usize) {
    let mut out = std::io::stdout().lock();
    match line {
        tail::TailLine::Progress(text) => {
            let _ = write!(out, "\r{text:<pad$}", pad = *width);
            *width = text.len();
        }
        tail::TailLine::Keep(text) => {
            let _ = writeln!(out, "\r{text:<pad$}", pad = *width);
            *width = 0;
        }
    }
    let _ = out.flush();
}

fn cmd_tail(args: &[String]) -> ExitCode {
    let mut path = "-".to_string();
    let mut follow = false;
    for arg in args {
        match arg.as_str() {
            "--follow" => follow = true,
            other => path = other.to_string(),
        }
    }
    let mut state = tail::TailState::default();
    let mut width = 0usize;
    let mut line_no = 0usize;
    let mut feed = |chunk: &str| {
        for line in chunk.lines() {
            line_no += 1;
            if line.trim().is_empty() {
                continue;
            }
            if let Ok(env) = tm_obs::parse_line(line, line_no) {
                if let Some(rendered) = tail::fold(&env, &mut state) {
                    print_tail_line(&rendered, &mut width);
                }
            }
        }
    };
    if path == "-" {
        // Stdin is naturally "followed": reads block until the producer
        // writes or closes the pipe.
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(line) => feed(&line),
                Err(_) => break,
            }
        }
    } else {
        let mut consumed = 0usize;
        loop {
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => return fail(&format!("reading {path}: {e}")),
            };
            // Feed only whole lines beyond what was already consumed.
            let complete = text.rfind('\n').map_or(0, |i| i + 1);
            if complete > consumed {
                feed(&text[consumed..complete]);
                consumed = complete;
            }
            if !follow {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(200));
        }
    }
    println!();
    ExitCode::SUCCESS
}

fn cmd_explain(args: &[String]) -> ExitCode {
    let path = args.first().map_or("-", String::as_str);
    let text = match read_input(path) {
        Ok(text) => text,
        Err(e) => return fail(&e),
    };
    match explain::explain(&text) {
        Ok(report) if report.is_empty() => {
            println!("(no trace events in the stream — run the producer with TM_TELEMETRY set)");
            ExitCode::SUCCESS
        }
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut th = diff::Thresholds::default();
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let pct_flag =
            |it: &mut std::slice::Iter<String>| it.next().and_then(|v| v.parse::<f64>().ok());
        match arg.as_str() {
            "--against" => match it.next() {
                Some(path) => paths.insert(0, path.clone()),
                None => return fail("--against needs a baseline path"),
            },
            "--time-threshold" => match pct_flag(&mut it) {
                Some(pct) => th.time_pct = pct,
                None => return fail("--time-threshold needs a percentage"),
            },
            "--ratio-threshold" => match pct_flag(&mut it) {
                Some(pct) => th.ratio_pct = pct,
                None => return fail("--ratio-threshold needs a percentage"),
            },
            "--count-threshold" => match pct_flag(&mut it) {
                Some(pct) => th.count_pct = pct,
                None => return fail("--count-threshold needs a percentage"),
            },
            "--threshold" => match it.next().and_then(|v| {
                let (col, pct) = v.split_once('=')?;
                Some((col.to_string(), pct.parse::<f64>().ok()?))
            }) {
                Some(over) => th.per_column.push(over),
                None => return fail("--threshold needs COLUMN=PCT"),
            },
            "--ignore-cores" => th.ignore_cores = true,
            "--ignore-threads" => th.ignore_threads = true,
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return fail("diff needs a baseline and a candidate (tm-obs diff [--against] A B)");
    };
    let load = |path: &str| -> Result<diff::DiffInput, String> {
        diff::DiffInput::load(&read_input(path)?).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    match diff::diff(&baseline, &candidate, &th) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                println!("OK: {candidate_path} within thresholds of {baseline_path}");
                ExitCode::SUCCESS
            } else {
                println!("FAIL: {candidate_path} regressed against {baseline_path}");
                ExitCode::from(1)
            }
        }
        Err(e) => fail(&e),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "summary" => cmd_summary(rest),
            "tail" => cmd_tail(rest),
            "explain" => cmd_explain(rest),
            "diff" => cmd_diff(rest),
            "help" | "--help" | "-h" => {
                println!("{USAGE}");
                ExitCode::SUCCESS
            }
            other => fail(&format!("unknown subcommand `{other}`\n{USAGE}")),
        },
        None => fail(USAGE),
    }
}
