//! Witness timelines: `violation` / `lasso_found` events and their
//! adjacent `trace` events rendered as annotated per-step tables.
//!
//! The producers emit each `trace` event immediately after the witness
//! event it annotates (see the tm-telemetry module docs), so this
//! renderer carries the most recent witness context forward and prints
//! one block per trace: run header, the witness annotation (violation
//! detail, or the lasso's starving/parasitic classification), then the
//! replayed per-step timeline — step index, process, operation, TM
//! response, and the canonical state digest after the step. For lassos
//! the cycle suffix is marked: every state digest inside it recurs
//! forever under the repeated schedule.

use crate::event::{parse_stream, EventBody, ParseError, TraceStep};

/// The witness event most recently seen, carried to its trace.
enum Pending {
    Violation {
        detail: String,
    },
    Lasso {
        starving: Vec<i64>,
        parasitic: Vec<i64>,
    },
}

fn render_procs(ps: &[i64]) -> String {
    if ps.is_empty() {
        "none".to_string()
    } else {
        let items: Vec<String> = ps.iter().map(|p| format!("p{p}")).collect();
        items.join(", ")
    }
}

fn render_steps(out: &mut String, steps: &[TraceStep], cycle_start: Option<usize>) {
    use std::fmt::Write as _;
    let op_width = steps.iter().map(|s| s.op.len()).max().unwrap_or(2).max(2);
    let _ = writeln!(
        out,
        "    step  p  {:<op_width$}  {:<8}  digest",
        "op", "resp"
    );
    for (i, step) in steps.iter().enumerate() {
        if Some(i) == cycle_start {
            let _ = writeln!(out, "    ↻ cycle (repeats forever):");
        }
        let _ = writeln!(
            out,
            "    {i:>4}  {}  {:<op_width$}  {:<8}  {}",
            step.process,
            step.op,
            step.resp.as_deref().unwrap_or("·"),
            step.digest.as_deref().unwrap_or("-"),
        );
    }
}

/// Renders every witness timeline in the stream.
///
/// Returns a human-readable report, one block per `trace` event; an
/// empty string when the stream carries no traces.
///
/// # Errors
///
/// Propagates the first [`ParseError`] (malformed line or version
/// bump).
pub fn explain(text: &str) -> Result<String, ParseError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut run = ("?".to_string(), "?".to_string());
    let mut pending: Option<Pending> = None;
    for env in parse_stream(text)? {
        match env.body {
            EventBody::RunStart { engine, tm, .. } => {
                run = (engine, tm);
                pending = None;
            }
            EventBody::Violation { detail, .. } => pending = Some(Pending::Violation { detail }),
            EventBody::LassoFound {
                starving,
                parasitic,
                ..
            } => {
                pending = Some(Pending::Lasso {
                    starving,
                    parasitic,
                })
            }
            EventBody::Trace {
                kind,
                idx,
                schedule,
                cycle_start,
                steps,
                ..
            } => {
                let schedule_text: Vec<String> = schedule.iter().map(ToString::to_string).collect();
                let _ = writeln!(
                    out,
                    "━ {}/{} · {kind} #{idx} · schedule [{}]",
                    run.0,
                    run.1,
                    schedule_text.join(",")
                );
                match pending.take() {
                    Some(Pending::Violation { detail }) => {
                        let _ = writeln!(out, "    detail: {detail}");
                    }
                    Some(Pending::Lasso {
                        starving,
                        parasitic,
                    }) => {
                        let _ = writeln!(
                            out,
                            "    starving: {} · parasitic: {}",
                            render_procs(&starving),
                            render_procs(&parasitic)
                        );
                    }
                    None => {}
                }
                let cycle = cycle_start.and_then(|c| usize::try_from(c).ok());
                render_steps(&mut out, &steps, cycle);
                if cycle.is_some() {
                    let _ = writeln!(
                        out,
                        "    (the cycle's end state digest equals its start: the suffix repeats)"
                    );
                }
                out.push('\n');
            }
            _ => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_violation_and_lasso_blocks() {
        let stream = concat!(
            "{\"v\":1,\"ev\":\"run_start\",\"t_ms\":0.1,\"engine\":\"explore\",\"tm\":\"literal-fgp\",\"depth\":8,\"processes\":2}\n",
            "{\"v\":1,\"ev\":\"violation\",\"t_ms\":0.2,\"engine\":\"explore\",\"schedule\":[0,1],\"detail\":\"no serialization\"}\n",
            "{\"v\":1,\"ev\":\"trace\",\"t_ms\":0.3,\"engine\":\"explore\",\"kind\":\"violation\",\"idx\":0,\"schedule\":[0,1],\"steps\":[{\"p\":0,\"op\":\"x.read\",\"resp\":\"0\",\"digest\":\"00ff\"},{\"p\":1,\"op\":\"x.write(5)\",\"resp\":null,\"digest\":\"11ee\"}]}\n",
            "{\"v\":1,\"ev\":\"run_start\",\"t_ms\":0.4,\"engine\":\"livecheck\",\"tm\":\"fgp\",\"depth\":8,\"processes\":2}\n",
            "{\"v\":1,\"ev\":\"lasso_found\",\"t_ms\":0.5,\"prefix_len\":1,\"cycle_len\":1,\"starving\":[1],\"parasitic\":[]}\n",
            "{\"v\":1,\"ev\":\"trace\",\"t_ms\":0.6,\"engine\":\"livecheck\",\"kind\":\"lasso\",\"idx\":0,\"schedule\":[0,0],\"cycle_start\":1,\"steps\":[{\"p\":0,\"op\":\"tryC\",\"resp\":\"C\",\"digest\":\"aa\"},{\"p\":0,\"op\":\"tryC\",\"resp\":\"C\",\"digest\":\"aa\"}]}\n",
        );
        let report = explain(stream).expect("explain");
        assert!(
            report.contains("explore/literal-fgp · violation #0"),
            "{report}"
        );
        assert!(report.contains("detail: no serialization"), "{report}");
        assert!(report.contains("x.write(5)"), "{report}");
        assert!(report.contains("livecheck/fgp · lasso #0"), "{report}");
        assert!(report.contains("starving: p1"), "{report}");
        assert!(report.contains("↻ cycle"), "{report}");
        // A withheld response renders as a placeholder, not "null".
        assert!(report.contains('·'), "{report}");
    }
}
