//! Lasso-shaped infinite histories.
//!
//! The paper's liveness definitions quantify over *infinite* histories.
//! Every infinite history appearing in the paper — the figures, the
//! adversary outcomes, the counterexamples — is **eventually periodic**:
//! it has the form `prefix · cycle^ω`. On that class, all of the paper's
//! "finitely many events of kind k" / "infinitely many events of kind k"
//! predicates are exactly decidable, which makes the liveness
//! classification in [`mod@crate::classify`] exact rather than heuristic
//! (DESIGN.md, D1).

use core::fmt;
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use tm_core::{History, Invocation, ProcessId, WellFormednessError};

/// An eventually periodic infinite history `prefix · cycle^ω`.
///
/// # Examples
///
/// ```
/// use tm_core::{HistoryBuilder, ProcessId, TVarId};
/// use tm_liveness::InfiniteHistory;
///
/// let (p1, x) = (ProcessId(0), TVarId(0));
/// // p1 commits a transaction over and over: prefix is empty, the cycle is
/// // one committed transaction.
/// let cycle = HistoryBuilder::new()
///     .read(p1, x, 0)
///     .write_ok(p1, x, 0)
///     .commit(p1)
///     .build()?;
/// let h = InfiniteHistory::new(tm_core::History::new(), cycle)?;
/// assert!(h.cycle_projection_nonempty(p1));
/// # Ok::<(), tm_liveness::LassoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfiniteHistory {
    prefix: History,
    cycle: History,
}

/// Why a `(prefix, cycle)` pair does not describe a well-formed infinite
/// history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LassoError {
    /// The cycle is empty, so the history would be finite.
    EmptyCycle,
    /// `prefix · cycle` is not a well-formed finite history.
    IllFormed(WellFormednessError),
    /// The per-process pending-invocation state after `prefix` differs from
    /// the state after `prefix · cycle`, so the unrolling
    /// `prefix · cycle · cycle · …` would be ill-formed.
    InconsistentCycle {
        /// A process whose pending state differs at the cycle boundary.
        process: ProcessId,
    },
}

impl fmt::Display for LassoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LassoError::EmptyCycle => write!(f, "cycle must be non-empty"),
            LassoError::IllFormed(e) => write!(f, "prefix·cycle is ill-formed: {e}"),
            LassoError::InconsistentCycle { process } => write!(
                f,
                "pending-invocation state of {process} differs across the cycle boundary"
            ),
        }
    }
}

impl std::error::Error for LassoError {}

impl From<WellFormednessError> for LassoError {
    fn from(e: WellFormednessError) -> Self {
        LassoError::IllFormed(e)
    }
}

fn pending_map(h: &History) -> BTreeMap<ProcessId, Option<Invocation>> {
    h.processes()
        .into_iter()
        .map(|p| (p, h.pending_invocation(p)))
        .collect()
}

impl InfiniteHistory {
    /// Creates a validated lasso history.
    ///
    /// # Errors
    ///
    /// * [`LassoError::EmptyCycle`] if `cycle` has no events;
    /// * [`LassoError::IllFormed`] if `prefix · cycle` violates `Σ_k`;
    /// * [`LassoError::InconsistentCycle`] if unrolling the cycle twice
    ///   would violate `Σ_k`.
    pub fn new(prefix: History, cycle: History) -> Result<Self, LassoError> {
        if cycle.is_empty() {
            return Err(LassoError::EmptyCycle);
        }
        let once = prefix.concat(&cycle);
        once.validate()?;
        // If `prefix·cycle` is well-formed but `prefix·cycle·cycle` is not,
        // the second repetition failed at the cycle boundary: the cycle
        // leaves some process in a pending state it cannot re-enter with.
        // (Conversely, if both validate, the per-process pending state after
        // one and two repetitions must agree, so every further unrolling is
        // well-formed by induction.)
        let twice = once.concat(&cycle);
        if let Err(e) = twice.validate() {
            let process = match e {
                WellFormednessError::ResponseWithoutInvocation { event, .. }
                | WellFormednessError::InvocationWhilePending { event, .. } => event.process,
                WellFormednessError::MismatchedResponse { process, .. } => process,
            };
            return Err(LassoError::InconsistentCycle { process });
        }
        debug_assert_eq!(pending_map(&once), pending_map(&twice));
        Ok(InfiniteHistory { prefix, cycle })
    }

    /// The finite prefix before the periodic part.
    pub fn prefix(&self) -> &History {
        &self.prefix
    }

    /// The period: the event sequence repeated forever.
    pub fn cycle(&self) -> &History {
        &self.cycle
    }

    /// The set of processes with at least one event in the history.
    pub fn processes(&self) -> std::collections::BTreeSet<ProcessId> {
        let mut set = self.prefix.processes();
        set.extend(self.cycle.processes());
        set
    }

    /// Whether `process` has at least one event in the history (the paper's
    /// histories implicitly range over participating processes; see
    /// DESIGN.md on absent processes).
    pub fn participates(&self, process: ProcessId) -> bool {
        self.prefix.project(process).len() + self.cycle.project(process).len() > 0
    }

    /// Whether `process` has events inside the periodic part — i.e. whether
    /// `H|pk` is infinite.
    pub fn cycle_projection_nonempty(&self, process: ProcessId) -> bool {
        !self.cycle.project(process).is_empty()
    }

    /// Materializes the finite history `prefix · cycle^n`.
    pub fn unroll(&self, n: usize) -> History {
        let mut h = self.prefix.clone();
        for _ in 0..n {
            h.extend(self.cycle.iter().copied());
        }
        h
    }

    /// Number of commit events `C_k` of `process` per cycle repetition.
    pub fn commits_per_cycle(&self, process: ProcessId) -> usize {
        self.cycle.commit_count(process)
    }

    /// Number of abort events `A_k` of `process` per cycle repetition.
    pub fn aborts_per_cycle(&self, process: ProcessId) -> usize {
        self.cycle.abort_count(process)
    }

    /// Number of `tryC_k` invocations of `process` per cycle repetition.
    pub fn try_commits_per_cycle(&self, process: ProcessId) -> usize {
        self.cycle.try_commit_count(process)
    }

    /// Renders `prefix · cycle · cycle · …` lanes with the cycle marked.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.prefix.is_empty() {
            out.push_str("prefix:\n");
            out.push_str(&self.prefix.render_lanes());
        }
        out.push_str("cycle (repeats forever):\n");
        out.push_str(&self.cycle.render_lanes());
        out
    }
}

impl fmt::Display for InfiniteHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} · ({})^ω", self.prefix, self.cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{Event, HistoryBuilder, TVarId};

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);

    fn commit_cycle(p: ProcessId) -> History {
        HistoryBuilder::new()
            .read(p, X, 0)
            .commit(p)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_cycle_rejected() {
        assert_eq!(
            InfiniteHistory::new(History::new(), History::new()),
            Err(LassoError::EmptyCycle)
        );
    }

    #[test]
    fn well_formed_lasso_accepted() {
        let h = InfiniteHistory::new(History::new(), commit_cycle(P1)).unwrap();
        assert_eq!(h.commits_per_cycle(P1), 1);
        assert!(h.participates(P1));
        assert!(!h.participates(P2));
    }

    #[test]
    fn ill_formed_concatenation_rejected() {
        // Prefix leaves a pending read; cycle starts with another invocation
        // by the same process.
        let prefix = HistoryBuilder::new()
            .invoke(P1, Invocation::Read(X))
            .build()
            .unwrap();
        let cycle = HistoryBuilder::new()
            .invoke(P1, Invocation::Read(X))
            .build_unchecked();
        assert!(matches!(
            InfiniteHistory::new(prefix, cycle),
            Err(LassoError::IllFormed(_))
        ));
    }

    #[test]
    fn inconsistent_cycle_boundary_rejected() {
        // Cycle contains a lone invocation: fine after the empty prefix, but
        // the second unrolling would stack two pending invocations.
        let cycle = History::from_events_unchecked(vec![Event::read(P1, X)]);
        assert!(matches!(
            InfiniteHistory::new(History::new(), cycle),
            Err(LassoError::InconsistentCycle { .. })
        ));
    }

    #[test]
    fn mismatched_response_in_concatenation_rejected() {
        // The cycle answers the prefix's pending read with `Ok` (a write
        // acknowledgement): `prefix · cycle` violates Σ_k with a
        // MismatchedResponse, surfacing as IllFormed.
        let prefix = HistoryBuilder::new()
            .invoke(P1, Invocation::Read(X))
            .build()
            .unwrap();
        let cycle = History::from_events_unchecked(vec![Event::ok(P1)]);
        assert!(matches!(
            InfiniteHistory::new(prefix, cycle),
            Err(LassoError::IllFormed(
                tm_core::WellFormednessError::MismatchedResponse { .. }
            ))
        ));
    }

    #[test]
    fn response_without_invocation_rejected() {
        let cycle = History::from_events_unchecked(vec![Event::committed(P1)]);
        assert!(matches!(
            InfiniteHistory::new(History::new(), cycle),
            Err(LassoError::IllFormed(
                tm_core::WellFormednessError::ResponseWithoutInvocation { .. }
            ))
        ));
    }

    #[test]
    fn inconsistent_cycle_names_the_offending_process() {
        // P2's lone invocation stacks at the boundary; the error must
        // name P2, not P1 (whose projection is fine).
        let prefix = HistoryBuilder::new().read(P1, X, 0).build().unwrap();
        let cycle = History::from_events_unchecked(vec![Event::read(P2, X)]);
        assert_eq!(
            InfiniteHistory::new(prefix, cycle),
            Err(LassoError::InconsistentCycle { process: P2 })
        );
    }

    #[test]
    fn open_transaction_across_cycle_is_allowed() {
        // A parasitic process keeps a transaction open forever with
        // completed ops: no pending invocation at the boundary.
        let cycle = HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P1, X, 1)
            .build()
            .unwrap();
        let h = InfiniteHistory::new(History::new(), cycle).unwrap();
        assert!(h.cycle_projection_nonempty(P1));
        assert_eq!(h.try_commits_per_cycle(P1), 0);
    }

    #[test]
    fn unroll_materializes_prefix_plus_n_cycles() {
        let prefix = HistoryBuilder::new().read(P2, X, 0).build().unwrap();
        let h = InfiniteHistory::new(prefix, commit_cycle(P1)).unwrap();
        let u0 = h.unroll(0);
        assert_eq!(u0.len(), h.prefix().len());
        let u3 = h.unroll(3);
        assert_eq!(u3.len(), h.prefix().len() + 3 * h.cycle().len());
        assert!(u3.is_well_formed());
        assert_eq!(u3.commit_count(P1), 3);
    }

    #[test]
    fn per_cycle_counters() {
        let cycle = HistoryBuilder::new()
            .read(P1, X, 0)
            .abort_on_try_commit(P1)
            .read(P1, X, 0)
            .commit(P1)
            .build()
            .unwrap();
        let h = InfiniteHistory::new(History::new(), cycle).unwrap();
        assert_eq!(h.commits_per_cycle(P1), 1);
        assert_eq!(h.aborts_per_cycle(P1), 1);
        assert_eq!(h.try_commits_per_cycle(P1), 2);
    }

    #[test]
    fn processes_unions_prefix_and_cycle() {
        let prefix = HistoryBuilder::new().read(P2, X, 0).build().unwrap();
        let h = InfiniteHistory::new(prefix, commit_cycle(P1)).unwrap();
        let procs = h.processes();
        assert!(procs.contains(&P1) && procs.contains(&P2));
    }

    #[test]
    fn render_mentions_cycle() {
        let h = InfiniteHistory::new(History::new(), commit_cycle(P1)).unwrap();
        assert!(h.render().contains("cycle"));
    }
}
