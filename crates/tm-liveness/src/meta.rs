//! Meta-classification of TM-liveness properties (paper §5.1).
//!
//! Theorem 2 quantifies over classes of TM-liveness properties:
//!
//! * a property `L` is **nonblocking** iff every `H ∈ L` satisfies: if some
//!   process runs alone in `H`, that process makes progress (Definition 4);
//! * a property `L` is **biprogressing** iff every `H ∈ L` satisfies: if at
//!   least two processes are correct, at least two make progress
//!   (Definition 5).
//!
//! Properties are sets (usually infinite), so the class memberships are
//! `∀`-statements; this module provides the per-history *conditions* (which
//! are decidable on lassos) and corpus-level checkers that refute or
//! support a class membership on any finite corpus of histories.

use crate::classify::{correct_processes, makes_progress, progressing_processes, runs_alone};
use crate::lasso::InfiniteHistory;
use crate::properties::{LocalProgress, TmLivenessProperty};

/// The per-history condition of Definition 4: if some process runs alone
/// in `h`, it makes progress.
pub fn satisfies_nonblocking_condition(h: &InfiniteHistory) -> bool {
    h.processes()
        .into_iter()
        .filter(|&p| runs_alone(h, p))
        .all(|p| makes_progress(h, p))
}

/// The per-history condition of Definition 5: if at least two processes
/// are correct in `h`, at least two make progress.
pub fn satisfies_biprogressing_condition(h: &InfiniteHistory) -> bool {
    correct_processes(h).len() < 2 || progressing_processes(h).len() >= 2
}

/// Searches `corpus` for a counterexample to "`property` is nonblocking":
/// a history in the property that violates the nonblocking condition.
/// Returns the first counterexample, or `None` if the corpus supports the
/// class membership.
pub fn nonblocking_counterexample<'a, P: TmLivenessProperty + ?Sized>(
    property: &P,
    corpus: &'a [InfiniteHistory],
) -> Option<&'a InfiniteHistory> {
    corpus
        .iter()
        .find(|h| property.contains(h) && !satisfies_nonblocking_condition(h))
}

/// Searches `corpus` for a counterexample to "`property` is biprogressing".
pub fn biprogressing_counterexample<'a, P: TmLivenessProperty + ?Sized>(
    property: &P,
    corpus: &'a [InfiniteHistory],
) -> Option<&'a InfiniteHistory> {
    corpus
        .iter()
        .find(|h| property.contains(h) && !satisfies_biprogressing_condition(h))
}

/// Checks Definition 1's lower bound on `corpus`: every history satisfying
/// local progress must satisfy `property` (`L_local ⊆ L`). Returns the
/// first violation.
pub fn weakening_counterexample<'a, P: TmLivenessProperty + ?Sized>(
    property: &P,
    corpus: &'a [InfiniteHistory],
) -> Option<&'a InfiniteHistory> {
    corpus
        .iter()
        .find(|h| LocalProgress.contains(h) && !property.contains(h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use crate::properties::{GlobalProgress, SoloProgress};

    #[test]
    fn figure_conditions_match_paper_claims() {
        // "Figure 5, Figure 6, and Figure 7 show infinite histories which
        // ensure nonblocking TM-liveness properties while Figure 14 shows
        // an infinite history which does not ensure any nonblocking
        // TM-liveness property."
        assert!(satisfies_nonblocking_condition(&figures::figure_5()));
        assert!(satisfies_nonblocking_condition(&figures::figure_6()));
        assert!(satisfies_nonblocking_condition(&figures::figure_7()));
        assert!(!satisfies_nonblocking_condition(&figures::figure_14()));

        // "Figure 5 and Figure 7 show infinite histories which ensure a
        // biprogressing property while Figure 6 shows an infinite history
        // which does not ensure any biprogressing property."
        assert!(satisfies_biprogressing_condition(&figures::figure_5()));
        assert!(satisfies_biprogressing_condition(&figures::figure_7()));
        assert!(!satisfies_biprogressing_condition(&figures::figure_6()));
    }

    #[test]
    fn local_progress_is_nonblocking_and_biprogressing_on_corpus() {
        let corpus = figures::all_figures();
        assert!(nonblocking_counterexample(&LocalProgress, &corpus).is_none());
        assert!(biprogressing_counterexample(&LocalProgress, &corpus).is_none());
    }

    #[test]
    fn global_progress_is_not_biprogressing() {
        // Figure 6 ∈ L_global but violates the biprogressing condition.
        let corpus = figures::all_figures();
        let cex = biprogressing_counterexample(&GlobalProgress, &corpus);
        assert!(cex.is_some());
    }

    #[test]
    fn solo_progress_is_nonblocking_but_not_biprogressing() {
        let corpus = figures::all_figures();
        assert!(nonblocking_counterexample(&SoloProgress, &corpus).is_none());
        assert!(biprogressing_counterexample(&SoloProgress, &corpus).is_some());
    }

    #[test]
    fn global_progress_is_blocking_on_adversary_outcomes() {
        // Figure 9's outcome (p2 runs alone and starves) is NOT in
        // L_global — a global-progress TM never produces it. Verify the
        // condition detects the blocking shape.
        assert!(!satisfies_nonblocking_condition(&figures::figure_9()));
        assert!(!GlobalProgress.contains(&figures::figure_9()));
    }

    #[test]
    fn all_example_properties_contain_local_progress_on_corpus() {
        let corpus = figures::all_figures();
        assert!(weakening_counterexample(&GlobalProgress, &corpus).is_none());
        assert!(weakening_counterexample(&SoloProgress, &corpus).is_none());
        assert!(weakening_counterexample(&LocalProgress, &corpus).is_none());
    }
}
