//! TM-liveness properties over infinite histories.
//!
//! This crate implements Section 3 ("Liveness of a TM") and the property
//! classes of Section 5.1 of *On the Liveness of Transactional Memory*
//! (PODC 2012):
//!
//! * [`InfiniteHistory`] — eventually periodic (`prefix · cycle^ω`) infinite
//!   histories, on which all of the paper's "infinitely often" predicates
//!   are exactly decidable;
//! * [`classify`](classify()) — the process classes of Figure 2 (crashed, parasitic,
//!   pending, starving, correct, faulty) and derived predicates
//!   (makes-progress, runs-alone);
//! * [`LocalProgress`], [`GlobalProgress`], [`SoloProgress`] — the paper's
//!   three TM-liveness properties behind the [`TmLivenessProperty`] trait;
//! * [`meta`] — the *nonblocking* and *biprogressing* property classes of
//!   Theorem 2, as per-history conditions plus corpus-level counterexample
//!   search;
//! * [`scc`] — certified cycle-existence verdicts (starving / parasitic /
//!   blocked / progressing) over explored state graphs, by per-process
//!   Tarjan SCC passes with an embarrassingly parallel rayon entry point,
//!   plus fairness-filtered variants ([`certify_fair_cycles`]) that keep
//!   only cycles scheduling every live process infinitely often and
//!   separate crash-induced from TM-induced starvation;
//! * [`figures`] — the paper's infinite-history figures (5, 6, 7, 9, 10,
//!   12, 13, 14) as ready-made lassos.
//!
//! ```
//! use tm_liveness::{figures, GlobalProgress, LocalProgress, TmLivenessProperty};
//!
//! let h = figures::figure_6();
//! assert!(GlobalProgress.contains(&h));
//! assert!(!LocalProgress.contains(&h)); // p2 starves
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod detect;
pub mod figures;
pub mod lasso;
pub mod meta;
pub mod properties;
pub mod scc;

pub use classify::{
    classify, classify_all, correct_processes, is_correct, is_crashed, is_faulty, is_parasitic,
    is_pending, is_starving, makes_progress, progressing_processes, runs_alone, ProcessClass,
};
pub use detect::{detect_lasso, lasso_from_cycle};
pub use lasso::{InfiniteHistory, LassoError};
pub use meta::{satisfies_biprogressing_condition, satisfies_nonblocking_condition};
pub use properties::{
    GlobalProgress, LocalProgress, PriorityProgress, SoloProgress, TmLivenessProperty,
};
pub use scc::{
    certify_cycles, certify_cycles_parallel, certify_fair_cycles, CycleEdge, FairProcessVerdicts,
    ProcessCycleVerdicts,
};
