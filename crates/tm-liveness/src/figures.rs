//! The paper's infinite-history figures as lasso histories.
//!
//! Values: the paper's adversary histories increment t-variable values
//! forever (`w(v+1)`), which is not eventually periodic; the lasso versions
//! below use the binary domain (`w(1-v)`), which preserves every
//! classification and every legality argument (what matters is only that
//! the written value differs from the value read). Where a figure depicts
//! responses no opaque TM could give (e.g. Figure 14's aborting reader
//! observing never-committed values), we substitute the nearest consistent
//! responses — liveness classification depends only on event *kinds*, never
//! on values. Both simplifications are recorded in DESIGN.md.

use tm_core::{History, HistoryBuilder, ProcessId, TVarId};

use crate::lasso::InfiniteHistory;

const P1: ProcessId = ProcessId(0);
const P2: ProcessId = ProcessId(1);
const P3: ProcessId = ProcessId(2);
const X: TVarId = TVarId(0);

/// Figure 5: two processes, one t-variable; **both** processes commit
/// infinitely often (each also suffers an abort per round). Ensures local
/// progress — and therefore every TM-liveness property.
pub fn figure_5() -> InfiniteHistory {
    let cycle = HistoryBuilder::new()
        // p1 commits: x 0 → 1.
        .read(P1, X, 0)
        .write_ok(P1, X, 1)
        .commit(P1)
        // p2's first attempt aborts.
        .read(P2, X, 1)
        .write_ok(P2, X, 0)
        .abort_on_try_commit(P2)
        // p2 commits: x 1 → 0.
        .read(P2, X, 1)
        .write_ok(P2, X, 0)
        .commit(P2)
        // p1's second attempt aborts.
        .read(P1, X, 0)
        .write_ok(P1, X, 1)
        .abort_on_try_commit(P1)
        .build()
        .expect("figure 5 cycle is well-formed");
    InfiniteHistory::new(History::new(), cycle).expect("figure 5 lasso is valid")
}

/// Figure 6: two correct processes; only `p1` makes progress while `p2` is
/// aborted forever (starving). Ensures global progress but not local
/// progress.
pub fn figure_6() -> InfiniteHistory {
    let cycle = HistoryBuilder::new()
        .read(P1, X, 0)
        .write_ok(P1, X, 1)
        .commit(P1)
        .read(P2, X, 1)
        .write_ok(P2, X, 0)
        .abort_on_try_commit(P2)
        .read(P1, X, 1)
        .write_ok(P1, X, 0)
        .commit(P1)
        .read(P2, X, 0)
        .write_ok(P2, X, 1)
        .abort_on_try_commit(P2)
        .build()
        .expect("figure 6 cycle is well-formed");
    InfiniteHistory::new(History::new(), cycle).expect("figure 6 lasso is valid")
}

/// Figure 7: `p1` crashes after one read; `p2` commits once and then turns
/// parasitic (an endless transaction of reads and writes, never invoking
/// `tryC`); `p3` runs alone and commits infinitely often. Ensures solo
/// progress.
pub fn figure_7() -> InfiniteHistory {
    let prefix = HistoryBuilder::new()
        .read(P1, X, 0) // p1 then crashes
        .write_ok(P2, X, 1)
        .commit(P2) // p2's first transaction commits: x = 1
        .build()
        .expect("figure 7 prefix is well-formed");
    let cycle = HistoryBuilder::new()
        // p2, parasitic: endless transaction (own-write shadowed reads).
        .read(P2, X, 1)
        .write_ok(P2, X, 0)
        // p3 commits: x 1 → 0.
        .read(P3, X, 1)
        .write_ok(P3, X, 0)
        .commit(P3)
        .read(P2, X, 0)
        .write_ok(P2, X, 1)
        // p3 commits: x 0 → 1.
        .read(P3, X, 0)
        .write_ok(P3, X, 1)
        .commit(P3)
        .build()
        .expect("figure 7 cycle is well-formed");
    InfiniteHistory::new(prefix, cycle).expect("figure 7 lasso is valid")
}

/// Figure 14: like Figure 7, but `p3`'s transactions are all aborted: the
/// sole correct process runs alone yet starves. Violates solo progress —
/// and hence every nonblocking TM-liveness property.
pub fn figure_14() -> InfiniteHistory {
    let prefix = HistoryBuilder::new()
        .read(P1, X, 0) // p1 then crashes
        .write_ok(P2, X, 1)
        .commit(P2) // x = 1
        .build()
        .expect("figure 14 prefix is well-formed");
    let cycle = HistoryBuilder::new()
        // p2, parasitic.
        .read(P2, X, 1)
        .write_ok(P2, X, 0)
        // p3 aborted (committed state stays x = 1).
        .read(P3, X, 1)
        .write_ok(P3, X, 0)
        .abort_on_try_commit(P3)
        .read(P2, X, 0)
        .write_ok(P2, X, 1)
        .read(P3, X, 1)
        .write_ok(P3, X, 0)
        .abort_on_try_commit(P3)
        .build()
        .expect("figure 14 cycle is well-formed");
    InfiniteHistory::new(prefix, cycle).expect("figure 14 lasso is valid")
}

/// Figure 9 (and Figure 12's shape): the Algorithm 1 outcome in which `p1`
/// crashes after its first read and the (hypothetical local-progress) TM
/// keeps aborting `p2` forever. `p2` is correct, runs alone and starves:
/// local progress is violated.
pub fn figure_9() -> InfiniteHistory {
    let prefix = HistoryBuilder::new().read(P1, X, 0).build().unwrap();
    let cycle = HistoryBuilder::new().read_abort(P2, X).build().unwrap();
    InfiniteHistory::new(prefix, cycle).expect("figure 9 lasso is valid")
}

/// Figure 10 (and Figure 13's shape): the Algorithm 1/2 outcome in which
/// `p1` does not crash: `p2` commits every round while `p1` is aborted
/// every round. `p1` starves: local progress is violated (global progress
/// holds). Binary-domain rendering of the paper's incrementing values.
pub fn figure_10() -> InfiniteHistory {
    let cycle = HistoryBuilder::new()
        // Round with v = 0.
        .read(P1, X, 0)
        .read(P2, X, 0)
        .write_ok(P2, X, 1)
        .commit(P2)
        .write_abort(P1, X, 1)
        // Round with v = 1.
        .read(P1, X, 1)
        .read(P2, X, 1)
        .write_ok(P2, X, 0)
        .commit(P2)
        .write_abort(P1, X, 0)
        .build()
        .expect("figure 10 cycle is well-formed");
    InfiniteHistory::new(History::new(), cycle).expect("figure 10 lasso is valid")
}

/// Figure 12: the Algorithm 2 outcome in which `p1` turns parasitic
/// (reading forever, never invoking `tryC`) and the TM keeps aborting `p2`.
/// `p2` is correct, runs alone and starves.
pub fn figure_12() -> InfiniteHistory {
    let cycle = HistoryBuilder::new()
        .read(P1, X, 0)
        .read_abort(P2, X)
        .build()
        .unwrap();
    InfiniteHistory::new(History::new(), cycle).expect("figure 12 lasso is valid")
}

/// Figure 13: the Algorithm 2 outcome in which `p1` is not parasitic —
/// same classification as [`figure_10`].
pub fn figure_13() -> InfiniteHistory {
    figure_10()
}

/// A history whose participants are all faulty (`p1` crashes, `p2` is
/// parasitic): every TM-liveness property holds vacuously.
pub fn crash_only_lasso() -> InfiniteHistory {
    let prefix = HistoryBuilder::new().read(P1, X, 0).build().unwrap();
    let cycle = HistoryBuilder::new().read(P2, X, 0).build().unwrap();
    InfiniteHistory::new(prefix, cycle).expect("crash-only lasso is valid")
}

/// All infinite-history figures, for corpus-style tests.
pub fn all_figures() -> Vec<InfiniteHistory> {
    vec![
        figure_5(),
        figure_6(),
        figure_7(),
        figure_9(),
        figure_10(),
        figure_12(),
        figure_13(),
        figure_14(),
        crash_only_lasso(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, ProcessClass};

    #[test]
    fn figure_5_both_processes_progress() {
        let h = figure_5();
        assert_eq!(classify(&h, P1), ProcessClass::Progressing);
        assert_eq!(classify(&h, P2), ProcessClass::Progressing);
    }

    #[test]
    fn figure_6_p2_starves() {
        let h = figure_6();
        assert_eq!(classify(&h, P1), ProcessClass::Progressing);
        assert_eq!(classify(&h, P2), ProcessClass::Starving);
    }

    #[test]
    fn figure_7_classes_match_caption() {
        let h = figure_7();
        assert_eq!(classify(&h, P1), ProcessClass::Crashed);
        assert_eq!(classify(&h, P2), ProcessClass::Parasitic);
        assert_eq!(classify(&h, P3), ProcessClass::Progressing);
        assert!(crate::classify::runs_alone(&h, P3));
    }

    #[test]
    fn figure_14_p3_starves_while_running_alone() {
        let h = figure_14();
        assert_eq!(classify(&h, P1), ProcessClass::Crashed);
        assert_eq!(classify(&h, P2), ProcessClass::Parasitic);
        assert_eq!(classify(&h, P3), ProcessClass::Starving);
        assert!(crate::classify::runs_alone(&h, P3));
    }

    #[test]
    fn figure_9_p2_starves_alone() {
        let h = figure_9();
        assert_eq!(classify(&h, P1), ProcessClass::Crashed);
        assert_eq!(classify(&h, P2), ProcessClass::Starving);
    }

    #[test]
    fn figure_10_p1_starves_p2_progresses() {
        let h = figure_10();
        assert_eq!(classify(&h, P1), ProcessClass::Starving);
        assert_eq!(classify(&h, P2), ProcessClass::Progressing);
    }

    #[test]
    fn figure_12_p1_parasitic_p2_starves() {
        let h = figure_12();
        assert_eq!(classify(&h, P1), ProcessClass::Parasitic);
        assert_eq!(classify(&h, P2), ProcessClass::Starving);
    }

    #[test]
    fn all_figures_are_valid_lassos() {
        // Construction already validates; additionally unroll and check
        // well-formedness of a deep prefix.
        for h in all_figures() {
            let u = h.unroll(5);
            assert!(u.is_well_formed());
        }
    }

    #[test]
    fn figure_unrollings_are_opaque_where_expected() {
        // Figures 5, 6, 7, 9, 10, 14 as constructed use consistent values,
        // so their finite unrollings are opaque (checked via the fast
        // commit-order certifier, falling back to the exact checker).
        for (name, h) in [
            ("fig5", figure_5()),
            ("fig6", figure_6()),
            ("fig7", figure_7()),
            ("fig9", figure_9()),
            ("fig10", figure_10()),
            ("fig14", figure_14()),
        ] {
            assert!(
                tm_safety::check_opacity_auto(&h.unroll(4)).holds(),
                "{name} unrolling not opaque"
            );
        }
    }
}
