//! TM-liveness properties (paper §3).
//!
//! A TM-liveness property is a set `L` of infinite histories with
//! `L_local ⊆ L ⊆ H_TM` (Definition 1). We represent a property by its
//! membership predicate on lasso histories ([`TmLivenessProperty`]) and
//! provide the paper's three examples:
//!
//! * [`LocalProgress`] — every correct process makes progress (the TM
//!   analogue of wait-freedom; Theorem 1 proves it impossible with opacity);
//! * [`GlobalProgress`] — at least one correct process makes progress
//!   (ensured together with opacity by the `Fgp` automaton, Theorem 3);
//! * [`SoloProgress`] — every correct process that runs alone makes
//!   progress (ensured by obstruction-free TMs in parasitic-free systems).

use crate::classify::{correct_processes, makes_progress, progressing_processes, runs_alone};
use crate::lasso::InfiniteHistory;

/// A TM-liveness property, represented by its membership predicate.
///
/// Implementations must be weakenings of local progress: every history
/// satisfying [`LocalProgress`] must satisfy the property (Definition 1).
/// [`crate::meta::weakening_counterexample`] searches a corpus for
/// violations of this containment.
pub trait TmLivenessProperty {
    /// Human-readable name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Whether the infinite history belongs to the property (Definition 2).
    fn contains(&self, h: &InfiniteHistory) -> bool;
}

/// Local progress: every correct process makes progress, or the history has
/// no correct process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalProgress;

impl TmLivenessProperty for LocalProgress {
    fn name(&self) -> &'static str {
        "local progress"
    }

    fn contains(&self, h: &InfiniteHistory) -> bool {
        correct_processes(h)
            .into_iter()
            .all(|p| makes_progress(h, p))
    }
}

/// Global progress: at least one correct process makes progress, or the
/// history has no correct process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalProgress;

impl TmLivenessProperty for GlobalProgress {
    fn name(&self) -> &'static str {
        "global progress"
    }

    fn contains(&self, h: &InfiniteHistory) -> bool {
        let correct = correct_processes(h);
        correct.is_empty() || !progressing_processes(h).is_empty()
    }
}

/// Solo progress: a process that runs alone makes progress, or no process
/// runs alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoloProgress;

impl TmLivenessProperty for SoloProgress {
    fn name(&self) -> &'static str {
        "solo progress"
    }

    fn contains(&self, h: &InfiniteHistory) -> bool {
        h.processes()
            .into_iter()
            .filter(|&p| runs_alone(h, p))
            .all(|p| makes_progress(h, p))
    }
}

/// Priority progress — the property class the paper's §7 names as future
/// work ("TM-liveness properties that guarantee progress for processes
/// with higher priority"): **the highest-priority correct process makes
/// progress**, or the history has no correct process.
///
/// Priority progress is *nonblocking* (a process running alone is the
/// highest-priority correct one) but not *biprogressing* (it guarantees
/// one process), so Theorem 2 does not rule it out — yet the
/// `ext_priority_progress` harness shows the same indistinguishability
/// argument defeats it in any fault-prone system: a TM that shields the
/// top-priority process must block behind it when it crashes or turns
/// parasitic mid-transaction, starving the *new* top correct process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PriorityProgress {
    priorities: Vec<u32>,
}

impl PriorityProgress {
    /// Creates the property for the given per-process priorities (index =
    /// process index; larger value = higher priority; ties break toward
    /// the lower process index).
    pub fn new(priorities: Vec<u32>) -> Self {
        PriorityProgress { priorities }
    }

    /// The priority of a process (processes beyond the configured list
    /// have priority 0).
    pub fn priority_of(&self, p: tm_core::ProcessId) -> u32 {
        self.priorities.get(p.index()).copied().unwrap_or(0)
    }

    /// The highest-priority correct process of `h`, if any.
    pub fn top_correct(&self, h: &InfiniteHistory) -> Option<tm_core::ProcessId> {
        correct_processes(h).into_iter().max_by(|a, b| {
            self.priority_of(*a)
                .cmp(&self.priority_of(*b))
                .then(b.index().cmp(&a.index()))
        })
    }
}

impl TmLivenessProperty for PriorityProgress {
    fn name(&self) -> &'static str {
        "priority progress"
    }

    fn contains(&self, h: &InfiniteHistory) -> bool {
        match self.top_correct(h) {
            None => true,
            Some(top) => makes_progress(h, top),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;

    #[test]
    fn figure_5_ensures_local_progress() {
        let h = figures::figure_5();
        assert!(LocalProgress.contains(&h));
        assert!(GlobalProgress.contains(&h));
        assert!(SoloProgress.contains(&h));
    }

    #[test]
    fn figure_6_ensures_global_but_not_local_progress() {
        let h = figures::figure_6();
        assert!(!LocalProgress.contains(&h));
        assert!(GlobalProgress.contains(&h));
        assert!(SoloProgress.contains(&h)); // nobody runs alone
    }

    #[test]
    fn figure_7_ensures_solo_progress() {
        let h = figures::figure_7();
        assert!(SoloProgress.contains(&h));
        // p3 is the only correct process and it progresses, so local and
        // global progress hold here too.
        assert!(LocalProgress.contains(&h));
        assert!(GlobalProgress.contains(&h));
    }

    #[test]
    fn figure_14_violates_solo_progress() {
        let h = figures::figure_14();
        assert!(!SoloProgress.contains(&h));
        assert!(!LocalProgress.contains(&h));
        assert!(!GlobalProgress.contains(&h));
    }

    #[test]
    fn local_progress_is_strongest_on_figures() {
        // Definition 1: every property contains L_local. Check the
        // implication on the figure corpus.
        let props: [&dyn TmLivenessProperty; 2] = [&GlobalProgress, &SoloProgress];
        for h in figures::all_figures() {
            if LocalProgress.contains(&h) {
                for p in props {
                    assert!(p.contains(&h), "{} must contain L_local member", p.name());
                }
            }
        }
    }

    #[test]
    fn history_without_correct_processes_satisfies_everything() {
        let h = figures::crash_only_lasso();
        assert!(LocalProgress.contains(&h));
        assert!(GlobalProgress.contains(&h));
        assert!(SoloProgress.contains(&h));
        assert!(PriorityProgress::new(vec![3, 1]).contains(&h));
    }

    #[test]
    fn priority_progress_tracks_the_top_correct_process() {
        // Figure 6: p1 progresses, p2 starves; both correct.
        let h = figures::figure_6();
        // p1 highest priority: satisfied.
        assert!(PriorityProgress::new(vec![2, 1]).contains(&h));
        // p2 highest priority: violated (the top process starves).
        assert!(!PriorityProgress::new(vec![1, 2]).contains(&h));
    }

    #[test]
    fn priority_progress_ignores_faulty_top_priority_processes() {
        // Figure 7: p1 crashed, p2 parasitic, p3 progresses. Even with the
        // highest priority on the faulty processes, the top *correct*
        // process is p3 and it progresses.
        let h = figures::figure_7();
        let p = PriorityProgress::new(vec![9, 8, 1]);
        assert_eq!(p.top_correct(&h), Some(tm_core::ProcessId(2)));
        assert!(p.contains(&h));
    }

    #[test]
    fn priority_progress_is_nonblocking_but_not_biprogressing_on_corpus() {
        use crate::meta;
        let corpus = figures::all_figures();
        let p = PriorityProgress::new(vec![1, 2, 3]);
        assert!(meta::nonblocking_counterexample(&p, &corpus).is_none());
        assert!(meta::biprogressing_counterexample(&p, &corpus).is_some());
    }

    #[test]
    fn priority_progress_contains_local_progress_on_corpus() {
        use crate::meta;
        let corpus = figures::all_figures();
        let p = PriorityProgress::new(vec![1, 2, 3]);
        assert!(meta::weakening_counterexample(&p, &corpus).is_none());
    }

    #[test]
    fn tie_break_prefers_lower_process_index() {
        let h = figures::figure_5(); // both processes progress
        let p = PriorityProgress::new(vec![1, 1]);
        assert_eq!(p.top_correct(&h), Some(tm_core::ProcessId(0)));
    }
}
