//! Process classification in infinite histories (the paper's Figure 2).
//!
//! For an infinite history `H` and process `pk`:
//!
//! * `pk` is **pending** iff `H` has only finitely many commit events `C_k`;
//! * `pk` **crashes** iff `H|pk` is a finite non-empty sequence;
//! * `pk` is **parasitic** iff `H|pk` is infinite but contains only
//!   finitely many `tryC_k` invocations and `A_k` events;
//! * `pk` is **starving** iff it does not crash, is not parasitic, and is
//!   pending;
//! * `pk` is **correct** iff it neither crashes nor is parasitic, and
//!   **faulty** otherwise;
//! * a correct `pk` **makes progress** iff it is not pending;
//! * `pk` **runs alone** iff it is correct and no other process is correct.
//!
//! On lasso histories every one of these is exactly decidable: "finitely
//! many events of kind k" holds iff the cycle contains no event of kind k.

use serde::{Deserialize, Serialize};

use tm_core::ProcessId;

use crate::lasso::InfiniteHistory;

/// The class of a process in an infinite history (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcessClass {
    /// `H|pk` is finite and non-empty.
    Crashed,
    /// `H|pk` is infinite with finitely many `tryC_k` and `A_k`.
    Parasitic,
    /// Correct (neither crashed nor parasitic) but pending.
    Starving,
    /// Correct and makes progress (commits infinitely often).
    Progressing,
    /// No events at all: the process does not participate in the history.
    Absent,
}

impl core::fmt::Display for ProcessClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ProcessClass::Crashed => "crashed",
            ProcessClass::Parasitic => "parasitic",
            ProcessClass::Starving => "starving",
            ProcessClass::Progressing => "progressing",
            ProcessClass::Absent => "absent",
        };
        f.write_str(s)
    }
}

/// Whether `process` is pending in `h`: only finitely many `C_k` events.
pub fn is_pending(h: &InfiniteHistory, process: ProcessId) -> bool {
    h.commits_per_cycle(process) == 0
}

/// Whether `process` crashes in `h`: `H|pk` finite and non-empty.
pub fn is_crashed(h: &InfiniteHistory, process: ProcessId) -> bool {
    h.participates(process) && !h.cycle_projection_nonempty(process)
}

/// Whether `process` is parasitic in `h`: `H|pk` infinite with finitely
/// many `tryC_k` invocations and `A_k` events.
pub fn is_parasitic(h: &InfiniteHistory, process: ProcessId) -> bool {
    h.cycle_projection_nonempty(process)
        && h.try_commits_per_cycle(process) == 0
        && h.aborts_per_cycle(process) == 0
}

/// Whether `process` is correct in `h`: participates, does not crash and is
/// not parasitic.
///
/// A process with no events at all is *absent* — it is outside the history
/// and neither correct nor faulty (DESIGN.md discusses this edge of the
/// paper's definitions).
pub fn is_correct(h: &InfiniteHistory, process: ProcessId) -> bool {
    h.participates(process) && !is_crashed(h, process) && !is_parasitic(h, process)
}

/// Whether `process` is faulty in `h`: participates and is not correct.
pub fn is_faulty(h: &InfiniteHistory, process: ProcessId) -> bool {
    h.participates(process) && !is_correct(h, process)
}

/// Whether `process` is starving in `h`: correct but pending.
pub fn is_starving(h: &InfiniteHistory, process: ProcessId) -> bool {
    is_correct(h, process) && is_pending(h, process)
}

/// Whether the (correct) `process` makes progress in `h`: commits
/// infinitely often.
pub fn makes_progress(h: &InfiniteHistory, process: ProcessId) -> bool {
    is_correct(h, process) && !is_pending(h, process)
}

/// Whether `process` runs alone in `h`: it is correct and no other process
/// is correct.
pub fn runs_alone(h: &InfiniteHistory, process: ProcessId) -> bool {
    is_correct(h, process)
        && h.processes()
            .into_iter()
            .filter(|&p| p != process)
            .all(|p| !is_correct(h, p))
}

/// Classifies `process` in `h`.
pub fn classify(h: &InfiniteHistory, process: ProcessId) -> ProcessClass {
    if !h.participates(process) {
        ProcessClass::Absent
    } else if is_crashed(h, process) {
        ProcessClass::Crashed
    } else if is_parasitic(h, process) {
        ProcessClass::Parasitic
    } else if is_pending(h, process) {
        ProcessClass::Starving
    } else {
        ProcessClass::Progressing
    }
}

/// Classifies every participating process in `h`.
pub fn classify_all(h: &InfiniteHistory) -> Vec<(ProcessId, ProcessClass)> {
    h.processes()
        .into_iter()
        .map(|p| (p, classify(h, p)))
        .collect()
}

/// The correct processes of `h`.
pub fn correct_processes(h: &InfiniteHistory) -> Vec<ProcessId> {
    h.processes()
        .into_iter()
        .filter(|&p| is_correct(h, p))
        .collect()
}

/// The correct processes of `h` that make progress.
pub fn progressing_processes(h: &InfiniteHistory) -> Vec<ProcessId> {
    h.processes()
        .into_iter()
        .filter(|&p| makes_progress(h, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{History, HistoryBuilder, TVarId};

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);

    /// p1 commits forever; p2 read once in the prefix then stopped.
    fn crash_lasso() -> InfiniteHistory {
        let prefix = HistoryBuilder::new().read(P2, X, 0).build().unwrap();
        let cycle = HistoryBuilder::new()
            .read(P1, X, 0)
            .commit(P1)
            .build()
            .unwrap();
        InfiniteHistory::new(prefix, cycle).unwrap()
    }

    /// p1 commits forever; p2 keeps reading without ever invoking tryC.
    fn parasitic_lasso() -> InfiniteHistory {
        let cycle = HistoryBuilder::new()
            .read(P1, X, 0)
            .commit(P1)
            .read(P2, X, 0)
            .build()
            .unwrap();
        InfiniteHistory::new(History::new(), cycle).unwrap()
    }

    /// p1 commits forever; p2 tries forever and is always aborted.
    fn starving_lasso() -> InfiniteHistory {
        let cycle = HistoryBuilder::new()
            .read(P1, X, 0)
            .commit(P1)
            .read_abort(P2, X)
            .build()
            .unwrap();
        InfiniteHistory::new(History::new(), cycle).unwrap()
    }

    #[test]
    fn crashed_process_detected() {
        let h = crash_lasso();
        assert!(is_crashed(&h, P2));
        assert!(!is_crashed(&h, P1));
        assert_eq!(classify(&h, P2), ProcessClass::Crashed);
    }

    #[test]
    fn parasitic_process_detected() {
        let h = parasitic_lasso();
        assert!(is_parasitic(&h, P2));
        assert!(!is_parasitic(&h, P1));
        assert_eq!(classify(&h, P2), ProcessClass::Parasitic);
    }

    #[test]
    fn aborts_make_a_looping_process_non_parasitic() {
        let h = starving_lasso();
        assert!(!is_parasitic(&h, P2));
        assert!(is_correct(&h, P2));
        assert!(is_starving(&h, P2));
        assert_eq!(classify(&h, P2), ProcessClass::Starving);
    }

    #[test]
    fn progressing_process_detected() {
        let h = starving_lasso();
        assert!(makes_progress(&h, P1));
        assert_eq!(classify(&h, P1), ProcessClass::Progressing);
    }

    #[test]
    fn absent_process() {
        let h = starving_lasso();
        let p9 = ProcessId(9);
        assert_eq!(classify(&h, p9), ProcessClass::Absent);
        assert!(!is_correct(&h, p9));
        assert!(!is_faulty(&h, p9));
    }

    #[test]
    fn figure_2_lattice_crashed_and_parasitic_are_faulty() {
        let hc = crash_lasso();
        assert!(is_faulty(&hc, P2));
        let hp = parasitic_lasso();
        assert!(is_faulty(&hp, P2));
    }

    #[test]
    fn figure_2_lattice_crashed_implies_pending() {
        // Figure 2: crashed → pending (a crashed process commits finitely
        // often).
        let h = crash_lasso();
        assert!(is_pending(&h, P2));
    }

    #[test]
    fn figure_2_lattice_starving_implies_pending_and_correct() {
        let h = starving_lasso();
        assert!(is_starving(&h, P2));
        assert!(is_pending(&h, P2));
        assert!(is_correct(&h, P2));
        assert!(!is_crashed(&h, P2));
        assert!(!is_parasitic(&h, P2));
    }

    #[test]
    fn runs_alone_when_other_processes_faulty() {
        let h = crash_lasso();
        assert!(runs_alone(&h, P1));
        let h = parasitic_lasso();
        assert!(runs_alone(&h, P1));
        // But not when the other process is correct:
        let h = starving_lasso();
        assert!(!runs_alone(&h, P1));
        assert!(!runs_alone(&h, P2));
    }

    #[test]
    fn classify_all_and_collectors() {
        let h = starving_lasso();
        let all = classify_all(&h);
        assert_eq!(all.len(), 2);
        assert_eq!(correct_processes(&h), vec![P1, P2]);
        assert_eq!(progressing_processes(&h), vec![P1]);
    }

    #[test]
    fn parasitic_needs_infinite_projection() {
        // A process with finitely many events and no tryC is crashed, not
        // parasitic.
        let h = crash_lasso();
        assert!(!is_parasitic(&h, P2));
    }
}
