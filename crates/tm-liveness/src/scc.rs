//! Certified cycle-existence verdicts over explored state graphs.
//!
//! The liveness model checker (`tm_sim::livecheck`) records the explored
//! configuration graph explicitly and needs **completeness** claims over
//! it — "no cycle starves process `p` within the bound" — that on-path
//! lasso detection cannot give once a seen set prunes re-expansion. This
//! module decides cycle existence exactly, per process, by strongly
//! connected components (Tarjan over edge-filtered views of the graph):
//! an edge lies on a cycle of a filtered graph iff both endpoints share
//! an SCC.
//!
//! Per-process queries are independent — each runs its own four Tarjan
//! passes over read-only edges — so the pass is embarrassingly parallel:
//! [`certify_cycles_parallel`] fans the processes over the rayon pool
//! and merges verdicts in process-id order, making it verdict-identical
//! to the sequential [`certify_cycles`] regardless of thread count.

use rayon::prelude::*;
use tm_core::ProcessId;

/// One labelled edge of an explored configuration graph, in the compact
/// form the cycle certificates need: the scheduled process and what its
/// step did (event count, commit/abort delivery, `tryC` invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleEdge {
    /// Index of the target node in the graph's node vector.
    pub target: u32,
    /// The process whose step this edge is.
    pub process: u8,
    /// How many events the step produced (0 for a blocked poll).
    pub events: u8,
    /// The step delivered `Committed` to its process.
    pub committed: bool,
    /// The step delivered `Aborted` to its process.
    pub aborted: bool,
    /// The step invoked `tryC`.
    pub tryc: bool,
}

/// Certified cycle-existence verdicts for one process over an explored
/// subgraph (see the module docs).
///
/// Each flag is an independent **existential** claim — "some cycle with
/// this shape exists" — and different flags are generally witnessed by
/// *different* cycles, so several can hold at once. In particular a
/// process modelled as parasitic (it never invokes `tryC`) can be
/// certified both `parasitic` (a cycle where its reads succeed forever)
/// *and* `starving` (a cycle where the TM aborts those reads forever):
/// by the paper's Figure 2 definitions a history with infinitely many
/// `A_k` is **not** parasitic — the process is correct and pending,
/// i.e. starving — and [`crate::classify()`] returns exactly that on the
/// corresponding lasso witnesses. Within any *one* cycle the classes
/// remain mutually exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessCycleVerdicts {
    /// The process.
    pub process: ProcessId,
    /// A cycle commits the process infinitely often.
    pub progressing: bool,
    /// A cycle aborts the process infinitely often and never commits it.
    pub starving: bool,
    /// A cycle gives the process infinitely many events but finitely
    /// many `tryC`/aborts.
    pub parasitic: bool,
    /// A cycle schedules the process forever without the TM ever
    /// responding (blocking, the Figure 14 shape).
    pub blocked: bool,
}

/// Iterative Tarjan SCC over the graph, restricted to edges passing
/// `keep`. Returns the component id of every node.
pub fn sccs(graph: &[Vec<CycleEdge>], keep: impl Fn(&CycleEdge) -> bool) -> Vec<u32> {
    const UNVISITED: u32 = u32::MAX;
    let n = graph.len();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut comp = vec![UNVISITED; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;
    // (node, next edge offset) — an explicit call stack.
    let mut call: Vec<(u32, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call.push((root as u32, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut edge)) = call.last_mut() {
            let vu = v as usize;
            let next = graph[vu][*edge..].iter().position(&keep);
            if let Some(offset) = next {
                *edge += offset + 1;
                let w = graph[vu][*edge - 1].target;
                let wu = w as usize;
                if index[wu] == UNVISITED {
                    index[wu] = next_index;
                    low[wu] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wu] = true;
                    call.push((w, 0));
                } else if on_stack[wu] {
                    low[vu] = low[vu].min(index[wu]);
                }
            } else {
                call.pop();
                if low[vu] == index[vu] {
                    loop {
                        let w = stack.pop().expect("root still on stack");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                if let Some(&(parent, _)) = call.last() {
                    let pu = parent as usize;
                    low[pu] = low[pu].min(low[vu]);
                }
            }
        }
    }
    comp
}

/// Whether some kept edge passing `want` lies on a cycle of the
/// `keep`-restricted graph (both endpoints in one SCC).
pub fn cycle_edge_exists(
    graph: &[Vec<CycleEdge>],
    keep: impl Fn(&CycleEdge) -> bool + Copy,
    want: impl Fn(&CycleEdge) -> bool,
) -> bool {
    let comp = sccs(graph, keep);
    graph.iter().enumerate().any(|(u, edges)| {
        edges
            .iter()
            .any(|e| keep(e) && want(e) && comp[u] == comp[e.target as usize])
    })
}

/// The four certificates of one process: `full` is the SCC labelling of
/// the unrestricted graph (shared across processes — only the
/// `progressing` claim uses it).
fn verdicts_for(graph: &[Vec<CycleEdge>], full: &[u32], k: usize) -> ProcessCycleVerdicts {
    let p = u8::try_from(k).expect("≤ 64 processes");
    let progressing = graph.iter().enumerate().any(|(u, edges)| {
        edges
            .iter()
            .any(|e| e.process == p && e.committed && full[u] == full[e.target as usize])
    });
    let starving = cycle_edge_exists(
        graph,
        |e| !(e.process == p && e.committed),
        |e| e.process == p && e.aborted,
    );
    let parasitic = cycle_edge_exists(
        graph,
        |e| !(e.process == p && (e.committed || e.aborted || e.tryc)),
        |e| e.process == p && e.events > 0,
    );
    let blocked = cycle_edge_exists(
        graph,
        |e| !(e.process == p && e.events > 0),
        |e| e.process == p && e.events == 0,
    );
    ProcessCycleVerdicts {
        process: ProcessId(k),
        progressing,
        starving,
        parasitic,
        blocked,
    }
}

/// Certifies starving/parasitic/blocked/progressing cycle existence for
/// every process over the explored graph, sequentially.
pub fn certify_cycles(graph: &[Vec<CycleEdge>], processes: usize) -> Vec<ProcessCycleVerdicts> {
    let full = sccs(graph, |_| true);
    (0..processes)
        .map(|k| verdicts_for(graph, &full, k))
        .collect()
}

/// [`certify_cycles`] with the per-process passes fanned over the rayon
/// pool. Per-process certificates read the graph immutably and share
/// only the full-graph SCC labelling, so the fan-out is embarrassingly
/// parallel; verdicts merge in process-id order and are identical to
/// the sequential pass regardless of thread count.
pub fn certify_cycles_parallel(
    graph: &[Vec<CycleEdge>],
    processes: usize,
) -> Vec<ProcessCycleVerdicts> {
    let full = sccs(graph, |_| true);
    (0..processes)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|k| verdicts_for(graph, &full, k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(target: u32, process: u8, committed: bool, aborted: bool) -> CycleEdge {
        CycleEdge {
            target,
            process,
            events: 2,
            committed,
            aborted,
            tryc: committed || aborted,
        }
    }

    /// Two nodes in a loop: p0 commits around the cycle, p1 aborts
    /// around it.
    fn starving_graph() -> Vec<Vec<CycleEdge>> {
        vec![vec![edge(1, 0, true, false)], vec![edge(0, 1, false, true)]]
    }

    #[test]
    fn starving_and_progressing_are_certified() {
        let graph = starving_graph();
        let verdicts = certify_cycles(&graph, 2);
        assert!(verdicts[0].progressing && !verdicts[0].starving);
        assert!(verdicts[1].starving && !verdicts[1].progressing);
    }

    #[test]
    fn deleting_the_cycle_edge_kills_the_verdict() {
        // A dead-end tail: no cycles at all.
        let graph = vec![vec![edge(1, 0, true, false)], vec![]];
        let verdicts = certify_cycles(&graph, 2);
        assert!(verdicts.iter().all(|v| !v.progressing && !v.starving));
    }

    #[test]
    fn blocked_needs_an_eventless_cycle_edge(// the Figure 14 shape
    ) {
        let mut graph = starving_graph();
        // p1 also spins a self-loop poll with no events at node 0.
        graph[0].push(CycleEdge {
            target: 0,
            process: 1,
            events: 0,
            committed: false,
            aborted: false,
            tryc: false,
        });
        let verdicts = certify_cycles(&graph, 2);
        assert!(verdicts[1].blocked);
        assert!(!verdicts[0].blocked);
    }

    #[test]
    fn parallel_certification_is_identical() {
        let graph = starving_graph();
        for processes in [1, 2] {
            assert_eq!(
                certify_cycles(&graph, processes),
                certify_cycles_parallel(&graph, processes)
            );
        }
    }
}
