//! Certified cycle-existence verdicts over explored state graphs.
//!
//! The liveness model checker (`tm_sim::livecheck`) records the explored
//! configuration graph explicitly and needs **completeness** claims over
//! it — "no cycle starves process `p` within the bound" — that on-path
//! lasso detection cannot give once a seen set prunes re-expansion. This
//! module decides cycle existence exactly, per process, by strongly
//! connected components (Tarjan over edge-filtered views of the graph):
//! an edge lies on a cycle of a filtered graph iff both endpoints share
//! an SCC.
//!
//! Per-process queries are independent — each runs its own four Tarjan
//! passes over read-only edges — so the pass is embarrassingly parallel:
//! [`certify_cycles_parallel`] fans the processes over the rayon pool
//! and merges verdicts in process-id order, making it verdict-identical
//! to the sequential [`certify_cycles`] regardless of thread count.

use rayon::prelude::*;
use tm_core::ProcessId;

/// One labelled edge of an explored configuration graph, in the compact
/// form the cycle certificates need: the scheduled process and what its
/// step did (event count, commit/abort delivery, `tryC` invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleEdge {
    /// Index of the target node in the graph's node vector.
    pub target: u32,
    /// The process whose step this edge is.
    pub process: u8,
    /// How many events the step produced (0 for a blocked poll).
    pub events: u8,
    /// The step delivered `Committed` to its process.
    pub committed: bool,
    /// The step delivered `Aborted` to its process.
    pub aborted: bool,
    /// The step invoked `tryC`.
    pub tryc: bool,
}

/// Certified cycle-existence verdicts for one process over an explored
/// subgraph (see the module docs).
///
/// Each flag is an independent **existential** claim — "some cycle with
/// this shape exists" — and different flags are generally witnessed by
/// *different* cycles, so several can hold at once. In particular a
/// process modelled as parasitic (it never invokes `tryC`) can be
/// certified both `parasitic` (a cycle where its reads succeed forever)
/// *and* `starving` (a cycle where the TM aborts those reads forever):
/// by the paper's Figure 2 definitions a history with infinitely many
/// `A_k` is **not** parasitic — the process is correct and pending,
/// i.e. starving — and [`crate::classify()`] returns exactly that on the
/// corresponding lasso witnesses. Within any *one* cycle the classes
/// remain mutually exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessCycleVerdicts {
    /// The process.
    pub process: ProcessId,
    /// A cycle commits the process infinitely often.
    pub progressing: bool,
    /// A cycle aborts the process infinitely often and never commits it.
    pub starving: bool,
    /// A cycle gives the process infinitely many events but finitely
    /// many `tryC`/aborts.
    pub parasitic: bool,
    /// A cycle schedules the process forever without the TM ever
    /// responding (blocking, the Figure 14 shape).
    pub blocked: bool,
}

/// Iterative Tarjan SCC over the graph, restricted to edges passing
/// `keep`. Returns the component id of every node.
pub fn sccs(graph: &[Vec<CycleEdge>], keep: impl Fn(&CycleEdge) -> bool) -> Vec<u32> {
    const UNVISITED: u32 = u32::MAX;
    let n = graph.len();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut comp = vec![UNVISITED; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;
    // (node, next edge offset) — an explicit call stack.
    let mut call: Vec<(u32, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call.push((root as u32, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut edge)) = call.last_mut() {
            let vu = v as usize;
            let next = graph[vu][*edge..].iter().position(&keep);
            if let Some(offset) = next {
                *edge += offset + 1;
                let w = graph[vu][*edge - 1].target;
                let wu = w as usize;
                if index[wu] == UNVISITED {
                    index[wu] = next_index;
                    low[wu] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wu] = true;
                    call.push((w, 0));
                } else if on_stack[wu] {
                    low[vu] = low[vu].min(index[wu]);
                }
            } else {
                call.pop();
                if low[vu] == index[vu] {
                    loop {
                        let w = stack.pop().expect("root still on stack");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                if let Some(&(parent, _)) = call.last() {
                    let pu = parent as usize;
                    low[pu] = low[pu].min(low[vu]);
                }
            }
        }
    }
    comp
}

/// Whether some kept edge passing `want` lies on a cycle of the
/// `keep`-restricted graph (both endpoints in one SCC).
pub fn cycle_edge_exists(
    graph: &[Vec<CycleEdge>],
    keep: impl Fn(&CycleEdge) -> bool + Copy,
    want: impl Fn(&CycleEdge) -> bool,
) -> bool {
    let comp = sccs(graph, keep);
    graph.iter().enumerate().any(|(u, edges)| {
        edges
            .iter()
            .any(|e| keep(e) && want(e) && comp[u] == comp[e.target as usize])
    })
}

/// The four certificates of one process: `full` is the SCC labelling of
/// the unrestricted graph (shared across processes — only the
/// `progressing` claim uses it).
fn verdicts_for(graph: &[Vec<CycleEdge>], full: &[u32], k: usize) -> ProcessCycleVerdicts {
    let p = u8::try_from(k).expect("≤ 64 processes");
    let progressing = graph.iter().enumerate().any(|(u, edges)| {
        edges
            .iter()
            .any(|e| e.process == p && e.committed && full[u] == full[e.target as usize])
    });
    let starving = cycle_edge_exists(
        graph,
        |e| !(e.process == p && e.committed),
        |e| e.process == p && e.aborted,
    );
    let parasitic = cycle_edge_exists(
        graph,
        |e| !(e.process == p && (e.committed || e.aborted || e.tryc)),
        |e| e.process == p && e.events > 0,
    );
    let blocked = cycle_edge_exists(
        graph,
        |e| !(e.process == p && e.events > 0),
        |e| e.process == p && e.events == 0,
    );
    ProcessCycleVerdicts {
        process: ProcessId(k),
        progressing,
        starving,
        parasitic,
        blocked,
    }
}

/// Fairness-filtered cycle-existence verdicts for one process.
///
/// The plain [`ProcessCycleVerdicts`] quantify over *all* cycles — a
/// starving verdict may be witnessed by a lasso whose scheduler simply
/// abandons every other process. The fair verdicts restrict each
/// existential claim to cycles along which **every live (non-crashed)
/// process is scheduled infinitely often** — the weak-fairness filter of
/// the paper's §2 schedules. A flag that holds unfairly but not fairly
/// is therefore *scheduler-induced*; a flag that survives the filter is
/// induced by the TM itself (or, when [`FairProcessVerdicts::crash_victim`]
/// is set, by a crash the TM cannot recover from — the Theorem 1
/// adversary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FairProcessVerdicts {
    /// The process.
    pub process: ProcessId,
    /// A fair cycle aborts the process infinitely often, never commits it.
    pub starving: bool,
    /// A fair cycle gives the process infinitely many events but finitely
    /// many `tryC`/aborts.
    pub parasitic: bool,
    /// A fair cycle schedules the process forever without a response.
    pub blocked: bool,
    /// Some witnessing fair starving/blocked cycle runs in a region of
    /// the graph where at least one process has crashed: the starvation
    /// is crash-induced (Theorem 1's shape), not reachable fault-free.
    pub crash_victim: bool,
}

/// Whether some `keep`-restricted SCC contains a `want` edge of the
/// process *and* intra-component edges of every live process — the exact
/// criterion for a **fair** cycle with the wanted recurring shape.
///
/// Soundness and completeness both follow from strong connectivity: any
/// fair cycle lies inside one SCC of the kept graph and contributes an
/// intra-component edge per live process plus the recurring want edge;
/// conversely, given those edges, strong connectivity stitches them into
/// one closed walk that schedules every live process and repeats the
/// want edge infinitely often.
///
/// `crashed` gives the per-node crashed-process mask (all zeros for a
/// fault-free graph). Fault masks only grow along edges, so every node
/// of a cycle-bearing SCC carries the same mask; processes crashed in a
/// component are exempt from its fairness obligation. Returns the
/// verdict and whether some witnessing component has a non-empty
/// crashed mask.
fn fair_cycle_exists(
    graph: &[Vec<CycleEdge>],
    crashed: &[u64],
    processes: usize,
    keep: impl Fn(&CycleEdge) -> bool + Copy,
    want: impl Fn(&CycleEdge) -> bool,
) -> (bool, bool) {
    let comp = sccs(graph, keep);
    let ncomp = comp.iter().copied().max().map_or(0, |c| c as usize + 1);
    // Per component: which processes have a kept intra-component edge,
    // whether a want edge is intra-component, and the component's
    // crashed mask.
    let mut scheduled = vec![0u64; ncomp];
    let mut want_hit = vec![false; ncomp];
    let mut comp_crashed = vec![0u64; ncomp];
    for (u, edges) in graph.iter().enumerate() {
        let c = comp[u] as usize;
        comp_crashed[c] |= crashed[u];
        for e in edges {
            if keep(e) && comp[u] == comp[e.target as usize] {
                scheduled[c] |= 1 << e.process;
                if want(e) {
                    want_hit[c] = true;
                }
            }
        }
    }
    let live_mask = if processes >= 64 {
        u64::MAX
    } else {
        (1u64 << processes) - 1
    };
    let mut holds = false;
    let mut victim = false;
    for c in 0..ncomp {
        let fair = want_hit[c] && (scheduled[c] | comp_crashed[c]) & live_mask == live_mask;
        holds |= fair;
        victim |= fair && comp_crashed[c] != 0;
    }
    (holds, victim)
}

/// The three fairness-filtered certificates of one process (see
/// [`FairProcessVerdicts`]). The filters are exactly those of the unfair
/// verdicts, so `fair.starving → unfair.starving` etc. by construction.
fn fair_verdicts_for(
    graph: &[Vec<CycleEdge>],
    crashed: &[u64],
    processes: usize,
    k: usize,
) -> FairProcessVerdicts {
    let p = u8::try_from(k).expect("≤ 64 processes");
    let (starving, starve_crash) = fair_cycle_exists(
        graph,
        crashed,
        processes,
        |e| !(e.process == p && e.committed),
        |e| e.process == p && e.aborted,
    );
    let (parasitic, _) = fair_cycle_exists(
        graph,
        crashed,
        processes,
        |e| !(e.process == p && (e.committed || e.aborted || e.tryc)),
        |e| e.process == p && e.events > 0,
    );
    let (blocked, block_crash) = fair_cycle_exists(
        graph,
        crashed,
        processes,
        |e| !(e.process == p && e.events > 0),
        |e| e.process == p && e.events == 0,
    );
    FairProcessVerdicts {
        process: ProcessId(k),
        starving,
        parasitic,
        blocked,
        crash_victim: starve_crash || block_crash,
    }
}

/// Certifies fair starving/parasitic/blocked cycle existence for every
/// process over the explored graph. `crashed[u]` is the crashed-process
/// mask at node `u` (all zeros for a fault-free graph); crashed
/// processes are exempt from the fairness obligation of the components
/// they crashed in.
///
/// Runs sequentially in both checker paths: the per-process passes cost
/// the same as [`certify_cycles`] and determinism is free.
///
/// # Panics
///
/// If `crashed` is not one mask per graph node.
pub fn certify_fair_cycles(
    graph: &[Vec<CycleEdge>],
    crashed: &[u64],
    processes: usize,
) -> Vec<FairProcessVerdicts> {
    assert_eq!(crashed.len(), graph.len(), "one crashed mask per node");
    (0..processes)
        .map(|k| fair_verdicts_for(graph, crashed, processes, k))
        .collect()
}

/// Certifies starving/parasitic/blocked/progressing cycle existence for
/// every process over the explored graph, sequentially.
pub fn certify_cycles(graph: &[Vec<CycleEdge>], processes: usize) -> Vec<ProcessCycleVerdicts> {
    let full = sccs(graph, |_| true);
    (0..processes)
        .map(|k| verdicts_for(graph, &full, k))
        .collect()
}

/// [`certify_cycles`] with the per-process passes fanned over the rayon
/// pool. Per-process certificates read the graph immutably and share
/// only the full-graph SCC labelling, so the fan-out is embarrassingly
/// parallel; verdicts merge in process-id order and are identical to
/// the sequential pass regardless of thread count.
pub fn certify_cycles_parallel(
    graph: &[Vec<CycleEdge>],
    processes: usize,
) -> Vec<ProcessCycleVerdicts> {
    let full = sccs(graph, |_| true);
    (0..processes)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|k| verdicts_for(graph, &full, k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(target: u32, process: u8, committed: bool, aborted: bool) -> CycleEdge {
        CycleEdge {
            target,
            process,
            events: 2,
            committed,
            aborted,
            tryc: committed || aborted,
        }
    }

    /// Two nodes in a loop: p0 commits around the cycle, p1 aborts
    /// around it.
    fn starving_graph() -> Vec<Vec<CycleEdge>> {
        vec![vec![edge(1, 0, true, false)], vec![edge(0, 1, false, true)]]
    }

    #[test]
    fn starving_and_progressing_are_certified() {
        let graph = starving_graph();
        let verdicts = certify_cycles(&graph, 2);
        assert!(verdicts[0].progressing && !verdicts[0].starving);
        assert!(verdicts[1].starving && !verdicts[1].progressing);
    }

    #[test]
    fn deleting_the_cycle_edge_kills_the_verdict() {
        // A dead-end tail: no cycles at all.
        let graph = vec![vec![edge(1, 0, true, false)], vec![]];
        let verdicts = certify_cycles(&graph, 2);
        assert!(verdicts.iter().all(|v| !v.progressing && !v.starving));
    }

    #[test]
    fn blocked_needs_an_eventless_cycle_edge(// the Figure 14 shape
    ) {
        let mut graph = starving_graph();
        // p1 also spins a self-loop poll with no events at node 0.
        graph[0].push(CycleEdge {
            target: 0,
            process: 1,
            events: 0,
            committed: false,
            aborted: false,
            tryc: false,
        });
        let verdicts = certify_cycles(&graph, 2);
        assert!(verdicts[1].blocked);
        assert!(!verdicts[0].blocked);
    }

    #[test]
    fn parallel_certification_is_identical() {
        let graph = starving_graph();
        for processes in [1, 2] {
            assert_eq!(
                certify_cycles(&graph, processes),
                certify_cycles_parallel(&graph, processes)
            );
        }
    }

    #[test]
    fn fair_starving_requires_every_live_process_on_the_cycle() {
        // Both processes scheduled around the loop: p1's starvation
        // survives the fairness filter and is not crash-induced.
        let graph = starving_graph();
        let fair = certify_fair_cycles(&graph, &[0, 0], 2);
        assert!(fair[1].starving && !fair[1].crash_victim);
        assert!(!fair[0].starving);

        // A self-loop aborting p1 while p0 is never scheduled: p1
        // starves unfairly (the scheduler abandons p0) but NOT fairly.
        let abandoned = vec![vec![edge(0, 1, false, true)]];
        let unfair = certify_cycles(&abandoned, 2);
        assert!(unfair[1].starving);
        let fair = certify_fair_cycles(&abandoned, &[0], 2);
        assert!(!fair[1].starving);
    }

    #[test]
    fn crashed_processes_are_exempt_and_flagged() {
        // p0 has crashed (mask bit 0 set at both nodes); p1 aborts
        // around the loop alone. Fairness no longer owes p0 a slot, so
        // the starvation is certified fair — and crash-induced.
        let graph = vec![vec![edge(1, 1, false, true)], vec![edge(0, 1, false, true)]];
        let fair = certify_fair_cycles(&graph, &[1, 1], 2);
        assert!(fair[1].starving);
        assert!(fair[1].crash_victim);

        // The same graph with nobody crashed: unfair only.
        let fair = certify_fair_cycles(&graph, &[0, 0], 2);
        assert!(!fair[1].starving);
    }

    #[test]
    fn fair_blocked_needs_the_other_process_in_the_same_component() {
        // p1 spins an eventless poll at node 0 while p0 commits a
        // self-loop at the same node: the kept graph for "p1 blocked"
        // keeps both, one SCC schedules both processes → fair blocked.
        let eventless = |target: u32| CycleEdge {
            target,
            process: 1,
            events: 0,
            committed: false,
            aborted: false,
            tryc: false,
        };
        let graph = vec![vec![edge(0, 0, true, false), eventless(0)]];
        let fair = certify_fair_cycles(&graph, &[0], 2);
        assert!(fair[1].blocked && !fair[1].crash_victim);
        // Fair implies unfair by construction.
        assert!(certify_cycles(&graph, 2)[1].blocked);

        // Without p0's self-loop the same poll cycle abandons p0: the
        // unfair verdict stays, the fair one falls.
        let lonely = vec![vec![eventless(0)]];
        assert!(certify_cycles(&lonely, 2)[1].blocked);
        assert!(!certify_fair_cycles(&lonely, &[0], 2)[1].blocked);
    }
}
