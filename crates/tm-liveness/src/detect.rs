//! Lasso detection: from finite recorded runs to infinite histories.
//!
//! The impossibility games and simulations produce *finite* histories; the
//! paper's liveness properties are defined on *infinite* ones. When a
//! recorded run becomes eventually periodic — as the adversary games do
//! once values are drawn from a finite domain — the run **is** a finite
//! unrolling of a lasso, and this module recovers it: the detected
//! `prefix · cycle^ω` is the infinite history the game would produce if
//! run forever, and every classification of [`crate::classify()`] applies to
//! it exactly. This closes the loop between executing a TM and the
//! paper's formal liveness verdicts (see the `thm1_liveness_bridge`
//! harness).

use tm_core::{Event, History};

use crate::lasso::{InfiniteHistory, LassoError};

/// Searches for the smallest period `p` such that the history ends with at
/// least `min_repeats` exact repetitions of a `p`-event cycle (a trailing
/// partial repetition is allowed), and returns the corresponding validated
/// lasso.
///
/// Returns `None` if no such periodic suffix exists or if the resulting
/// `(prefix, cycle)` pair is not a well-formed lasso (e.g. the period cuts
/// an invocation/response pair across the boundary in an inconsistent
/// way).
///
/// Complexity: `O(len²)` worst case; intended for harness-scale histories
/// (≲ 10⁵ events).
///
/// # Examples
///
/// ```
/// use tm_core::{HistoryBuilder, ProcessId, TVarId};
/// use tm_liveness::{detect_lasso, is_starving, makes_progress};
///
/// let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
/// let mut b = HistoryBuilder::new();
/// for _ in 0..8 {
///     b.read(p1, x, 0).commit(p1).read_abort(p2, x);
/// }
/// let h = b.build()?;
/// let lasso = detect_lasso(&h, 3).expect("periodic");
/// assert!(makes_progress(&lasso, p1));
/// assert!(is_starving(&lasso, p2));
/// # Ok::<(), tm_core::WellFormednessError>(())
/// ```
pub fn detect_lasso(history: &History, min_repeats: usize) -> Option<InfiniteHistory> {
    let events = history.events();
    let n = events.len();
    let min_repeats = min_repeats.max(1);
    if n == 0 {
        return None;
    }
    for period in 1..=n / min_repeats {
        // Largest suffix in which events[i] == events[i + period].
        let mut start = n.saturating_sub(period);
        while start > 0 && events[start - 1] == events[start - 1 + period] {
            start -= 1;
        }
        let suffix_len = n - start;
        if suffix_len < min_repeats * period {
            continue;
        }
        // Align the cycle to begin right after the prefix.
        let prefix = History::from_events_unchecked(events[..start].to_vec());
        let cycle = History::from_events_unchecked(events[start..start + period].to_vec());
        if let Ok(lasso) = InfiniteHistory::new(prefix, cycle) {
            return Some(lasso);
        }
    }
    None
}

/// Builds a validated lasso from an explorer-detected state-graph cycle:
/// `prefix` is the event sequence up to the first occurrence of the
/// repeated canonical state, `cycle` the events between its two
/// occurrences.
///
/// This is the ingestion point for model checkers that find cycles by
/// state fingerprint (`tm_sim::livecheck`) rather than by event-suffix
/// periodicity ([`detect_lasso`]): the two occurrences of the state need
/// *not* produce textually repeating events, only behaviourally
/// equivalent futures, so the suffix matcher would miss many of these
/// cycles.
///
/// # Errors
///
/// The [`LassoError`] rejection paths of [`InfiniteHistory::new`]:
/// an empty cycle, an ill-formed `prefix · cycle`, or a pending-state
/// mismatch at the cycle boundary. A cycle detected on a *sound*
/// canonical state key never trips the latter two (the fingerprint
/// contract covers pending invocations), so a rejection here is
/// evidence of a fingerprint canonicalization bug — callers surface it
/// rather than silently dropping the cycle.
pub fn lasso_from_cycle(prefix: &[Event], cycle: &[Event]) -> Result<InfiniteHistory, LassoError> {
    InfiniteHistory::new(
        History::from_events_unchecked(prefix.to_vec()),
        History::from_events_unchecked(cycle.to_vec()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, ProcessClass};
    use crate::properties::{GlobalProgress, LocalProgress, TmLivenessProperty};
    use tm_core::{HistoryBuilder, ProcessId, TVarId};

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);

    #[test]
    fn empty_history_has_no_lasso() {
        assert!(detect_lasso(&History::new(), 2).is_none());
    }

    #[test]
    fn aperiodic_history_has_no_lasso() {
        // Values strictly increase: no exact repetition.
        let mut b = HistoryBuilder::new();
        for v in 0..10 {
            b.read(P1, X, v).write_ok(P1, X, v + 1).commit(P1);
        }
        let h = b.build().unwrap();
        assert!(detect_lasso(&h, 2).is_none());
    }

    #[test]
    fn pure_cycle_detected_with_empty_prefix() {
        let mut b = HistoryBuilder::new();
        for _ in 0..6 {
            b.read(P1, X, 0).commit(P1);
        }
        let h = b.build().unwrap();
        let lasso = detect_lasso(&h, 3).expect("periodic");
        assert!(lasso.prefix().is_empty());
        // One transaction = 4 events: read, value, tryC, C.
        assert_eq!(lasso.cycle().len(), 4);
    }

    #[test]
    fn smallest_period_is_preferred() {
        let mut b = HistoryBuilder::new();
        for _ in 0..8 {
            b.read(P1, X, 0).commit(P1);
        }
        let h = b.build().unwrap();
        let lasso = detect_lasso(&h, 2).expect("periodic");
        assert_eq!(lasso.cycle().len(), 4);
    }

    #[test]
    fn prefix_plus_cycle_detected() {
        let mut b = HistoryBuilder::new();
        // Aperiodic prefix: one committed write of a unique value.
        b.write_ok(P1, X, 42).commit(P1);
        for _ in 0..5 {
            b.read(P1, X, 42).commit(P1).read_abort(P2, X);
        }
        let h = b.build().unwrap();
        let lasso = detect_lasso(&h, 3).expect("periodic");
        assert!(lasso.prefix().len() >= 4);
        assert_eq!(classify(&lasso, P1), ProcessClass::Progressing);
        assert_eq!(classify(&lasso, P2), ProcessClass::Starving);
    }

    #[test]
    fn trailing_partial_repetition_is_tolerated() {
        let mut b = HistoryBuilder::new();
        for _ in 0..5 {
            b.read(P1, X, 0).commit(P1);
        }
        b.read(P1, X, 0); // half a transaction
        let h = b.build().unwrap();
        let lasso = detect_lasso(&h, 2).expect("periodic with partial tail");
        assert_eq!(lasso.cycle().len(), 4);
    }

    #[test]
    fn detected_lasso_supports_property_verdicts() {
        // The Figure 6 pattern unrolled 6 times: detection recovers a lasso
        // on which global-but-not-local progress is decidable.
        let mut b = HistoryBuilder::new();
        for _ in 0..6 {
            b.read(P1, X, 0)
                .write_ok(P1, X, 1)
                .commit(P1)
                .read(P2, X, 1)
                .write_ok(P2, X, 0)
                .abort_on_try_commit(P2)
                .read(P1, X, 1)
                .write_ok(P1, X, 0)
                .commit(P1)
                .read(P2, X, 0)
                .write_ok(P2, X, 1)
                .abort_on_try_commit(P2);
        }
        let h = b.build().unwrap();
        let lasso = detect_lasso(&h, 3).expect("periodic");
        assert!(GlobalProgress.contains(&lasso));
        assert!(!LocalProgress.contains(&lasso));
    }

    #[test]
    fn min_repeats_is_respected() {
        let mut b = HistoryBuilder::new();
        for _ in 0..3 {
            b.read(P1, X, 0).commit(P1);
        }
        let h = b.build().unwrap();
        assert!(detect_lasso(&h, 3).is_some());
        assert!(detect_lasso(&h, 4).is_none());
    }

    #[test]
    fn min_repeats_zero_is_clamped_to_one() {
        // 0 would make "ends with 0 repetitions" vacuously true for any
        // period; the clamp makes it behave exactly like 1.
        let mut b = HistoryBuilder::new();
        for _ in 0..2 {
            b.read(P1, X, 0).commit(P1);
        }
        let h = b.build().unwrap();
        let zero = detect_lasso(&h, 0).expect("clamped to 1");
        let one = detect_lasso(&h, 1).expect("one repetition suffices");
        assert_eq!(zero, one);
        assert!(detect_lasso(&History::new(), 0).is_none());
    }

    #[test]
    fn min_repeats_one_accepts_a_single_occurrence() {
        // One committed transaction, no textual repetition: with
        // min_repeats 1 a single occurrence counts, and the smallest
        // *valid* period wins — the trailing `tryC·C` pair (an empty
        // transaction committing forever), not the full transaction.
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .commit(P1)
            .build()
            .unwrap();
        let lasso = detect_lasso(&h, 1).expect("single occurrence");
        assert_eq!(lasso.prefix().len(), 2);
        assert_eq!(lasso.cycle().len(), 2);
        assert_eq!(lasso.commits_per_cycle(P1), 1);
        assert_eq!(classify(&lasso, P1), ProcessClass::Progressing);
        // With min_repeats 2 the same history is aperiodic.
        assert!(detect_lasso(&h, 2).is_none());
    }

    #[test]
    fn crash_only_cycle_is_recovered_from_its_unrolling() {
        // crash_only_lasso: p1 reads once (prefix), p2 reads forever
        // without ever invoking tryC — the cycle contains only the
        // "crash-adjacent" faulty behaviours (p1 crashed, p2 parasitic).
        let reference = crate::figures::crash_only_lasso();
        let unrolled = reference.unroll(5);
        let detected = detect_lasso(&unrolled, 3).expect("periodic");
        assert_eq!(detected.cycle(), reference.cycle());
        assert_eq!(classify(&detected, P1), ProcessClass::Crashed);
        assert_eq!(classify(&detected, P2), ProcessClass::Parasitic);
        // All participants faulty: every TM-liveness property holds
        // vacuously on the recovered lasso, as on the reference.
        assert!(LocalProgress.contains(&detected));
        assert!(GlobalProgress.contains(&detected));
    }

    #[test]
    fn lasso_from_cycle_builds_explorer_cycles() {
        let reference = crate::figures::figure_6();
        let prefix = reference.prefix().events();
        let cycle = reference.cycle().events();
        let rebuilt = lasso_from_cycle(prefix, cycle).expect("valid cycle");
        assert_eq!(&rebuilt, &reference);
    }

    #[test]
    fn lasso_from_cycle_propagates_rejections() {
        use crate::lasso::LassoError;
        use tm_core::Event;
        // Empty cycle.
        assert_eq!(lasso_from_cycle(&[], &[]), Err(LassoError::EmptyCycle));
        // A cycle that stacks pending invocations at the boundary.
        let cycle = [Event::read(P1, X)];
        assert!(matches!(
            lasso_from_cycle(&[], &cycle),
            Err(LassoError::InconsistentCycle { .. })
        ));
    }
}
