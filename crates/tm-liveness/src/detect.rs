//! Lasso detection: from finite recorded runs to infinite histories.
//!
//! The impossibility games and simulations produce *finite* histories; the
//! paper's liveness properties are defined on *infinite* ones. When a
//! recorded run becomes eventually periodic — as the adversary games do
//! once values are drawn from a finite domain — the run **is** a finite
//! unrolling of a lasso, and this module recovers it: the detected
//! `prefix · cycle^ω` is the infinite history the game would produce if
//! run forever, and every classification of [`crate::classify`] applies to
//! it exactly. This closes the loop between executing a TM and the
//! paper's formal liveness verdicts (see the `thm1_liveness_bridge`
//! harness).

use tm_core::History;

use crate::lasso::InfiniteHistory;

/// Searches for the smallest period `p` such that the history ends with at
/// least `min_repeats` exact repetitions of a `p`-event cycle (a trailing
/// partial repetition is allowed), and returns the corresponding validated
/// lasso.
///
/// Returns `None` if no such periodic suffix exists or if the resulting
/// `(prefix, cycle)` pair is not a well-formed lasso (e.g. the period cuts
/// an invocation/response pair across the boundary in an inconsistent
/// way).
///
/// Complexity: `O(len²)` worst case; intended for harness-scale histories
/// (≲ 10⁵ events).
///
/// # Examples
///
/// ```
/// use tm_core::{HistoryBuilder, ProcessId, TVarId};
/// use tm_liveness::{detect_lasso, is_starving, makes_progress};
///
/// let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
/// let mut b = HistoryBuilder::new();
/// for _ in 0..8 {
///     b.read(p1, x, 0).commit(p1).read_abort(p2, x);
/// }
/// let h = b.build()?;
/// let lasso = detect_lasso(&h, 3).expect("periodic");
/// assert!(makes_progress(&lasso, p1));
/// assert!(is_starving(&lasso, p2));
/// # Ok::<(), tm_core::WellFormednessError>(())
/// ```
pub fn detect_lasso(history: &History, min_repeats: usize) -> Option<InfiniteHistory> {
    let events = history.events();
    let n = events.len();
    let min_repeats = min_repeats.max(1);
    if n == 0 {
        return None;
    }
    for period in 1..=n / min_repeats {
        // Largest suffix in which events[i] == events[i + period].
        let mut start = n.saturating_sub(period);
        while start > 0 && events[start - 1] == events[start - 1 + period] {
            start -= 1;
        }
        let suffix_len = n - start;
        if suffix_len < min_repeats * period {
            continue;
        }
        // Align the cycle to begin right after the prefix.
        let prefix = History::from_events_unchecked(events[..start].to_vec());
        let cycle = History::from_events_unchecked(events[start..start + period].to_vec());
        if let Ok(lasso) = InfiniteHistory::new(prefix, cycle) {
            return Some(lasso);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, ProcessClass};
    use crate::properties::{GlobalProgress, LocalProgress, TmLivenessProperty};
    use tm_core::{HistoryBuilder, ProcessId, TVarId};

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);

    #[test]
    fn empty_history_has_no_lasso() {
        assert!(detect_lasso(&History::new(), 2).is_none());
    }

    #[test]
    fn aperiodic_history_has_no_lasso() {
        // Values strictly increase: no exact repetition.
        let mut b = HistoryBuilder::new();
        for v in 0..10 {
            b.read(P1, X, v).write_ok(P1, X, v + 1).commit(P1);
        }
        let h = b.build().unwrap();
        assert!(detect_lasso(&h, 2).is_none());
    }

    #[test]
    fn pure_cycle_detected_with_empty_prefix() {
        let mut b = HistoryBuilder::new();
        for _ in 0..6 {
            b.read(P1, X, 0).commit(P1);
        }
        let h = b.build().unwrap();
        let lasso = detect_lasso(&h, 3).expect("periodic");
        assert!(lasso.prefix().is_empty());
        // One transaction = 4 events: read, value, tryC, C.
        assert_eq!(lasso.cycle().len(), 4);
    }

    #[test]
    fn smallest_period_is_preferred() {
        let mut b = HistoryBuilder::new();
        for _ in 0..8 {
            b.read(P1, X, 0).commit(P1);
        }
        let h = b.build().unwrap();
        let lasso = detect_lasso(&h, 2).expect("periodic");
        assert_eq!(lasso.cycle().len(), 4);
    }

    #[test]
    fn prefix_plus_cycle_detected() {
        let mut b = HistoryBuilder::new();
        // Aperiodic prefix: one committed write of a unique value.
        b.write_ok(P1, X, 42).commit(P1);
        for _ in 0..5 {
            b.read(P1, X, 42).commit(P1).read_abort(P2, X);
        }
        let h = b.build().unwrap();
        let lasso = detect_lasso(&h, 3).expect("periodic");
        assert!(lasso.prefix().len() >= 4);
        assert_eq!(classify(&lasso, P1), ProcessClass::Progressing);
        assert_eq!(classify(&lasso, P2), ProcessClass::Starving);
    }

    #[test]
    fn trailing_partial_repetition_is_tolerated() {
        let mut b = HistoryBuilder::new();
        for _ in 0..5 {
            b.read(P1, X, 0).commit(P1);
        }
        b.read(P1, X, 0); // half a transaction
        let h = b.build().unwrap();
        let lasso = detect_lasso(&h, 2).expect("periodic with partial tail");
        assert_eq!(lasso.cycle().len(), 4);
    }

    #[test]
    fn detected_lasso_supports_property_verdicts() {
        // The Figure 6 pattern unrolled 6 times: detection recovers a lasso
        // on which global-but-not-local progress is decidable.
        let mut b = HistoryBuilder::new();
        for _ in 0..6 {
            b.read(P1, X, 0)
                .write_ok(P1, X, 1)
                .commit(P1)
                .read(P2, X, 1)
                .write_ok(P2, X, 0)
                .abort_on_try_commit(P2)
                .read(P1, X, 1)
                .write_ok(P1, X, 0)
                .commit(P1)
                .read(P2, X, 0)
                .write_ok(P2, X, 1)
                .abort_on_try_commit(P2);
        }
        let h = b.build().unwrap();
        let lasso = detect_lasso(&h, 3).expect("periodic");
        assert!(GlobalProgress.contains(&lasso));
        assert!(!LocalProgress.contains(&lasso));
    }

    #[test]
    fn min_repeats_is_respected() {
        let mut b = HistoryBuilder::new();
        for _ in 0..3 {
            b.read(P1, X, 0).commit(P1);
        }
        let h = b.build().unwrap();
        assert!(detect_lasso(&h, 3).is_some());
        assert!(detect_lasso(&h, 4).is_none());
    }
}
