//! Graphviz export of reachable-state graphs.
//!
//! Figure 15 of the paper is a drawing of `Fgp`'s ten-state graph; this
//! module renders any [`StateGraph`] in DOT format so the figure can be
//! regenerated graphically (`dot -Tpdf`), and counterexample automata can
//! be inspected visually.

use std::fmt::Write as _;

use crate::enumerate::StateGraph;

/// Renders the graph in Graphviz DOT format.
///
/// `label` renders each state's node label; the initial state (index 0)
/// is drawn with a double circle, matching automata convention.
pub fn to_dot<S>(graph: &StateGraph<S>, name: &str, mut label: impl FnMut(&S) -> String) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
    for (i, state) in graph.states.iter().enumerate() {
        let shape = if i == 0 { "doublecircle" } else { "circle" };
        let _ = writeln!(
            out,
            "  s{i} [shape={shape}, label=\"s{}\\n{}\"];",
            i + 1,
            escape(&label(state))
        );
    }
    for (from, event, to) in &graph.edges {
        let _ = writeln!(
            out,
            "  s{from} -> s{to} [label=\"{}\"];",
            escape(&event.to_string())
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_states;
    use crate::fgp::{Fgp, FgpVariant};

    #[test]
    fn figure_15_graph_renders_as_dot() {
        let graph = enumerate_states(&Fgp::new(1, 1, FgpVariant::CpOnly), &[0, 1], 1_000).unwrap();
        let dot = to_dot(&graph, "fgp_fig15", |s| format!("val={}", s.val(0, 0)));
        assert!(dot.starts_with("digraph fgp_fig15 {"));
        assert!(dot.ends_with("}\n"));
        // Ten states, each with a node declaration line.
        let node_lines = dot
            .lines()
            .filter(|l| l.trim_start().starts_with('s') && l.contains("[shape="))
            .count();
        assert_eq!(node_lines, 10);
        assert!(dot.contains("doublecircle")); // initial state marked
        assert!(dot.contains("->"));
    }

    #[test]
    fn quotes_in_labels_are_escaped() {
        let graph = enumerate_states(&Fgp::new(1, 1, FgpVariant::CpOnly), &[0], 1_000).unwrap();
        let dot = to_dot(&graph, "g", |_| "a\"b".to_string());
        assert!(dot.contains("a\\\"b"));
    }
}
