//! The paper's `Fgp` automaton (§6): opacity + global progress in any
//! fault-prone system.
//!
//! Each state is a tuple `s = (Status, CP, Val, f)`:
//!
//! * `Status[k] ∈ {c, a}` — whether `pk`'s next response may be normal
//!   (`c`) or must be an abort (`a`, set when another process committed
//!   while `pk` was concurrent to it);
//! * `CP ⊆ P` — the current group of mutually concurrent processes none of
//!   which has committed;
//! * `Val[k][j]` — the value of t-variable `xj` as seen by `pk`;
//! * `f(pk)` — `pk`'s pending invocation, or `⊥`.
//!
//! # Variants (see DESIGN.md, D2 and D-Fgp-rollback)
//!
//! The paper's prose and formal transition rules disagree in two places,
//! and the formal rules contain an outright bug; we implement all three
//! readings so the differences are mechanically checkable:
//!
//! * [`FgpVariant::Literal`] — the formal transition relation *verbatim*.
//!   Its write rule updates `Val[k][j]` at invocation time even when
//!   `Status[k] = a` (the write will be answered by an abort), and nothing
//!   ever rolls the value back, so the process's **next** transaction can
//!   read its own aborted write. This variant is **not opaque** — the test
//!   suite and the model checker exhibit concrete non-opaque histories.
//! * [`FgpVariant::Strict`] — the formal rules with the minimal fix:
//!   a write invocation updates `Val` only when `Status[k] = c`. Since
//!   `Status[k] = a` can only be set by a commit, and every commit
//!   overwrites all rows of `Val`, no aborted write can survive into a
//!   later transaction. Commits abort **every** other process, per the
//!   formal `C_k` rule.
//! * [`FgpVariant::CpOnly`] — the prose semantics: processes join `CP`
//!   only when `Status[k] = c`, and a commit aborts only the members of
//!   `CP`, not every process. This matches the example history of
//!   Figure 16. Default.
//!
//! All variants produce exactly the 10-state reachable graph of Figure 15
//! for one process and one binary t-variable (a single process never has
//! `Status = a`, where the variants differ).

use serde::{Deserialize, Serialize};

use tm_core::{Invocation, ProcessId, Response, TVarId, Value, INITIAL_VALUE};

use crate::ioa::TmAutomaton;

/// Which reading of the paper's `Fgp` definition to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FgpVariant {
    /// The formal transition rules verbatim — **known non-opaque** (aborted
    /// writes leak into the next transaction's reads).
    Literal,
    /// Formal rules + status-gated writes; commit aborts all other
    /// processes.
    Strict,
    /// Prose rules: commit aborts only the concurrent group `CP`. Default.
    #[default]
    CpOnly,
}

/// Per-process status: `c` (may receive normal responses) or `a` (next
/// response is an abort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PStatus {
    /// `c` in the paper.
    Clear,
    /// `a` in the paper.
    Doomed,
}

/// The concurrent group `CP` as a bitmask over process indices.
///
/// The automaton supports at most 64 processes (far beyond any
/// enumerable state space); a machine word keeps `FgpState` clones —
/// the unit of work of the model checker's `fork` — allocation-free for
/// this component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct CpSet(u64);

impl CpSet {
    /// The empty group.
    pub fn new() -> Self {
        CpSet(0)
    }

    /// Adds process `k`.
    pub fn insert(&mut self, k: usize) {
        debug_assert!(k < 64);
        self.0 |= 1 << k;
    }

    /// Empties the group.
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Whether process `k` is in the group.
    pub fn contains(&self, k: usize) -> bool {
        k < 64 && self.0 & (1 << k) != 0
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of processes in the group.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// The member process indices, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.0;
        (0..64).filter(move |k| bits & (1 << k) != 0)
    }
}

/// A state `(Status, CP, Val, f)` of the `Fgp` automaton.
///
/// `Val` is stored row-major in one flat vector (row `k` = process
/// `k`'s view), so cloning a state — the automaton API is functional,
/// and the model checker forks states on every tree edge — costs three
/// vector allocations regardless of the t-variable count.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct FgpState {
    /// `Status[k]` for each process: bit `k` set means `Doomed` (`a`).
    /// A machine word, like [`CpSet`], so state clones stay cheap.
    doomed: u64,
    /// The concurrent group `CP`.
    pub cp: CpSet,
    /// `Val[k][j]` flattened to `val[k * tvars + j]`.
    val: Vec<Value>,
    /// Row length of `val` (the t-variable count).
    tvars: usize,
    /// `f(pk)`: pending invocation per process.
    pub pending: Vec<Option<Invocation>>,
}

// Hand-written so `clone_from` reuses the target's vector buffers — the
// model checker reforks states through it on every recycled tree edge.
impl Clone for FgpState {
    fn clone(&self) -> Self {
        FgpState {
            doomed: self.doomed,
            cp: self.cp,
            val: self.val.clone(),
            tvars: self.tvars,
            pending: self.pending.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.doomed = source.doomed;
        self.cp = source.cp;
        self.val.clone_from(&source.val);
        self.tvars = source.tvars;
        self.pending.clone_from(&source.pending);
    }
}

impl FgpState {
    /// `Val[k][j]`: process `k`'s view of t-variable `j`.
    pub fn val(&self, k: usize, j: usize) -> Value {
        self.val[k * self.tvars + j]
    }

    fn val_mut(&mut self, k: usize, j: usize) -> &mut Value {
        &mut self.val[k * self.tvars + j]
    }

    /// `Status[k]`.
    pub fn status(&self, k: usize) -> PStatus {
        if self.doomed & (1 << k) != 0 {
            PStatus::Doomed
        } else {
            PStatus::Clear
        }
    }

    fn set_status(&mut self, k: usize, status: PStatus) {
        match status {
            PStatus::Doomed => self.doomed |= 1 << k,
            PStatus::Clear => self.doomed &= !(1 << k),
        }
    }
}

/// The `Fgp` TM automaton for a fixed number of processes and t-variables.
///
/// # Examples
///
/// ```
/// use tm_automata::{Fgp, FgpVariant, Runner};
/// use tm_core::{Invocation, ProcessId, Response, TVarId};
///
/// let mut r = Runner::new(Fgp::new(2, 1, FgpVariant::CpOnly));
/// let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
/// // p1 reads, p2 reads+writes+commits, then p1's write must abort.
/// assert_eq!(r.invoke_and_deliver(p1, Invocation::Read(x)).unwrap(), Some(Response::Value(0)));
/// assert_eq!(r.invoke_and_deliver(p2, Invocation::Read(x)).unwrap(), Some(Response::Value(0)));
/// assert_eq!(r.invoke_and_deliver(p2, Invocation::Write(x, 1)).unwrap(), Some(Response::Ok));
/// assert_eq!(r.invoke_and_deliver(p2, Invocation::TryCommit).unwrap(), Some(Response::Committed));
/// assert_eq!(r.invoke_and_deliver(p1, Invocation::Write(x, 1)).unwrap(), Some(Response::Aborted));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fgp {
    processes: usize,
    tvars: usize,
    variant: FgpVariant,
}

impl Fgp {
    /// Creates an `Fgp` automaton for `processes` processes and `tvars`
    /// t-variables.
    ///
    /// # Panics
    ///
    /// Panics if `processes` or `tvars` is zero.
    pub fn new(processes: usize, tvars: usize, variant: FgpVariant) -> Self {
        assert!(processes > 0, "need at least one process");
        assert!(tvars > 0, "need at least one t-variable");
        Fgp {
            processes,
            tvars,
            variant,
        }
    }

    /// The variant in use.
    pub fn variant(&self) -> FgpVariant {
        self.variant
    }
}

impl TmAutomaton for Fgp {
    type State = FgpState;

    fn initial_state(&self) -> FgpState {
        FgpState {
            doomed: 0,
            cp: CpSet::new(),
            val: vec![INITIAL_VALUE; self.processes * self.tvars],
            tvars: self.tvars,
            pending: vec![None; self.processes],
        }
    }

    fn process_count(&self) -> usize {
        self.processes
    }

    fn tvar_count(&self) -> usize {
        self.tvars
    }

    fn apply_invocation(
        &self,
        state: &FgpState,
        process: ProcessId,
        invocation: Invocation,
    ) -> Option<FgpState> {
        let mut s = state.clone();
        self.apply_invocation_mut(&mut s, process, invocation)
            .then_some(s)
    }

    fn enabled_response(
        &self,
        state: &FgpState,
        process: ProcessId,
    ) -> Option<(Response, FgpState)> {
        let mut s = state.clone();
        let response = self.enabled_response_mut(&mut s, process)?;
        Some((response, s))
    }

    fn apply_invocation_mut(
        &self,
        s: &mut FgpState,
        process: ProcessId,
        invocation: Invocation,
    ) -> bool {
        let k = process.index();
        if k >= self.processes || s.pending[k].is_some() {
            return false;
        }
        if let Some(x) = invocation.tvar() {
            if x.index() >= self.tvars {
                return false;
            }
        }
        s.pending[k] = Some(invocation);
        // CP joining: the formal rules add on every invocation; the prose
        // adds only processes whose status is `c`.
        let joins = match self.variant {
            FgpVariant::Literal | FgpVariant::Strict => true,
            FgpVariant::CpOnly => s.status(k) == PStatus::Clear,
        };
        if joins {
            s.cp.insert(k);
        }
        // The formal write rule updates Val at invocation time. Literal
        // does so unconditionally (the documented bug); the fixed variants
        // gate it on Status[k] = c so an aborted write cannot pollute the
        // process's view.
        if let Invocation::Write(x, v) = invocation {
            let applies = match self.variant {
                FgpVariant::Literal => true,
                FgpVariant::Strict | FgpVariant::CpOnly => s.status(k) == PStatus::Clear,
            };
            if applies {
                *s.val_mut(k, x.index()) = v;
            }
        }
        true
    }

    fn enabled_response_mut(&self, s: &mut FgpState, process: ProcessId) -> Option<Response> {
        let k = process.index();
        let inv = (*s.pending.get(k)?)?;
        s.pending[k] = None;
        match s.status(k) {
            PStatus::Doomed => {
                // A_k: the only enabled response; status resets to c.
                s.set_status(k, PStatus::Clear);
                Some(Response::Aborted)
            }
            PStatus::Clear => match inv {
                Invocation::Read(x) => Some(Response::Value(s.val(k, x.index()))),
                Invocation::Write(..) => Some(Response::Ok),
                Invocation::TryCommit => {
                    // C_k: doom the losers, sync every view to the
                    // committer's, empty CP.
                    match self.variant {
                        FgpVariant::Literal | FgpVariant::Strict => {
                            for k2 in 0..self.processes {
                                if k2 != k {
                                    s.set_status(k2, PStatus::Doomed);
                                }
                            }
                        }
                        FgpVariant::CpOnly => {
                            // Reads CP as of the pre-transition state:
                            // nothing above mutates it.
                            let cp = s.cp;
                            for k2 in cp.iter() {
                                if k2 != k {
                                    s.set_status(k2, PStatus::Doomed);
                                }
                            }
                        }
                    }
                    // Sync every view to the committer's row (in place —
                    // the committer's own row is already correct).
                    let tvars = self.tvars;
                    for k2 in 0..self.processes {
                        if k2 != k {
                            s.val.copy_within(k * tvars..(k + 1) * tvars, k2 * tvars);
                        }
                    }
                    s.cp.clear();
                    Some(Response::Committed)
                }
            },
        }
    }
}

/// Convenience: the committed view of a t-variable at a state (the row of
/// any process is the committed state immediately after a commit; between
/// commits the rows of non-writers remain the committed state).
pub fn view_of(state: &FgpState, process: ProcessId, x: TVarId) -> Value {
    state.val(process.index(), x.index())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ioa::Runner;
    use tm_core::{Invocation as Inv, TVarId};
    use tm_safety::{is_opaque, IncrementalChecker, Mode};

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const P3: ProcessId = ProcessId(2);
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    fn runner(n: usize, m: usize, variant: FgpVariant) -> Runner<Fgp> {
        Runner::new(Fgp::new(n, m, variant))
    }

    #[test]
    fn sequential_transactions_commit() {
        for variant in [FgpVariant::Literal, FgpVariant::Strict, FgpVariant::CpOnly] {
            let mut r = runner(1, 1, variant);
            assert_eq!(
                r.invoke_and_deliver(P1, Inv::Read(X)).unwrap(),
                Some(Response::Value(0))
            );
            assert_eq!(
                r.invoke_and_deliver(P1, Inv::Write(X, 1)).unwrap(),
                Some(Response::Ok)
            );
            assert_eq!(
                r.invoke_and_deliver(P1, Inv::TryCommit).unwrap(),
                Some(Response::Committed)
            );
            assert_eq!(
                r.invoke_and_deliver(P1, Inv::Read(X)).unwrap(),
                Some(Response::Value(1))
            );
            assert!(is_opaque(r.history()));
        }
    }

    #[test]
    fn first_committer_wins_concurrent_group() {
        for variant in [FgpVariant::Strict, FgpVariant::CpOnly] {
            let mut r = runner(2, 1, variant);
            r.invoke_and_deliver(P1, Inv::Read(X)).unwrap();
            r.invoke_and_deliver(P2, Inv::Read(X)).unwrap();
            r.invoke_and_deliver(P2, Inv::Write(X, 1)).unwrap();
            assert_eq!(
                r.invoke_and_deliver(P2, Inv::TryCommit).unwrap(),
                Some(Response::Committed)
            );
            // p1 was concurrent: its next operation aborts.
            assert_eq!(
                r.invoke_and_deliver(P1, Inv::Write(X, 1)).unwrap(),
                Some(Response::Aborted)
            );
            // p1's fresh transaction then sees the committed value.
            assert_eq!(
                r.invoke_and_deliver(P1, Inv::Read(X)).unwrap(),
                Some(Response::Value(1))
            );
            assert!(is_opaque(r.history()));
        }
    }

    #[test]
    fn own_writes_are_visible_before_commit() {
        let mut r = runner(2, 2, FgpVariant::CpOnly);
        r.invoke_and_deliver(P1, Inv::Write(X, 7)).unwrap();
        assert_eq!(
            r.invoke_and_deliver(P1, Inv::Read(X)).unwrap(),
            Some(Response::Value(7))
        );
        // ...but invisible to p2.
        assert_eq!(
            r.invoke_and_deliver(P2, Inv::Read(X)).unwrap(),
            Some(Response::Value(0))
        );
    }

    #[test]
    fn literal_variant_leaks_aborted_write() {
        // The documented bug in the paper's formal rules: p1's *aborted*
        // write persists in Val[1] and is read by p1's next transaction.
        let mut r = runner(2, 1, FgpVariant::Literal);
        r.invoke_and_deliver(P1, Inv::Read(X)).unwrap(); // p1 joins CP
        r.invoke_and_deliver(P2, Inv::Read(X)).unwrap();
        r.invoke_and_deliver(P2, Inv::Write(X, 1)).unwrap();
        r.invoke_and_deliver(P2, Inv::TryCommit).unwrap(); // commit: x = 1
                                                           // p1 is doomed; its write invocation still updates Val[1][x] = 5.
        assert_eq!(
            r.invoke_and_deliver(P1, Inv::Write(X, 5)).unwrap(),
            Some(Response::Aborted)
        );
        // p1's *new* transaction reads 5 — a value no one ever committed.
        assert_eq!(
            r.invoke_and_deliver(P1, Inv::Read(X)).unwrap(),
            Some(Response::Value(5))
        );
        assert_eq!(
            r.invoke_and_deliver(P1, Inv::TryCommit).unwrap(),
            Some(Response::Committed)
        );
        assert!(!is_opaque(r.history()), "literal Fgp must violate opacity");
    }

    #[test]
    fn fixed_variants_do_not_leak_aborted_writes() {
        for variant in [FgpVariant::Strict, FgpVariant::CpOnly] {
            let mut r = runner(2, 1, variant);
            r.invoke_and_deliver(P1, Inv::Read(X)).unwrap();
            r.invoke_and_deliver(P2, Inv::Read(X)).unwrap();
            r.invoke_and_deliver(P2, Inv::Write(X, 1)).unwrap();
            r.invoke_and_deliver(P2, Inv::TryCommit).unwrap();
            assert_eq!(
                r.invoke_and_deliver(P1, Inv::Write(X, 5)).unwrap(),
                Some(Response::Aborted)
            );
            assert_eq!(
                r.invoke_and_deliver(P1, Inv::Read(X)).unwrap(),
                Some(Response::Value(1)),
                "{variant:?} must not leak the aborted write"
            );
            assert!(is_opaque(r.history()));
        }
    }

    #[test]
    fn strict_dooms_everyone_cponly_dooms_only_cp() {
        // p3 has no transaction when p2 commits.
        let mut strict = runner(3, 1, FgpVariant::Strict);
        let mut cponly = runner(3, 1, FgpVariant::CpOnly);
        for r in [&mut strict, &mut cponly] {
            r.invoke_and_deliver(P2, Inv::Write(X, 1)).unwrap();
            r.invoke_and_deliver(P2, Inv::TryCommit).unwrap();
        }
        // Strict: p3's first-ever operation is aborted.
        assert_eq!(
            strict.invoke_and_deliver(P3, Inv::Read(X)).unwrap(),
            Some(Response::Aborted)
        );
        // CpOnly: p3 was not concurrent, so it reads normally.
        assert_eq!(
            cponly.invoke_and_deliver(P3, Inv::Read(X)).unwrap(),
            Some(Response::Value(1))
        );
    }

    #[test]
    fn figure_16_style_history_with_two_tvars() {
        // Three processes, two t-variables, CpOnly: reconstruct the shape
        // of the paper's Figure 16 history Hex (see EXPERIMENTS.md for the
        // exact interleaving we validate).
        let mut r = runner(3, 2, FgpVariant::CpOnly);
        // p1: x.read → 0, x.write(1).
        assert_eq!(
            r.invoke_and_deliver(P1, Inv::Read(X)).unwrap(),
            Some(Response::Value(0))
        );
        r.invoke_and_deliver(P1, Inv::Write(X, 1)).unwrap();
        // p3: y.read → 0, y.write(1).
        assert_eq!(
            r.invoke_and_deliver(P3, Inv::Read(Y)).unwrap(),
            Some(Response::Value(0))
        );
        r.invoke_and_deliver(P3, Inv::Write(Y, 1)).unwrap();
        // p1 commits first: p3 (concurrent) is doomed.
        assert_eq!(
            r.invoke_and_deliver(P1, Inv::TryCommit).unwrap(),
            Some(Response::Committed)
        );
        // p2 writes y and is aborted? No: p2 starts fresh after the commit,
        // so it proceeds; p3's pending fate: doomed.
        assert_eq!(
            r.invoke_and_deliver(P3, Inv::TryCommit).unwrap(),
            Some(Response::Aborted)
        );
        // p3 retries and commits.
        assert_eq!(
            r.invoke_and_deliver(P3, Inv::Read(Y)).unwrap(),
            Some(Response::Value(0))
        );
        r.invoke_and_deliver(P3, Inv::Write(Y, 1)).unwrap();
        assert_eq!(
            r.invoke_and_deliver(P3, Inv::TryCommit).unwrap(),
            Some(Response::Committed)
        );
        // p2 reads both committed values.
        assert_eq!(
            r.invoke_and_deliver(P2, Inv::Read(Y)).unwrap(),
            Some(Response::Value(1))
        );
        assert_eq!(
            r.invoke_and_deliver(P2, Inv::Read(X)).unwrap(),
            Some(Response::Value(1))
        );
        assert_eq!(
            r.invoke_and_deliver(P2, Inv::TryCommit).unwrap(),
            Some(Response::Committed)
        );
        assert!(is_opaque(r.history()));
    }

    #[test]
    fn long_random_run_is_commit_order_opaque() {
        // 3 processes, 2 tvars, fixed pseudo-random schedule: every prefix
        // certified opaque by the incremental checker.
        for variant in [FgpVariant::Strict, FgpVariant::CpOnly] {
            let mut r = runner(3, 2, variant);
            let mut checker = IncrementalChecker::new(Mode::Opacity);
            let mut seed = 0x9E3779B97F4A7C15u64;
            let mut rng = move || {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed
            };
            for _ in 0..3000 {
                let p = ProcessId((rng() % 3) as usize);
                let x = TVarId((rng() % 2) as usize);
                let inv = match rng() % 4 {
                    0 => Inv::Read(x),
                    1 | 2 => Inv::Write(x, rng() % 5),
                    _ => Inv::TryCommit,
                };
                let _ = r.invoke_and_deliver(p, inv).unwrap();
            }
            checker
                .push_all(r.history().iter().copied())
                .expect("every Fgp prefix must be opaque");
        }
    }

    #[test]
    fn doomed_process_aborts_exactly_once() {
        let mut r = runner(2, 1, FgpVariant::Strict);
        r.invoke_and_deliver(P1, Inv::Read(X)).unwrap();
        r.invoke_and_deliver(P2, Inv::Write(X, 1)).unwrap();
        r.invoke_and_deliver(P2, Inv::TryCommit).unwrap();
        assert_eq!(
            r.invoke_and_deliver(P1, Inv::Read(X)).unwrap(),
            Some(Response::Aborted)
        );
        // After the single abort the process is clear again.
        assert_eq!(
            r.invoke_and_deliver(P1, Inv::Read(X)).unwrap(),
            Some(Response::Value(1))
        );
    }

    #[test]
    fn view_of_exposes_val() {
        let fgp = Fgp::new(2, 1, FgpVariant::CpOnly);
        let s = fgp.initial_state();
        assert_eq!(view_of(&s, P1, X), 0);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_panics() {
        let _ = Fgp::new(0, 1, FgpVariant::CpOnly);
    }
}
