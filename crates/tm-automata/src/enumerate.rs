//! Reachable-state enumeration of TM automata.
//!
//! Figure 15 of the paper depicts the full reachable state graph of `Fgp`
//! for one process and one binary t-variable — exactly ten states. This
//! module computes such graphs by breadth-first exploration over a finite
//! value domain, labelling edges with the triggering event.

use std::collections::HashMap;

use tm_core::{Event, Invocation, ProcessId, TVarId, Value};

use crate::ioa::TmAutomaton;

/// The reachable state graph of an automaton over a finite value domain.
#[derive(Debug, Clone)]
pub struct StateGraph<S> {
    /// Reachable states in BFS discovery order; index 0 is the initial
    /// state.
    pub states: Vec<S>,
    /// Labelled edges `(from, event, to)` between state indices.
    pub edges: Vec<(usize, Event, usize)>,
}

impl<S> StateGraph<S> {
    /// Number of reachable states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Whether any edge is labelled with an abort event.
    pub fn has_abort_edges(&self) -> bool {
        self.edges.iter().any(|(_, e, _)| e.is_abort())
    }

    /// Events labelling the out-edges of state `index`.
    pub fn out_edges(&self, index: usize) -> impl Iterator<Item = &(usize, Event, usize)> {
        self.edges.iter().filter(move |(from, _, _)| *from == index)
    }
}

/// Error: exploration exceeded the state budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateBudgetExceeded {
    /// The configured budget.
    pub budget: usize,
}

impl core::fmt::Display for StateBudgetExceeded {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "state enumeration exceeded budget of {}", self.budget)
    }
}

impl std::error::Error for StateBudgetExceeded {}

/// Enumerates all states of `automaton` reachable with written values drawn
/// from `values`.
///
/// Every process may, at any state where it has no pending invocation,
/// invoke a read of any t-variable, a write of any value in `values` to any
/// t-variable, or `tryC`; pending invocations may receive their enabled
/// response. Exploration stops with an error if more than `budget` states
/// are discovered.
///
/// # Errors
///
/// [`StateBudgetExceeded`] if the reachable graph is larger than `budget`.
pub fn enumerate_states<A: TmAutomaton>(
    automaton: &A,
    values: &[Value],
    budget: usize,
) -> Result<StateGraph<A::State>, StateBudgetExceeded> {
    let mut index: HashMap<A::State, usize> = HashMap::new();
    let mut states: Vec<A::State> = Vec::new();
    let mut edges: Vec<(usize, Event, usize)> = Vec::new();
    let mut queue: std::collections::VecDeque<usize> = Default::default();

    let initial = automaton.initial_state();
    index.insert(initial.clone(), 0);
    states.push(initial);
    queue.push_back(0);

    let mut intern = |state: A::State,
                      states: &mut Vec<A::State>,
                      queue: &mut std::collections::VecDeque<usize>|
     -> Result<usize, StateBudgetExceeded> {
        if let Some(&i) = index.get(&state) {
            return Ok(i);
        }
        if states.len() >= budget {
            return Err(StateBudgetExceeded { budget });
        }
        let i = states.len();
        index.insert(state.clone(), i);
        states.push(state);
        queue.push_back(i);
        Ok(i)
    };

    while let Some(from) = queue.pop_front() {
        let state = states[from].clone();
        for k in 0..automaton.process_count() {
            let p = ProcessId(k);
            // Response edge, if one is enabled.
            if let Some((resp, next)) = automaton.enabled_response(&state, p) {
                let to = intern(next, &mut states, &mut queue)?;
                edges.push((from, Event::response(p, resp), to));
            }
            // Invocation edges.
            let mut invocations: Vec<Invocation> = vec![Invocation::TryCommit];
            for j in 0..automaton.tvar_count() {
                let x = TVarId(j);
                invocations.push(Invocation::Read(x));
                for &v in values {
                    invocations.push(Invocation::Write(x, v));
                }
            }
            for inv in invocations {
                if let Some(next) = automaton.apply_invocation(&state, p, inv) {
                    let to = intern(next, &mut states, &mut queue)?;
                    edges.push((from, Event::invocation(p, inv), to));
                }
            }
        }
    }

    Ok(StateGraph { states, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgp::{Fgp, FgpVariant};
    use crate::global_lock::GlobalLockTm;

    #[test]
    fn figure_15_fgp_has_exactly_ten_states() {
        // The paper's Figure 15: Fgp with P = {p1}, X = {x}, V = {0, 1}.
        for variant in [FgpVariant::Literal, FgpVariant::Strict, FgpVariant::CpOnly] {
            let graph =
                enumerate_states(&Fgp::new(1, 1, variant), &[0, 1], 1_000).expect("small graph");
            assert_eq!(graph.state_count(), 10, "{variant:?}");
            // "The automaton of Figure 15 has no abort events, since
            // process p1 has no concurrent processes to it."
            assert!(!graph.has_abort_edges(), "{variant:?}");
        }
    }

    #[test]
    fn two_process_fgp_has_abort_edges() {
        let graph = enumerate_states(&Fgp::new(2, 1, FgpVariant::CpOnly), &[0, 1], 100_000)
            .expect("bounded graph");
        assert!(graph.has_abort_edges());
        assert!(graph.state_count() > 10);
    }

    #[test]
    fn budget_is_enforced() {
        let result = enumerate_states(&Fgp::new(2, 1, FgpVariant::CpOnly), &[0, 1], 5);
        assert_eq!(result.unwrap_err(), StateBudgetExceeded { budget: 5 });
    }

    #[test]
    fn global_lock_single_process_graph() {
        let graph =
            enumerate_states(&GlobalLockTm::new(1, 1), &[0, 1], 1_000).expect("small graph");
        // owner ∈ {None, Some(p1)} × val ∈ {0,1} × pending ∈ {⊥, read,
        // write(0), write(1), tryC}; not all combinations reachable.
        assert!(graph.state_count() > 2);
        assert!(!graph.has_abort_edges());
    }

    #[test]
    fn initial_state_is_index_zero() {
        let fgp = Fgp::new(1, 1, FgpVariant::CpOnly);
        let graph = enumerate_states(&fgp, &[0, 1], 1_000).unwrap();
        assert_eq!(graph.states[0], fgp.initial_state());
        // Every edge endpoint is a valid index.
        for &(a, _, b) in &graph.edges {
            assert!(a < graph.state_count() && b < graph.state_count());
        }
    }
}
