//! TM implementations as I/O automata.
//!
//! The paper models a TM as an I/O automaton `F = (St, I, O, s0, R)` with
//! invocation events as inputs and response events as outputs. The
//! [`TmAutomaton`] trait captures the automata used in the paper (and every
//! TM in this repository): *input-deterministic* and
//! *output-deterministic-per-process* automata, where
//!
//! * an invocation by `pk` is enabled iff `pk` has no pending invocation
//!   (`f(pk) = ⊥`), and deterministically transforms the state;
//! * at most one response to `pk` is enabled at any state (the automaton
//!   may also *withhold* the response — that is how blocking TMs such as
//!   the global-lock TM are expressed).
//!
//! [`Runner`] drives an automaton and records the produced [`History`];
//! the scheduler (or adversary) decides *when* each process invokes and
//! when pending responses are delivered.

use tm_core::{Event, History, Invocation, ProcessId, Response};

/// A TM implementation as a (deterministic) I/O automaton.
pub trait TmAutomaton {
    /// Automaton state (`St` in the paper).
    type State: Clone + Eq + std::hash::Hash + std::fmt::Debug;

    /// The initial state `s0`.
    fn initial_state(&self) -> Self::State;

    /// Number of processes `|K|` this instance is configured for.
    fn process_count(&self) -> usize;

    /// Number of t-variables `|X|` this instance is configured for.
    fn tvar_count(&self) -> usize;

    /// Applies an invocation (input action). Returns the successor state,
    /// or `None` if the invocation is not enabled (the process already has
    /// a pending invocation, or the ids are out of range).
    fn apply_invocation(
        &self,
        state: &Self::State,
        process: ProcessId,
        invocation: Invocation,
    ) -> Option<Self::State>;

    /// The enabled response to `process`, if any, together with the
    /// successor state. `None` either because the process has no pending
    /// invocation or because the automaton withholds the response (a
    /// blocking TM).
    fn enabled_response(
        &self,
        state: &Self::State,
        process: ProcessId,
    ) -> Option<(Response, Self::State)>;

    /// In-place variant of [`TmAutomaton::apply_invocation`]: mutates
    /// `state` and reports whether the invocation was enabled (when not,
    /// `state` is unchanged).
    ///
    /// The default delegates to the functional form; hot automata
    /// override both so linear drivers ([`Runner`]) skip the per-step
    /// state clone while branching drivers (state enumeration, the model
    /// checker) keep the functional form.
    fn apply_invocation_mut(
        &self,
        state: &mut Self::State,
        process: ProcessId,
        invocation: Invocation,
    ) -> bool {
        match self.apply_invocation(state, process, invocation) {
            Some(next) => {
                *state = next;
                true
            }
            None => false,
        }
    }

    /// In-place variant of [`TmAutomaton::enabled_response`] (when the
    /// response is withheld, `state` is unchanged).
    fn enabled_response_mut(
        &self,
        state: &mut Self::State,
        process: ProcessId,
    ) -> Option<Response> {
        match self.enabled_response(state, process) {
            Some((response, next)) => {
                *state = next;
                Some(response)
            }
            None => None,
        }
    }
}

/// Error returned when an invocation is not enabled at the current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotEnabled {
    /// The process whose invocation was rejected.
    pub process: ProcessId,
}

impl core::fmt::Display for NotEnabled {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invocation by {} is not enabled", self.process)
    }
}

impl std::error::Error for NotEnabled {}

/// Drives a [`TmAutomaton`], recording the history it produces (unless
/// recording is disabled — see [`Runner::disable_recording`]).
#[derive(Debug, Clone)]
pub struct Runner<A: TmAutomaton> {
    automaton: A,
    state: A::State,
    history: History,
    record: bool,
}

impl<A: TmAutomaton> Runner<A> {
    /// Creates a runner at the automaton's initial state with an empty
    /// history.
    pub fn new(automaton: A) -> Self {
        let state = automaton.initial_state();
        Runner {
            automaton,
            state,
            history: History::new(),
            record: true,
        }
    }

    /// Stops recording events (and drops any recorded so far).
    ///
    /// Harnesses that track histories themselves — the stepped adapters
    /// behind the model checker, which forks runners on every tree edge —
    /// disable recording so a fork costs O(state), not O(history).
    pub fn disable_recording(&mut self) {
        self.record = false;
        self.history = History::new();
    }

    /// Clones `source` into `self`, reusing the state's existing buffers
    /// via `Clone::clone_from` (the model checker's allocation-free
    /// refork path).
    pub fn copy_from(&mut self, source: &Self)
    where
        A: Clone,
    {
        self.automaton.clone_from(&source.automaton);
        self.state.clone_from(&source.state);
        self.history.clone_from(&source.history);
        self.record = source.record;
    }

    /// The underlying automaton.
    pub fn automaton(&self) -> &A {
        &self.automaton
    }

    /// The current state.
    pub fn state(&self) -> &A::State {
        &self.state
    }

    /// The history recorded so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Consumes the runner, returning the recorded history.
    pub fn into_history(self) -> History {
        self.history
    }

    /// Applies an invocation (input event).
    ///
    /// # Errors
    ///
    /// [`NotEnabled`] if the process already has a pending invocation.
    pub fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Result<(), NotEnabled> {
        if self
            .automaton
            .apply_invocation_mut(&mut self.state, process, invocation)
        {
            if self.record {
                self.history.push(Event::invocation(process, invocation));
            }
            Ok(())
        } else {
            Err(NotEnabled { process })
        }
    }

    /// Delivers the enabled response to `process`, if any. Returns the
    /// response, or `None` if the automaton currently withholds it.
    pub fn deliver(&mut self, process: ProcessId) -> Option<Response> {
        let response = self
            .automaton
            .enabled_response_mut(&mut self.state, process)?;
        if self.record {
            self.history.push(Event::response(process, response));
        }
        Some(response)
    }

    /// Applies an invocation and immediately delivers the response if one
    /// is enabled. Non-blocking TMs (such as `Fgp`) always respond.
    ///
    /// # Errors
    ///
    /// [`NotEnabled`] if the invocation itself is not enabled.
    pub fn invoke_and_deliver(
        &mut self,
        process: ProcessId,
        invocation: Invocation,
    ) -> Result<Option<Response>, NotEnabled> {
        self.invoke(process, invocation)?;
        Ok(self.deliver(process))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{TVarId, Value};

    /// A trivial single-version TM automaton used to test the runner: every
    /// operation succeeds, commits apply immediately (correct only for
    /// sequential use, which is all the test needs).
    #[derive(Debug, Clone)]
    struct Trivial {
        processes: usize,
        tvars: usize,
    }

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct TrivialState {
        vals: Vec<Value>,
        pending: Vec<Option<Invocation>>,
    }

    impl TmAutomaton for Trivial {
        type State = TrivialState;

        fn initial_state(&self) -> TrivialState {
            TrivialState {
                vals: vec![0; self.tvars],
                pending: vec![None; self.processes],
            }
        }

        fn process_count(&self) -> usize {
            self.processes
        }

        fn tvar_count(&self) -> usize {
            self.tvars
        }

        fn apply_invocation(
            &self,
            state: &TrivialState,
            p: ProcessId,
            inv: Invocation,
        ) -> Option<TrivialState> {
            if p.index() >= self.processes || state.pending[p.index()].is_some() {
                return None;
            }
            let mut s = state.clone();
            s.pending[p.index()] = Some(inv);
            Some(s)
        }

        fn enabled_response(
            &self,
            state: &TrivialState,
            p: ProcessId,
        ) -> Option<(Response, TrivialState)> {
            let inv = state.pending.get(p.index())?.as_ref()?;
            let mut s = state.clone();
            let resp = match *inv {
                Invocation::Read(x) => Response::Value(s.vals[x.index()]),
                Invocation::Write(x, v) => {
                    s.vals[x.index()] = v;
                    Response::Ok
                }
                Invocation::TryCommit => Response::Committed,
            };
            s.pending[p.index()] = None;
            Some((resp, s))
        }
    }

    const P1: ProcessId = ProcessId(0);
    const X: TVarId = TVarId(0);

    #[test]
    fn runner_records_history() {
        let mut r = Runner::new(Trivial {
            processes: 1,
            tvars: 1,
        });
        assert_eq!(
            r.invoke_and_deliver(P1, Invocation::Read(X)).unwrap(),
            Some(Response::Value(0))
        );
        assert_eq!(
            r.invoke_and_deliver(P1, Invocation::Write(X, 5)).unwrap(),
            Some(Response::Ok)
        );
        assert_eq!(
            r.invoke_and_deliver(P1, Invocation::TryCommit).unwrap(),
            Some(Response::Committed)
        );
        assert_eq!(r.history().len(), 6);
        assert!(r.history().is_well_formed());
        assert_eq!(r.history().commit_count(P1), 1);
    }

    #[test]
    fn double_invocation_not_enabled() {
        let mut r = Runner::new(Trivial {
            processes: 1,
            tvars: 1,
        });
        r.invoke(P1, Invocation::Read(X)).unwrap();
        assert_eq!(
            r.invoke(P1, Invocation::Read(X)),
            Err(NotEnabled { process: P1 })
        );
    }

    #[test]
    fn deliver_without_pending_is_none() {
        let mut r = Runner::new(Trivial {
            processes: 1,
            tvars: 1,
        });
        assert_eq!(r.deliver(P1), None);
    }

    #[test]
    fn out_of_range_process_not_enabled() {
        let mut r = Runner::new(Trivial {
            processes: 1,
            tvars: 1,
        });
        assert!(r.invoke(ProcessId(3), Invocation::Read(X)).is_err());
    }
}
