//! The single-global-lock TM as an I/O automaton (§1.1, §3.2.1).
//!
//! The paper uses this TM twice: it shows that local progress *is*
//! achievable in a system that is both crash-free and parasitic-free (the
//! TM serializes all transactions and never aborts any of them), and that
//! the very same TM loses all liveness the moment a process can crash or
//! turn parasitic while holding the lock — the motivation for demanding
//! independent progress.
//!
//! Blocking is expressed by *withholding responses*: a process whose
//! transaction did not acquire the lock receives no response until the
//! holder commits ([`crate::ioa::TmAutomaton::enabled_response`] returns
//! `None`).

use serde::{Deserialize, Serialize};

use tm_core::{Invocation, ProcessId, Response, Value, INITIAL_VALUE};

use crate::ioa::TmAutomaton;

/// State of the global-lock TM: the lock owner, the store, and pending
/// invocations.
#[derive(Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalLockState {
    /// Index of the process currently holding the global lock.
    pub owner: Option<usize>,
    /// The single-copy store (writes apply in place; the TM never aborts).
    pub vals: Vec<Value>,
    /// Pending invocation per process.
    pub pending: Vec<Option<Invocation>>,
}

// Hand-written so `clone_from` reuses the target's vector buffers — the
// model checker reforks states through it on every recycled tree edge.
impl Clone for GlobalLockState {
    fn clone(&self) -> Self {
        GlobalLockState {
            owner: self.owner,
            vals: self.vals.clone(),
            pending: self.pending.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.owner = source.owner;
        self.vals.clone_from(&source.vals);
        self.pending.clone_from(&source.pending);
    }
}

/// The single-global-lock TM automaton. Never aborts; blocks instead.
///
/// # Examples
///
/// ```
/// use tm_automata::{GlobalLockTm, Runner};
/// use tm_core::{Invocation, ProcessId, Response, TVarId};
///
/// let mut r = Runner::new(GlobalLockTm::new(2, 1));
/// let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
/// // p1 acquires the lock with its first operation.
/// assert_eq!(r.invoke_and_deliver(p1, Invocation::Read(x)).unwrap(), Some(Response::Value(0)));
/// // p2 is blocked: the invocation is accepted but no response is enabled.
/// assert_eq!(r.invoke_and_deliver(p2, Invocation::Read(x)).unwrap(), None);
/// // p1 commits, releasing the lock; p2's response becomes enabled.
/// assert_eq!(r.invoke_and_deliver(p1, Invocation::TryCommit).unwrap(), Some(Response::Committed));
/// assert_eq!(r.deliver(p2), Some(Response::Value(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalLockTm {
    processes: usize,
    tvars: usize,
}

impl GlobalLockTm {
    /// Creates a global-lock TM for `processes` processes and `tvars`
    /// t-variables.
    ///
    /// # Panics
    ///
    /// Panics if `processes` or `tvars` is zero.
    pub fn new(processes: usize, tvars: usize) -> Self {
        assert!(processes > 0, "need at least one process");
        assert!(tvars > 0, "need at least one t-variable");
        GlobalLockTm { processes, tvars }
    }
}

impl TmAutomaton for GlobalLockTm {
    type State = GlobalLockState;

    fn initial_state(&self) -> GlobalLockState {
        GlobalLockState {
            owner: None,
            vals: vec![INITIAL_VALUE; self.tvars],
            pending: vec![None; self.processes],
        }
    }

    fn process_count(&self) -> usize {
        self.processes
    }

    fn tvar_count(&self) -> usize {
        self.tvars
    }

    fn apply_invocation(
        &self,
        state: &GlobalLockState,
        process: ProcessId,
        invocation: Invocation,
    ) -> Option<GlobalLockState> {
        let k = process.index();
        if k >= self.processes || state.pending[k].is_some() {
            return None;
        }
        if let Some(x) = invocation.tvar() {
            if x.index() >= self.tvars {
                return None;
            }
        }
        let mut s = state.clone();
        s.pending[k] = Some(invocation);
        Some(s)
    }

    fn enabled_response(
        &self,
        state: &GlobalLockState,
        process: ProcessId,
    ) -> Option<(Response, GlobalLockState)> {
        let k = process.index();
        let inv = (*state.pending.get(k)?)?;
        // The response is enabled only for the lock holder — or, if the
        // lock is free, the responding process acquires it.
        match state.owner {
            Some(owner) if owner != k => return None,
            _ => {}
        }
        let mut s = state.clone();
        s.pending[k] = None;
        let response = match inv {
            Invocation::Read(x) => {
                s.owner = Some(k);
                Response::Value(state.vals[x.index()])
            }
            Invocation::Write(x, v) => {
                s.owner = Some(k);
                s.vals[x.index()] = v;
                Response::Ok
            }
            Invocation::TryCommit => {
                s.owner = None;
                Response::Committed
            }
        };
        Some((response, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ioa::Runner;
    use tm_core::{Invocation as Inv, TVarId};
    use tm_safety::is_opaque;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);

    #[test]
    fn never_aborts_sequential_transactions() {
        let mut r = Runner::new(GlobalLockTm::new(2, 1));
        for p in [P1, P2] {
            assert_eq!(
                r.invoke_and_deliver(p, Inv::Write(X, p.index() as u64 + 1))
                    .unwrap(),
                Some(Response::Ok)
            );
            assert_eq!(
                r.invoke_and_deliver(p, Inv::TryCommit).unwrap(),
                Some(Response::Committed)
            );
        }
        assert_eq!(r.history().abort_count(P1), 0);
        assert_eq!(r.history().abort_count(P2), 0);
        assert!(is_opaque(r.history()));
    }

    #[test]
    fn blocks_concurrent_process_until_commit() {
        let mut r = Runner::new(GlobalLockTm::new(2, 1));
        r.invoke_and_deliver(P1, Inv::Read(X)).unwrap();
        // p2 blocked while p1 holds the lock.
        assert_eq!(r.invoke_and_deliver(P2, Inv::Read(X)).unwrap(), None);
        assert_eq!(r.deliver(P2), None);
        // Crash of p1 here would block p2 forever — the Amdahl scenario.
        r.invoke_and_deliver(P1, Inv::Write(X, 9)).unwrap();
        r.invoke_and_deliver(P1, Inv::TryCommit).unwrap();
        // Lock released; p2 now reads the committed value.
        assert_eq!(r.deliver(P2), Some(Response::Value(9)));
    }

    #[test]
    fn writes_apply_in_place_and_are_observed_after_release() {
        let mut r = Runner::new(GlobalLockTm::new(2, 1));
        r.invoke_and_deliver(P1, Inv::Write(X, 3)).unwrap();
        r.invoke_and_deliver(P1, Inv::TryCommit).unwrap();
        assert_eq!(
            r.invoke_and_deliver(P2, Inv::Read(X)).unwrap(),
            Some(Response::Value(3))
        );
    }

    #[test]
    fn lock_reacquired_after_release() {
        let mut r = Runner::new(GlobalLockTm::new(2, 1));
        r.invoke_and_deliver(P1, Inv::Read(X)).unwrap();
        r.invoke_and_deliver(P1, Inv::TryCommit).unwrap();
        // p2 acquires next.
        assert_eq!(
            r.invoke_and_deliver(P2, Inv::Read(X)).unwrap(),
            Some(Response::Value(0))
        );
        // Now p1 is the blocked one.
        assert_eq!(r.invoke_and_deliver(P1, Inv::Read(X)).unwrap(), None);
    }

    #[test]
    fn histories_with_blocked_processes_are_opaque() {
        let mut r = Runner::new(GlobalLockTm::new(2, 1));
        r.invoke_and_deliver(P1, Inv::Write(X, 5)).unwrap();
        r.invoke_and_deliver(P2, Inv::Read(X)).unwrap(); // blocked forever
                                                         // p1 "crashes": no more events. The finite history must still be
                                                         // opaque (p2 has no completed operations).
        assert!(is_opaque(r.history()));
    }
}
