//! I/O automata for transactional memory, including the paper's `Fgp`.
//!
//! *On the Liveness of Transactional Memory* (PODC 2012) models TMs as I/O
//! automata and, in Section 6, constructs the automaton `Fgp` that ensures
//! **opacity and global progress in any fault-prone system** (Theorem 3).
//! This crate provides:
//!
//! * [`TmAutomaton`] / [`Runner`] — the automaton abstraction and a driver
//!   that records histories;
//! * [`Fgp`] — the paper's automaton in three variants ([`FgpVariant`]):
//!   the literal formal rules (which harbour a bug our tests exhibit), the
//!   minimally fixed formal rules, and the prose semantics;
//! * [`GlobalLockTm`] — the single-global-lock TM the paper uses to show
//!   local progress is possible without faults and lost with them;
//! * [`enumerate`] — reachable-state enumeration reproducing Figure 15's
//!   ten-state graph.
//!
//! ```
//! use tm_automata::{enumerate_states, Fgp, FgpVariant};
//!
//! // Figure 15: one process, one binary t-variable → exactly 10 states.
//! let graph = enumerate_states(&Fgp::new(1, 1, FgpVariant::CpOnly), &[0, 1], 1_000)?;
//! assert_eq!(graph.state_count(), 10);
//! # Ok::<(), tm_automata::StateBudgetExceeded>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod enumerate;
pub mod fgp;
pub mod global_lock;
pub mod ioa;

pub use dot::to_dot;
pub use enumerate::{enumerate_states, StateBudgetExceeded, StateGraph};
pub use fgp::{Fgp, FgpState, FgpVariant, PStatus};
pub use global_lock::{GlobalLockState, GlobalLockTm};
pub use ioa::{NotEnabled, Runner, TmAutomaton};
