//! Invocation and response events.
//!
//! The paper models a TM as an I/O automaton whose inputs are invocation
//! events `Inv_k = {x.write_k(v), x.read_k, tryC_k}` and whose outputs are
//! response events `Res_k = {v_k, ok_k, A_k, C_k}`. A history is a sequence
//! of such events; the per-process alphabet `Σ_k` constrains which responses
//! may answer which invocations:
//!
//! * `x.write_k(v) · ok_k`
//! * `x.read_k · v_k`
//! * `tryC_k · C_k`
//! * `e · A_k` for any invocation `e` (any operation may be answered by an
//!   abort).

use core::fmt;
use serde::{Deserialize, Serialize};

use crate::ids::{ProcessId, TVarId, Value};

/// An invocation event issued by a process (an input of the TM automaton).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Invocation {
    /// `x.read_k()` — read t-variable `x`.
    Read(TVarId),
    /// `x.write_k(v)` — write value `v` to t-variable `x`.
    Write(TVarId, Value),
    /// `tryC_k` — request commit of the current transaction.
    TryCommit,
}

impl Invocation {
    /// The t-variable this invocation accesses, if any (`None` for
    /// [`Invocation::TryCommit`]).
    pub fn tvar(self) -> Option<TVarId> {
        match self {
            Invocation::Read(x) | Invocation::Write(x, _) => Some(x),
            Invocation::TryCommit => None,
        }
    }

    /// Whether this is a read invocation.
    pub fn is_read(self) -> bool {
        matches!(self, Invocation::Read(_))
    }

    /// Whether this is a write invocation.
    pub fn is_write(self) -> bool {
        matches!(self, Invocation::Write(..))
    }

    /// Whether this is a commit request.
    pub fn is_try_commit(self) -> bool {
        matches!(self, Invocation::TryCommit)
    }
}

impl fmt::Display for Invocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Invocation::Read(x) => write!(f, "{x}.read"),
            Invocation::Write(x, v) => write!(f, "{x}.write({v})"),
            Invocation::TryCommit => write!(f, "tryC"),
        }
    }
}

/// A response event returned by the TM (an output of the TM automaton).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Response {
    /// `v_k` — the value returned by a read.
    Value(Value),
    /// `ok_k` — acknowledgement of a write.
    Ok,
    /// `C_k` — the transaction committed.
    Committed,
    /// `A_k` — the transaction aborted.
    Aborted,
}

impl Response {
    /// Whether this response is the abort event `A_k`.
    pub fn is_abort(self) -> bool {
        matches!(self, Response::Aborted)
    }

    /// Whether this response is the commit event `C_k`.
    pub fn is_commit(self) -> bool {
        matches!(self, Response::Committed)
    }

    /// Whether this response terminates a transaction (commit or abort).
    pub fn is_terminal(self) -> bool {
        self.is_abort() || self.is_commit()
    }

    /// Whether `self` is a valid response to `invocation` according to the
    /// per-process alphabet `Σ_k`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tm_core::{Invocation, Response, TVarId};
    ///
    /// let x = TVarId(0);
    /// assert!(Response::Value(3).answers(Invocation::Read(x)));
    /// assert!(Response::Aborted.answers(Invocation::Read(x)));
    /// assert!(!Response::Ok.answers(Invocation::Read(x)));
    /// assert!(Response::Committed.answers(Invocation::TryCommit));
    /// assert!(!Response::Committed.answers(Invocation::Write(x, 1)));
    /// ```
    pub fn answers(self, invocation: Invocation) -> bool {
        matches!(
            (invocation, self),
            (_, Response::Aborted)
                | (Invocation::Read(_), Response::Value(_))
                | (Invocation::Write(..), Response::Ok)
                | (Invocation::TryCommit, Response::Committed)
        )
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Value(v) => write!(f, "{v}"),
            Response::Ok => write!(f, "ok"),
            Response::Committed => write!(f, "C"),
            Response::Aborted => write!(f, "A"),
        }
    }
}

/// Either an invocation or a response (the alphabet `Inv ∪ Res`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// An input event of the TM automaton.
    Invocation(Invocation),
    /// An output event of the TM automaton.
    Response(Response),
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Invocation(inv) => write!(f, "{inv}"),
            EventKind::Response(resp) => write!(f, "→{resp}"),
        }
    }
}

/// A single event of a history: an invocation or response attributed to a
/// process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Event {
    /// The process this event belongs to.
    pub process: ProcessId,
    /// The invocation or response payload.
    pub kind: EventKind,
}

impl Event {
    /// Creates an invocation event.
    pub fn invocation(process: ProcessId, invocation: Invocation) -> Self {
        Event {
            process,
            kind: EventKind::Invocation(invocation),
        }
    }

    /// Creates a response event.
    pub fn response(process: ProcessId, response: Response) -> Self {
        Event {
            process,
            kind: EventKind::Response(response),
        }
    }

    /// `x.read_k()` invocation.
    pub fn read(process: ProcessId, x: TVarId) -> Self {
        Self::invocation(process, Invocation::Read(x))
    }

    /// `x.write_k(v)` invocation.
    pub fn write(process: ProcessId, x: TVarId, v: Value) -> Self {
        Self::invocation(process, Invocation::Write(x, v))
    }

    /// `tryC_k` invocation.
    pub fn try_commit(process: ProcessId) -> Self {
        Self::invocation(process, Invocation::TryCommit)
    }

    /// `v_k` response.
    pub fn value(process: ProcessId, v: Value) -> Self {
        Self::response(process, Response::Value(v))
    }

    /// `ok_k` response.
    pub fn ok(process: ProcessId) -> Self {
        Self::response(process, Response::Ok)
    }

    /// `C_k` response.
    pub fn committed(process: ProcessId) -> Self {
        Self::response(process, Response::Committed)
    }

    /// `A_k` response.
    pub fn aborted(process: ProcessId) -> Self {
        Self::response(process, Response::Aborted)
    }

    /// Whether this event is an invocation.
    pub fn is_invocation(&self) -> bool {
        matches!(self.kind, EventKind::Invocation(_))
    }

    /// Whether this event is a response.
    pub fn is_response(&self) -> bool {
        matches!(self.kind, EventKind::Response(_))
    }

    /// The invocation payload, if this event is an invocation.
    pub fn as_invocation(&self) -> Option<Invocation> {
        match self.kind {
            EventKind::Invocation(inv) => Some(inv),
            EventKind::Response(_) => None,
        }
    }

    /// The response payload, if this event is a response.
    pub fn as_response(&self) -> Option<Response> {
        match self.kind {
            EventKind::Response(resp) => Some(resp),
            EventKind::Invocation(_) => None,
        }
    }

    /// Whether this event is the commit event `C_k`.
    pub fn is_commit(&self) -> bool {
        self.as_response().is_some_and(Response::is_commit)
    }

    /// Whether this event is the abort event `A_k`.
    pub fn is_abort(&self) -> bool {
        self.as_response().is_some_and(Response::is_abort)
    }

    /// Whether this event is the `tryC_k` invocation.
    pub fn is_try_commit(&self) -> bool {
        self.as_invocation().is_some_and(Invocation::is_try_commit)
    }

    /// The t-variable this event accesses, if any.
    pub fn tvar(&self) -> Option<TVarId> {
        self.as_invocation().and_then(Invocation::tvar)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            EventKind::Invocation(inv) => write!(f, "{}:{inv}", self.process),
            EventKind::Response(resp) => write!(f, "{}:→{resp}", self.process),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P1: ProcessId = ProcessId(0);
    const X: TVarId = TVarId(0);

    #[test]
    fn responses_answer_matching_invocations() {
        assert!(Response::Value(0).answers(Invocation::Read(X)));
        assert!(Response::Ok.answers(Invocation::Write(X, 1)));
        assert!(Response::Committed.answers(Invocation::TryCommit));
    }

    #[test]
    fn abort_answers_every_invocation() {
        for inv in [
            Invocation::Read(X),
            Invocation::Write(X, 7),
            Invocation::TryCommit,
        ] {
            assert!(Response::Aborted.answers(inv));
        }
    }

    #[test]
    fn mismatched_responses_rejected() {
        assert!(!Response::Ok.answers(Invocation::Read(X)));
        assert!(!Response::Value(1).answers(Invocation::Write(X, 1)));
        assert!(!Response::Committed.answers(Invocation::Read(X)));
        assert!(!Response::Value(0).answers(Invocation::TryCommit));
        assert!(!Response::Ok.answers(Invocation::TryCommit));
    }

    #[test]
    fn event_constructors_set_process_and_kind() {
        let e = Event::read(P1, X);
        assert_eq!(e.process, P1);
        assert_eq!(e.as_invocation(), Some(Invocation::Read(X)));
        assert!(e.is_invocation() && !e.is_response());

        let e = Event::committed(P1);
        assert!(e.is_commit() && !e.is_abort());
        assert_eq!(e.as_response(), Some(Response::Committed));
    }

    #[test]
    fn tvar_extraction() {
        assert_eq!(Event::read(P1, X).tvar(), Some(X));
        assert_eq!(Event::write(P1, TVarId(3), 5).tvar(), Some(TVarId(3)));
        assert_eq!(Event::try_commit(P1).tvar(), None);
        assert_eq!(Event::value(P1, 3).tvar(), None);
    }

    #[test]
    fn display_formats_match_paper_style() {
        assert_eq!(Event::read(P1, X).to_string(), "p1:x.read");
        assert_eq!(Event::write(P1, X, 1).to_string(), "p1:x.write(1)");
        assert_eq!(Event::try_commit(P1).to_string(), "p1:tryC");
        assert_eq!(Event::value(P1, 0).to_string(), "p1:→0");
        assert_eq!(Event::committed(P1).to_string(), "p1:→C");
        assert_eq!(Event::aborted(P1).to_string(), "p1:→A");
    }

    #[test]
    fn terminal_responses() {
        assert!(Response::Committed.is_terminal());
        assert!(Response::Aborted.is_terminal());
        assert!(!Response::Ok.is_terminal());
        assert!(!Response::Value(0).is_terminal());
    }
}
