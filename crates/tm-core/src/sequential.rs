//! The sequential specification of t-variables and transaction legality.
//!
//! The paper (following Guerraoui & Kapałka's *Principles of Transactional
//! Memory*) defines legality on a complete sequential history `Hs`:
//! transaction `Tj` is legal iff `visible(Tj)` — the subsequence of `Hs`
//! consisting of `Tj` itself and the **committed** transactions preceding
//! it — respects the semantics of every t-variable: every read of `x`
//! returns the value of the transaction's own latest preceding write to `x`,
//! or else the value of `x` at the transaction's start (the last value
//! committed to `x`, initially [`INITIAL_VALUE`]).
//!
//! Note: the PODC'12 text elides the word "committed" in its `visible(Tj)`
//! definition; taking it literally would make Figure 1 non-opaque,
//! contradicting the paper's own claim, so we follow the book definition
//! (see DESIGN.md, D-visible).

use std::collections::BTreeMap;

use crate::history::History;
use crate::ids::{TVarId, Value, INITIAL_VALUE};
use crate::transaction::{Operation, Transaction, TxStatus};

/// Outcome of a legality check: either legal, or a description of the first
/// violating read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Legality {
    /// Every transaction is legal.
    Legal,
    /// Some read returned a value inconsistent with the sequential
    /// specification.
    Illegal {
        /// The violating transaction (index into the history's transaction
        /// list).
        tx_index: usize,
        /// The violating read.
        tvar: TVarId,
        /// The value the read returned.
        got: Value,
        /// The value the sequential specification requires.
        expected: Value,
    },
}

impl Legality {
    /// Whether the check passed.
    pub fn is_legal(&self) -> bool {
        matches!(self, Legality::Legal)
    }
}

/// Checks legality of a **complete sequential** history: walks the
/// transactions in order, maintaining the committed state of every
/// t-variable, and verifies every completed read against the sequential
/// specification.
///
/// Returns [`Legality::Illegal`] with the first violation found.
///
/// # Panics
///
/// Panics (in debug builds) if the history is not sequential or not
/// complete; the caller is expected to establish both. In release builds a
/// non-sequential history yields a best-effort answer over the transaction
/// order by first event.
pub fn check_sequential_legality(history: &History) -> Legality {
    debug_assert!(history.is_sequential(), "history must be sequential");
    debug_assert!(history.is_complete(), "history must be complete");
    let txs = history.transactions();
    check_transactions_legality(&txs)
}

/// Legality over an explicit sequence of transactions (the order of the
/// slice is the sequential order). Exposed for checkers that enumerate
/// candidate sequential orders without materializing each candidate
/// history.
pub fn check_transactions_legality(txs: &[Transaction]) -> Legality {
    let mut committed_state: BTreeMap<TVarId, Value> = BTreeMap::new();
    for (tx_index, tx) in txs.iter().enumerate() {
        match check_one(tx, &committed_state) {
            Ok(writes) => {
                if tx.status == TxStatus::Committed {
                    committed_state.extend(writes);
                }
            }
            Err((tvar, got, expected)) => {
                return Legality::Illegal {
                    tx_index,
                    tvar,
                    got,
                    expected,
                }
            }
        }
    }
    Legality::Legal
}

/// Checks a single transaction against a committed state; returns the
/// transaction's write buffer on success, or `(tvar, got, expected)` for
/// the first violating read.
///
/// This is the single-transaction kernel of [`check_transactions_legality`];
/// it is exposed so that witness-search checkers (the `tm-safety` crate)
/// can prune candidate orders one transaction at a time.
pub fn check_one(
    tx: &Transaction,
    committed_state: &BTreeMap<TVarId, Value>,
) -> Result<BTreeMap<TVarId, Value>, (TVarId, Value, Value)> {
    let mut buffer: BTreeMap<TVarId, Value> = BTreeMap::new();
    for op in tx.operations() {
        match op {
            Operation::Write { tvar, value } => {
                buffer.insert(tvar, value);
            }
            Operation::Read { tvar, value } => {
                let expected = buffer
                    .get(&tvar)
                    .or_else(|| committed_state.get(&tvar))
                    .copied()
                    .unwrap_or(INITIAL_VALUE);
                if value != expected {
                    return Err((tvar, value, expected));
                }
            }
        }
    }
    Ok(buffer)
}

/// Replays a sequence of transactions assumed legal and returns the final
/// committed value of every t-variable that was written.
///
/// Useful for asserting that a concurrent execution's final memory state
/// equals the state produced by some serial order of its committed
/// transactions.
pub fn final_committed_state(txs: &[Transaction]) -> BTreeMap<TVarId, Value> {
    let mut committed_state: BTreeMap<TVarId, Value> = BTreeMap::new();
    for tx in txs {
        if tx.status == TxStatus::Committed {
            if let Ok(writes) = check_one(tx, &committed_state) {
                committed_state.extend(writes);
            }
        }
    }
    committed_state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::ids::ProcessId;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    #[test]
    fn initial_value_read_is_legal() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .commit(P1)
            .build()
            .unwrap();
        assert!(check_sequential_legality(&h).is_legal());
    }

    #[test]
    fn wrong_initial_read_is_illegal() {
        let h = HistoryBuilder::new()
            .read(P1, X, 7)
            .commit(P1)
            .build()
            .unwrap();
        let verdict = check_sequential_legality(&h);
        assert_eq!(
            verdict,
            Legality::Illegal {
                tx_index: 0,
                tvar: X,
                got: 7,
                expected: 0
            }
        );
    }

    #[test]
    fn read_own_write() {
        let h = HistoryBuilder::new()
            .write_ok(P1, X, 5)
            .read(P1, X, 5)
            .commit(P1)
            .build()
            .unwrap();
        assert!(check_sequential_legality(&h).is_legal());
    }

    #[test]
    fn read_sees_committed_write_of_predecessor() {
        let h = HistoryBuilder::new()
            .write_ok(P1, X, 5)
            .commit(P1)
            .read(P2, X, 5)
            .commit(P2)
            .build()
            .unwrap();
        assert!(check_sequential_legality(&h).is_legal());
    }

    #[test]
    fn aborted_writes_are_invisible() {
        let h = HistoryBuilder::new()
            .write_ok(P1, X, 5)
            .abort_on_try_commit(P1)
            .read(P2, X, 0) // must still see the initial value
            .commit(P2)
            .build()
            .unwrap();
        assert!(check_sequential_legality(&h).is_legal());

        let bad = HistoryBuilder::new()
            .write_ok(P1, X, 5)
            .abort_on_try_commit(P1)
            .read(P2, X, 5) // would observe an aborted write
            .commit(P2)
            .build()
            .unwrap();
        assert!(!check_sequential_legality(&bad).is_legal());
    }

    #[test]
    fn aborted_transaction_reads_must_still_be_consistent() {
        // An aborted transaction must itself be legal (this is what
        // distinguishes opacity from strict serializability).
        let h = HistoryBuilder::new()
            .write_ok(P1, X, 1)
            .commit(P1)
            .read(P2, X, 0) // stale read inside an aborted transaction
            .abort_on_try_commit(P2)
            .build()
            .unwrap();
        assert!(!check_sequential_legality(&h).is_legal());
    }

    #[test]
    fn own_write_shadows_committed_state() {
        let h = HistoryBuilder::new()
            .write_ok(P1, X, 9)
            .commit(P1)
            .write_ok(P2, X, 3)
            .read(P2, X, 3)
            .commit(P2)
            .build()
            .unwrap();
        assert!(check_sequential_legality(&h).is_legal());
    }

    #[test]
    fn multiple_tvars_tracked_independently() {
        let h = HistoryBuilder::new()
            .write_ok(P1, X, 1)
            .read(P1, Y, 0)
            .commit(P1)
            .read(P2, X, 1)
            .read(P2, Y, 0)
            .commit(P2)
            .build()
            .unwrap();
        assert!(check_sequential_legality(&h).is_legal());
    }

    #[test]
    fn final_state_reflects_committed_writes_only() {
        let h = HistoryBuilder::new()
            .write_ok(P1, X, 1)
            .commit(P1)
            .write_ok(P2, X, 2)
            .abort_on_try_commit(P2)
            .write_ok(P1, Y, 3)
            .commit(P1)
            .build()
            .unwrap();
        let state = final_committed_state(&h.transactions());
        assert_eq!(state.get(&X), Some(&1));
        assert_eq!(state.get(&Y), Some(&3));
    }

    #[test]
    fn later_read_in_same_tx_sees_latest_own_write() {
        let h = HistoryBuilder::new()
            .write_ok(P1, X, 1)
            .write_ok(P1, X, 2)
            .read(P1, X, 2)
            .commit(P1)
            .build()
            .unwrap();
        assert!(check_sequential_legality(&h).is_legal());
    }
}
