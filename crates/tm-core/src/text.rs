//! A compact, line-free text format for histories.
//!
//! Useful for storing counterexamples from the model checker, pasting
//! histories into bug reports, and writing tests in a notation close to
//! the paper's:
//!
//! ```text
//! p1:r(x)->0 p2:w(x,1)->ok p2:c->C p1:w(x,1)->A
//! ```
//!
//! Grammar (whitespace-separated tokens):
//!
//! * `pK:r(xJ)` — read invocation; `pK:r(xJ)->V` — completed read
//! * `pK:w(xJ,V)` — write invocation; `->ok` / `->A` complete it
//! * `pK:c` — `tryC` invocation; `->C` / `->A` complete it
//!
//! Process ids are 1-based (`p1`…), t-variables are `x0`, `x1`, … (plain
//! `x`, `y`, `z` are accepted as aliases for `x0`, `x1`, `x2`).

use core::fmt;

use crate::event::{Event, Invocation, Response};
use crate::history::History;
use crate::ids::{ProcessId, TVarId, Value};

/// Error parsing the compact history format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHistoryError {
    /// The offending token.
    pub token: String,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for ParseHistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse token `{}`: {}", self.token, self.reason)
    }
}

impl std::error::Error for ParseHistoryError {}

fn err(token: &str, reason: &'static str) -> ParseHistoryError {
    ParseHistoryError {
        token: token.to_string(),
        reason,
    }
}

fn parse_tvar(s: &str, token: &str) -> Result<TVarId, ParseHistoryError> {
    match s {
        "x" => Ok(TVarId(0)),
        "y" => Ok(TVarId(1)),
        "z" => Ok(TVarId(2)),
        _ => s
            .strip_prefix('x')
            .and_then(|n| n.parse::<usize>().ok())
            .map(TVarId)
            .ok_or_else(|| err(token, "expected t-variable like x, y, z or x3")),
    }
}

/// Renders a history in the compact format (inverse of [`parse_history`]).
pub fn render_compact(history: &History) -> String {
    let mut out = String::new();
    for event in history.iter() {
        if !out.is_empty() {
            out.push(' ');
        }
        let p = event.process.index() + 1;
        match event.kind {
            crate::event::EventKind::Invocation(inv) => match inv {
                Invocation::Read(x) => out.push_str(&format!("p{p}:r(x{})", x.index())),
                Invocation::Write(x, v) => out.push_str(&format!("p{p}:w(x{},{v})", x.index())),
                Invocation::TryCommit => out.push_str(&format!("p{p}:c")),
            },
            crate::event::EventKind::Response(resp) => match resp {
                Response::Value(v) => out.push_str(&format!("p{p}:->{v}")),
                Response::Ok => out.push_str(&format!("p{p}:->ok")),
                Response::Committed => out.push_str(&format!("p{p}:->C")),
                Response::Aborted => out.push_str(&format!("p{p}:->A")),
            },
        }
    }
    out
}

/// Parses the compact format into a (validated) history.
///
/// Completed-operation shorthand (`p1:r(x)->0`) expands into the
/// invocation/response event pair; bare responses (`p1:->A`) answer the
/// process's pending invocation.
///
/// # Errors
///
/// Returns [`ParseHistoryError`] on unrecognized tokens; the resulting
/// event sequence is additionally validated for well-formedness (mapped
/// to a `"history is not well-formed"` error).
pub fn parse_history(text: &str) -> Result<History, ParseHistoryError> {
    let mut history = History::new();
    for token in text.split_whitespace() {
        let (proc_part, rest) = token
            .split_once(':')
            .ok_or_else(|| err(token, "expected `pK:...`"))?;
        let k: usize = proc_part
            .strip_prefix('p')
            .and_then(|n| n.parse().ok())
            .filter(|&n| n >= 1)
            .ok_or_else(|| err(token, "expected process like p1"))?;
        let p = ProcessId(k - 1);

        // Split an optional `->resp` suffix.
        let (op_part, resp_part) = match rest.split_once("->") {
            Some((op, resp)) => (op, Some(resp)),
            None => (rest, None),
        };

        if !op_part.is_empty() {
            let invocation = if op_part == "c" {
                Invocation::TryCommit
            } else if let Some(args) = op_part.strip_prefix("r(").and_then(|s| s.strip_suffix(')'))
            {
                Invocation::Read(parse_tvar(args, token)?)
            } else if let Some(args) = op_part.strip_prefix("w(").and_then(|s| s.strip_suffix(')'))
            {
                let (var, val) = args
                    .split_once(',')
                    .ok_or_else(|| err(token, "expected w(xJ,V)"))?;
                let value: Value = val
                    .parse()
                    .map_err(|_| err(token, "expected numeric write value"))?;
                Invocation::Write(parse_tvar(var, token)?, value)
            } else {
                return Err(err(token, "expected r(..), w(..), or c"));
            };
            history.push(Event::invocation(p, invocation));
        }

        if let Some(resp) = resp_part {
            let response = match resp {
                "ok" => Response::Ok,
                "C" => Response::Committed,
                "A" => Response::Aborted,
                v => Response::Value(
                    v.parse()
                        .map_err(|_| err(token, "expected ok, C, A or a value"))?,
                ),
            };
            history.push(Event::response(p, response));
        }
    }
    history
        .validate()
        .map_err(|_| err(text, "history is not well-formed"))?;
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::figures;

    #[test]
    fn figure_histories_round_trip() {
        for h in [
            figures::figure_1(),
            figures::figure_3(),
            figures::figure_4(),
        ] {
            let text = render_compact(&h);
            let parsed = parse_history(&text).expect("round trip");
            assert_eq!(parsed, h, "{text}");
        }
    }

    #[test]
    fn completed_op_shorthand() {
        let h = parse_history("p1:r(x)->0 p2:w(x,1)->ok p2:c->C p1:w(x,1)->A").unwrap();
        assert_eq!(h.len(), 8);
        assert_eq!(h.commit_count(ProcessId(1)), 1);
        assert_eq!(h.abort_count(ProcessId(0)), 1);
    }

    #[test]
    fn pending_invocations_and_bare_responses() {
        let h = parse_history("p1:r(x) p2:r(x) p1:->0 p2:->A").unwrap();
        assert_eq!(h.len(), 4);
        assert!(h.is_well_formed());
    }

    #[test]
    fn tvar_aliases() {
        let h = parse_history("p1:r(y)->0 p1:w(z,2)->ok p1:w(x3,4)->ok").unwrap();
        let tvars = h.tvars();
        assert!(tvars.contains(&TVarId(1)));
        assert!(tvars.contains(&TVarId(2)));
        assert!(tvars.contains(&TVarId(3)));
    }

    #[test]
    fn malformed_tokens_are_rejected() {
        assert!(parse_history("q1:r(x)").is_err());
        assert!(parse_history("p0:r(x)").is_err());
        assert!(parse_history("p1:r[x]").is_err());
        assert!(parse_history("p1:w(x)").is_err());
        assert!(parse_history("p1:w(x,abc)").is_err());
        assert!(parse_history("p1:->Q").is_err());
    }

    #[test]
    fn ill_formed_histories_are_rejected() {
        // Response with no pending invocation.
        assert!(parse_history("p1:->0").is_err());
        // Mismatched response.
        assert!(parse_history("p1:r(x)->ok").is_err());
    }

    #[test]
    fn empty_input_is_the_empty_history() {
        assert_eq!(parse_history("").unwrap(), History::new());
        assert_eq!(render_compact(&History::new()), "");
    }
}
