//! Finite histories of a TM implementation.
//!
//! A history `H` is a finite sequence of events over `Inv ∪ Res` such that
//! for every process `pk` the projection `H|pk` is a word of `Σ_k^∞`:
//! invocations and responses strictly alternate (starting with an
//! invocation), and each response answers the preceding invocation. A
//! history may end with unanswered (pending) invocations.

use core::fmt;
use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind, Invocation, Response};
use crate::ids::{ProcessId, TVarId};
use crate::transaction::{transactions_of, Transaction, TxStatus};

/// A finite history: a well-formed (or to-be-validated) sequence of events.
///
/// `History` is an append-only sequence with structural helpers mirroring
/// the paper's definitions: projection `H|pk`, completion `com(H)`,
/// equivalence, sequentiality, and the committed-transaction subsequence
/// used by strict serializability.
///
/// # Examples
///
/// ```
/// use tm_core::{History, HistoryBuilder, ProcessId, TVarId};
///
/// let (p1, x) = (ProcessId(0), TVarId(0));
/// let h: History = HistoryBuilder::new()
///     .read(p1, x, 0)
///     .write_ok(p1, x, 1)
///     .commit(p1)
///     .build()
///     .expect("well-formed");
/// assert_eq!(h.len(), 6);
/// assert!(h.is_complete());
/// assert!(h.is_sequential());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct History {
    events: Vec<Event>,
}

/// Why a sequence of events is not a well-formed history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WellFormednessError {
    /// A response event arrived for a process with no pending invocation.
    ResponseWithoutInvocation {
        /// Index of the offending event.
        position: usize,
        /// The offending response event.
        event: Event,
    },
    /// An invocation arrived while the process still awaits a response.
    InvocationWhilePending {
        /// Index of the offending event.
        position: usize,
        /// The offending invocation event.
        event: Event,
    },
    /// A response does not answer the pending invocation per `Σ_k`.
    MismatchedResponse {
        /// Index of the offending event.
        position: usize,
        /// The invocation awaiting a response.
        invocation: Invocation,
        /// The non-matching response.
        response: Response,
        /// The process involved.
        process: ProcessId,
    },
}

impl fmt::Display for WellFormednessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormednessError::ResponseWithoutInvocation { position, event } => write!(
                f,
                "response {event} at position {position} has no pending invocation"
            ),
            WellFormednessError::InvocationWhilePending { position, event } => write!(
                f,
                "invocation {event} at position {position} while a response is still pending"
            ),
            WellFormednessError::MismatchedResponse {
                position,
                invocation,
                response,
                process,
            } => write!(
                f,
                "response {response} at position {position} does not answer {process}'s pending invocation {invocation}"
            ),
        }
    }
}

impl std::error::Error for WellFormednessError {}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Creates a history from raw events **without** validating
    /// well-formedness. Use [`History::try_from_events`] to validate.
    pub fn from_events_unchecked(events: Vec<Event>) -> Self {
        History { events }
    }

    /// Creates a history from raw events, validating well-formedness.
    ///
    /// # Errors
    ///
    /// Returns a [`WellFormednessError`] if any per-process projection
    /// violates the alternation or matching rules of `Σ_k`.
    pub fn try_from_events(events: Vec<Event>) -> Result<Self, WellFormednessError> {
        let h = History { events };
        h.validate()?;
        Ok(h)
    }

    /// Number of events in the history.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The underlying event slice.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterates over the events in order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Appends an event without validation.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Replaces the event at `index` in place, preserving every other
    /// event's position. Recorder repair path: a commit response logged
    /// optimistically at the TM's serialization point whose commit then
    /// fails its final validation is amended to the abort response at
    /// the same position (sound — aborted transactions impose no
    /// commit-order obligation, and the position still falls inside the
    /// transaction's `tryC` window).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn amend(&mut self, index: usize, event: Event) {
        self.events[index] = event;
    }

    /// Appends an event, validating that the resulting history stays
    /// well-formed with respect to the process's pending invocation.
    ///
    /// # Errors
    ///
    /// Returns a [`WellFormednessError`] describing the violation; the
    /// history is left unchanged in that case.
    pub fn push_checked(&mut self, event: Event) -> Result<(), WellFormednessError> {
        let pending = self.pending_invocation(event.process);
        let position = self.events.len();
        match (event.kind, pending) {
            (EventKind::Invocation(_), Some(_)) => {
                return Err(WellFormednessError::InvocationWhilePending { position, event })
            }
            (EventKind::Response(_), None) => {
                return Err(WellFormednessError::ResponseWithoutInvocation { position, event })
            }
            (EventKind::Response(resp), Some(inv)) if !resp.answers(inv) => {
                return Err(WellFormednessError::MismatchedResponse {
                    position,
                    invocation: inv,
                    response: resp,
                    process: event.process,
                })
            }
            _ => {}
        }
        self.events.push(event);
        Ok(())
    }

    /// Validates well-formedness of the entire history.
    ///
    /// # Errors
    ///
    /// Returns the first [`WellFormednessError`] encountered scanning left
    /// to right.
    pub fn validate(&self) -> Result<(), WellFormednessError> {
        let mut pending: std::collections::BTreeMap<ProcessId, Invocation> = Default::default();
        for (position, event) in self.events.iter().enumerate() {
            match event.kind {
                EventKind::Invocation(inv) => {
                    if pending.contains_key(&event.process) {
                        return Err(WellFormednessError::InvocationWhilePending {
                            position,
                            event: *event,
                        });
                    }
                    pending.insert(event.process, inv);
                }
                EventKind::Response(resp) => match pending.remove(&event.process) {
                    None => {
                        return Err(WellFormednessError::ResponseWithoutInvocation {
                            position,
                            event: *event,
                        })
                    }
                    Some(inv) if !resp.answers(inv) => {
                        return Err(WellFormednessError::MismatchedResponse {
                            position,
                            invocation: inv,
                            response: resp,
                            process: event.process,
                        })
                    }
                    Some(_) => {}
                },
            }
        }
        Ok(())
    }

    /// Whether the history is well-formed.
    pub fn is_well_formed(&self) -> bool {
        self.validate().is_ok()
    }

    /// The projection `H|pk`: the longest subsequence of events belonging to
    /// process `pk`.
    pub fn project(&self, process: ProcessId) -> History {
        History {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| e.process == process)
                .collect(),
        }
    }

    /// The set of processes that have at least one event in the history.
    pub fn processes(&self) -> BTreeSet<ProcessId> {
        self.events.iter().map(|e| e.process).collect()
    }

    /// The set of t-variables accessed by any invocation in the history.
    pub fn tvars(&self) -> BTreeSet<TVarId> {
        self.events.iter().filter_map(Event::tvar).collect()
    }

    /// The invocation of `process` that has not yet been answered, if any.
    pub fn pending_invocation(&self, process: ProcessId) -> Option<Invocation> {
        let mut pending = None;
        for event in self.events.iter().filter(|e| e.process == process) {
            match event.kind {
                EventKind::Invocation(inv) => pending = Some(inv),
                EventKind::Response(_) => pending = None,
            }
        }
        pending
    }

    /// Two histories are *equivalent* iff every process's projection is the
    /// same in both.
    pub fn equivalent(&self, other: &History) -> bool {
        let procs: BTreeSet<ProcessId> = self
            .processes()
            .union(&other.processes())
            .copied()
            .collect();
        procs
            .iter()
            .all(|&p| self.project(p).events == other.project(p).events)
    }

    /// Parses the history into transactions (in order of first event).
    pub fn transactions(&self) -> Vec<Transaction> {
        transactions_of(self)
    }

    /// The completion `com(H)`: every transaction that is neither committed
    /// nor aborted is aborted by appending events at the end of the history.
    ///
    /// * A pending invocation is answered with `A_k` (allowed by `Σ_k`:
    ///   `e · A_k` for any invocation `e`).
    /// * A live transaction whose last event is a response is closed with
    ///   `tryC_k · A_k` so that the extended projection remains in `Σ_k^∞`.
    ///
    /// Returns `H` unchanged (a clone) if it is already complete.
    pub fn complete(&self) -> History {
        let mut out = self.clone();
        for tx in self.transactions() {
            match tx.status {
                TxStatus::Committed | TxStatus::Aborted => {}
                TxStatus::CommitPending => out.push(Event::aborted(tx.id.process)),
                TxStatus::Live => {
                    if self.pending_invocation(tx.id.process).is_some() {
                        out.push(Event::aborted(tx.id.process));
                    } else {
                        out.push(Event::try_commit(tx.id.process));
                        out.push(Event::aborted(tx.id.process));
                    }
                }
            }
        }
        out
    }

    /// Whether `com(H) = H`, i.e. every transaction is committed or aborted.
    pub fn is_complete(&self) -> bool {
        self.transactions()
            .iter()
            .all(|t| matches!(t.status, TxStatus::Committed | TxStatus::Aborted))
    }

    /// Whether the history is *sequential*: no two transactions are
    /// concurrent (every transaction but possibly the last finishes before
    /// the next one starts).
    pub fn is_sequential(&self) -> bool {
        let txs = self.transactions();
        for pair in txs.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            // Transactions are sorted by first position; `a` must terminate
            // (commit or abort) before `b` starts.
            if !matches!(a.status, TxStatus::Committed | TxStatus::Aborted)
                || a.last_pos >= b.first_pos
            {
                return false;
            }
        }
        true
    }

    /// The longest subsequence of `H` containing only events of committed
    /// transactions (used by strict serializability, where only committed
    /// transactions must be explainable).
    pub fn committed_projection(&self) -> History {
        let mut keep = vec![false; self.events.len()];
        for tx in self.transactions() {
            if tx.status == TxStatus::Committed {
                for &pos in &tx.positions {
                    keep[pos] = true;
                }
            }
        }
        History {
            events: self
                .events
                .iter()
                .enumerate()
                .filter_map(|(i, e)| keep[i].then_some(*e))
                .collect(),
        }
    }

    /// Concatenates two histories.
    pub fn concat(&self, other: &History) -> History {
        let mut events = self.events.clone();
        events.extend_from_slice(&other.events);
        History { events }
    }

    /// Number of commit events `C_k` of the given process.
    pub fn commit_count(&self, process: ProcessId) -> usize {
        self.events
            .iter()
            .filter(|e| e.process == process && e.is_commit())
            .count()
    }

    /// Number of abort events `A_k` of the given process.
    pub fn abort_count(&self, process: ProcessId) -> usize {
        self.events
            .iter()
            .filter(|e| e.process == process && e.is_abort())
            .count()
    }

    /// Number of `tryC_k` invocations of the given process.
    pub fn try_commit_count(&self, process: ProcessId) -> usize {
        self.events
            .iter()
            .filter(|e| e.process == process && e.is_try_commit())
            .count()
    }

    /// Renders the history as per-process lanes in the style of the paper's
    /// figures: one line per process, operations joined left to right in
    /// global order.
    ///
    /// ```text
    /// p1 | x.read→0                      x.write(1)→A
    /// p2 |          x.read→0 x.write(1)→ok tryC→C
    /// ```
    pub fn render_lanes(&self) -> String {
        use std::fmt::Write as _;
        let procs: Vec<ProcessId> = self.processes().into_iter().collect();
        if procs.is_empty() {
            return String::from("(empty history)\n");
        }
        // Pair invocations with their responses into "cells".
        struct Cell {
            process: ProcessId,
            text: String,
        }
        let mut cells: Vec<Cell> = Vec::new();
        let mut open: std::collections::BTreeMap<ProcessId, usize> = Default::default();
        for event in &self.events {
            match event.kind {
                EventKind::Invocation(inv) => {
                    open.insert(event.process, cells.len());
                    cells.push(Cell {
                        process: event.process,
                        text: inv.to_string(),
                    });
                }
                EventKind::Response(resp) => {
                    if let Some(&idx) = open.get(&event.process) {
                        let _ = write!(cells[idx].text, "→{resp}");
                        open.remove(&event.process);
                    }
                }
            }
        }
        let mut lanes: std::collections::BTreeMap<ProcessId, String> = procs
            .iter()
            .map(|&p| (p, format!("{p:>4} |", p = p.to_string())))
            .collect();
        for cell in &cells {
            let width = cell.text.len() + 1;
            for (&p, lane) in lanes.iter_mut() {
                if p == cell.process {
                    let _ = write!(lane, " {}", cell.text);
                } else {
                    let _ = write!(lane, "{:width$}", "", width = width);
                }
            }
        }
        let mut out = String::new();
        for (_, lane) in lanes {
            out.push_str(lane.trim_end());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for event in &self.events {
            if !first {
                write!(f, " · ")?;
            }
            write!(f, "{event}")?;
            first = false;
        }
        if first {
            write!(f, "ε")?;
        }
        Ok(())
    }
}

impl FromIterator<Event> for History {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        History {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<Event> for History {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl<'a> IntoIterator for &'a History {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for History {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);

    fn committed_write_history() -> History {
        HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P1, X, 1)
            .commit(P1)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_history_is_well_formed_complete_sequential() {
        let h = History::new();
        assert!(h.is_well_formed());
        assert!(h.is_complete());
        assert!(h.is_sequential());
        assert!(h.is_empty());
        assert_eq!(h.to_string(), "ε");
    }

    #[test]
    fn validation_rejects_response_without_invocation() {
        let h = History::from_events_unchecked(vec![Event::value(P1, 0)]);
        assert!(matches!(
            h.validate(),
            Err(WellFormednessError::ResponseWithoutInvocation { position: 0, .. })
        ));
    }

    #[test]
    fn validation_rejects_double_invocation() {
        let h = History::from_events_unchecked(vec![Event::read(P1, X), Event::read(P1, X)]);
        assert!(matches!(
            h.validate(),
            Err(WellFormednessError::InvocationWhilePending { position: 1, .. })
        ));
    }

    #[test]
    fn validation_rejects_mismatched_response() {
        let h = History::from_events_unchecked(vec![Event::read(P1, X), Event::ok(P1)]);
        assert!(matches!(
            h.validate(),
            Err(WellFormednessError::MismatchedResponse { position: 1, .. })
        ));
    }

    #[test]
    fn validation_allows_interleaving_across_processes() {
        let h = History::from_events_unchecked(vec![
            Event::read(P1, X),
            Event::read(P2, X),
            Event::value(P2, 0),
            Event::value(P1, 0),
        ]);
        assert!(h.is_well_formed());
    }

    #[test]
    fn push_checked_accepts_valid_and_rejects_invalid() {
        let mut h = History::new();
        h.push_checked(Event::read(P1, X)).unwrap();
        assert!(h.push_checked(Event::write(P1, X, 1)).is_err());
        h.push_checked(Event::value(P1, 0)).unwrap();
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn projection_extracts_single_process() {
        let h = History::from_events_unchecked(vec![
            Event::read(P1, X),
            Event::read(P2, X),
            Event::value(P2, 0),
            Event::value(P1, 0),
        ]);
        let p1 = h.project(P1);
        assert_eq!(p1.events(), &[Event::read(P1, X), Event::value(P1, 0)][..]);
        assert_eq!(h.project(ProcessId(9)).len(), 0);
    }

    #[test]
    fn pending_invocation_tracking() {
        let mut h = History::new();
        assert_eq!(h.pending_invocation(P1), None);
        h.push(Event::read(P1, X));
        assert_eq!(h.pending_invocation(P1), Some(Invocation::Read(X)));
        h.push(Event::value(P1, 0));
        assert_eq!(h.pending_invocation(P1), None);
    }

    #[test]
    fn equivalence_ignores_interleaving_but_not_content() {
        let a = History::from_events_unchecked(vec![
            Event::read(P1, X),
            Event::read(P2, X),
            Event::value(P1, 0),
            Event::value(P2, 0),
        ]);
        let b = History::from_events_unchecked(vec![
            Event::read(P2, X),
            Event::value(P2, 0),
            Event::read(P1, X),
            Event::value(P1, 0),
        ]);
        assert!(a.equivalent(&b));

        let c = History::from_events_unchecked(vec![
            Event::read(P2, X),
            Event::value(P2, 1), // different value
            Event::read(P1, X),
            Event::value(P1, 0),
        ]);
        assert!(!a.equivalent(&c));
    }

    #[test]
    fn completion_of_complete_history_is_identity() {
        let h = committed_write_history();
        assert!(h.is_complete());
        assert_eq!(h.complete(), h);
    }

    #[test]
    fn completion_aborts_pending_invocation() {
        let h = History::from_events_unchecked(vec![Event::read(P1, X)]);
        let c = h.complete();
        assert!(c.is_complete());
        assert_eq!(c.len(), 2);
        assert!(c.events()[1].is_abort());
        assert!(c.is_well_formed());
    }

    #[test]
    fn completion_closes_live_transaction_with_tryc_abort() {
        let h = HistoryBuilder::new().read(P1, X, 0).build().unwrap();
        let c = h.complete();
        assert!(c.is_complete());
        assert!(c.is_well_formed());
        assert_eq!(c.len(), 4); // read, value, tryC, A
        assert!(c.events()[2].is_try_commit());
        assert!(c.events()[3].is_abort());
    }

    #[test]
    fn completion_aborts_commit_pending_transaction() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .invoke(P1, Invocation::TryCommit)
            .build()
            .unwrap();
        let c = h.complete();
        assert!(c.is_well_formed());
        assert!(c.is_complete());
        assert!(c.events().last().unwrap().is_abort());
    }

    #[test]
    fn sequential_detection() {
        let seq = HistoryBuilder::new()
            .read(P1, X, 0)
            .commit(P1)
            .read(P2, X, 0)
            .commit(P2)
            .build()
            .unwrap();
        assert!(seq.is_sequential());

        let conc = History::from_events_unchecked(vec![
            Event::read(P1, X),
            Event::read(P2, X),
            Event::value(P1, 0),
            Event::value(P2, 0),
        ]);
        assert!(!conc.is_sequential());
    }

    #[test]
    fn committed_projection_keeps_only_committed_transactions() {
        // p1 commits; p2 aborts.
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .read_abort(P2, X)
            .commit(P1)
            .build()
            .unwrap();
        let cp = h.committed_projection();
        assert!(cp.iter().all(|e| e.process == P1));
        assert_eq!(cp.len(), 4); // read, value, tryC, C
    }

    #[test]
    fn event_counters() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .commit(P1)
            .read_abort(P1, X)
            .build()
            .unwrap();
        assert_eq!(h.commit_count(P1), 1);
        assert_eq!(h.abort_count(P1), 1);
        assert_eq!(h.try_commit_count(P1), 1);
        assert_eq!(h.commit_count(P2), 0);
    }

    #[test]
    fn concat_appends_events() {
        let a = HistoryBuilder::new().read(P1, X, 0).build().unwrap();
        let b = HistoryBuilder::new().commit(P1).build().unwrap();
        let ab = a.concat(&b);
        assert_eq!(ab.len(), a.len() + b.len());
        assert!(ab.is_well_formed());
    }

    #[test]
    fn render_lanes_contains_each_process_row() {
        let h = committed_write_history();
        let lanes = h.render_lanes();
        assert!(lanes.contains("p1 |"));
        assert!(lanes.contains("x.read→0"));
        assert!(lanes.contains("tryC→C"));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut h: History = vec![Event::read(P1, X)].into_iter().collect();
        h.extend(vec![Event::value(P1, 0)]);
        assert_eq!(h.len(), 2);
        assert!(h.is_well_formed());
    }
}
