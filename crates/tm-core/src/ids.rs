//! Identifier newtypes for the formal model.
//!
//! The paper works with a set of processes `p1, ..., pn` (identified by
//! `k ∈ K`) and a set of transactional variables (t-variables) `X`. We
//! represent both with zero-based index newtypes so that they can be used
//! directly as array indices while remaining statically distinct types
//! (C-NEWTYPE).

use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of a process `pk`.
///
/// Process identifiers are zero-based indices. In rendered histories they are
/// displayed one-based (`p1`, `p2`, ...) to match the paper's figures.
///
/// # Examples
///
/// ```
/// use tm_core::ProcessId;
///
/// let p1 = ProcessId(0);
/// assert_eq!(p1.to_string(), "p1");
/// assert_eq!(p1.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Returns the zero-based index of this process.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Iterates over the first `n` process identifiers `p1 ..= pn`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tm_core::ProcessId;
    ///
    /// let ids: Vec<_> = ProcessId::first_n(3).collect();
    /// assert_eq!(ids, vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
    /// ```
    pub fn first_n(n: usize) -> impl Iterator<Item = ProcessId> {
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 + 1)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

/// Identifier of a transactional variable (t-variable) `xj`.
///
/// T-variable identifiers are zero-based indices. In rendered histories they
/// are displayed as `x`, `y`, `z`, ... for the first few variables (matching
/// the paper's figures) and `x3`, `x4`, ... beyond that.
///
/// # Examples
///
/// ```
/// use tm_core::TVarId;
///
/// assert_eq!(TVarId(0).to_string(), "x");
/// assert_eq!(TVarId(1).to_string(), "y");
/// assert_eq!(TVarId(2).to_string(), "z");
/// assert_eq!(TVarId(3).to_string(), "x3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TVarId(pub usize);

impl TVarId {
    /// Returns the zero-based index of this t-variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Iterates over the first `n` t-variable identifiers.
    pub fn first_n(n: usize) -> impl Iterator<Item = TVarId> {
        (0..n).map(TVarId)
    }
}

impl fmt::Display for TVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "x"),
            1 => write!(f, "y"),
            2 => write!(f, "z"),
            n => write!(f, "x{n}"),
        }
    }
}

impl From<usize> for TVarId {
    fn from(index: usize) -> Self {
        TVarId(index)
    }
}

/// The value domain `V` of t-variables.
///
/// The paper uses integer values with initial value `0` and increments
/// (`w(v + 1)`); `u64` covers every construction in the paper and keeps
/// arithmetic in adversary strategies trivial.
pub type Value = u64;

/// The initial value of every t-variable (the paper initializes `Val[k][j]`
/// to `0` in the `Fgp` automaton and all figures read `0` first).
pub const INITIAL_VALUE: Value = 0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_display_is_one_based() {
        assert_eq!(ProcessId(0).to_string(), "p1");
        assert_eq!(ProcessId(9).to_string(), "p10");
    }

    #[test]
    fn tvar_display_matches_paper_names() {
        assert_eq!(TVarId(0).to_string(), "x");
        assert_eq!(TVarId(1).to_string(), "y");
        assert_eq!(TVarId(2).to_string(), "z");
        assert_eq!(TVarId(7).to_string(), "x7");
    }

    #[test]
    fn first_n_yields_consecutive_ids() {
        assert_eq!(
            ProcessId::first_n(2).collect::<Vec<_>>(),
            vec![ProcessId(0), ProcessId(1)]
        );
        assert_eq!(
            TVarId::first_n(2).collect::<Vec<_>>(),
            vec![TVarId(0), TVarId(1)]
        );
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ProcessId(0) < ProcessId(1));
        assert!(TVarId(3) > TVarId(2));
    }

    #[test]
    fn from_usize_round_trips() {
        assert_eq!(ProcessId::from(4).index(), 4);
        assert_eq!(TVarId::from(5).index(), 5);
    }
}
