//! Ergonomic construction of histories.
//!
//! The paper's figures are sequences of complete operations (`r → v`,
//! `w(v)` + `ok`, `tryC` + `C`/`A`). [`HistoryBuilder`] appends such
//! operation pairs — or raw events for partial operations — and validates
//! well-formedness at [`HistoryBuilder::build`] time.

use crate::event::{Event, Invocation, Response};
use crate::history::{History, WellFormednessError};
use crate::ids::{ProcessId, TVarId, Value};

/// Non-consuming builder for [`History`] values.
///
/// # Examples
///
/// Figure 4 of the paper (strictly serializable but not opaque):
///
/// ```
/// use tm_core::{HistoryBuilder, ProcessId, TVarId};
///
/// let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
/// let h = HistoryBuilder::new()
///     .read(p1, x, 0)          // p1: x.read → 0
///     .write_ok(p2, x, 1)      // p2: x.write(1) → ok
///     .commit(p2)              // p2: tryC → C
///     .read(p1, x, 1)          // p1: x.read → 1
///     .abort_on_try_commit(p1) // p1: tryC → A  (completion-style abort)
///     .build()?;
/// assert_eq!(h.transactions().len(), 2);
/// # Ok::<(), tm_core::WellFormednessError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistoryBuilder {
    events: Vec<Event>,
}

impl HistoryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        HistoryBuilder::default()
    }

    /// Appends a raw event.
    pub fn push(&mut self, event: Event) -> &mut Self {
        self.events.push(event);
        self
    }

    /// Appends a bare invocation (left pending).
    pub fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> &mut Self {
        self.push(Event::invocation(process, invocation))
    }

    /// Appends a bare response.
    pub fn respond(&mut self, process: ProcessId, response: Response) -> &mut Self {
        self.push(Event::response(process, response))
    }

    /// Appends a completed read: `x.read_k · v_k`.
    pub fn read(&mut self, process: ProcessId, x: TVarId, value: Value) -> &mut Self {
        self.push(Event::read(process, x));
        self.push(Event::value(process, value))
    }

    /// Appends a read answered by abort: `x.read_k · A_k`.
    pub fn read_abort(&mut self, process: ProcessId, x: TVarId) -> &mut Self {
        self.push(Event::read(process, x));
        self.push(Event::aborted(process))
    }

    /// Appends a completed write: `x.write_k(v) · ok_k`.
    pub fn write_ok(&mut self, process: ProcessId, x: TVarId, value: Value) -> &mut Self {
        self.push(Event::write(process, x, value));
        self.push(Event::ok(process))
    }

    /// Appends a write answered by abort: `x.write_k(v) · A_k`.
    pub fn write_abort(&mut self, process: ProcessId, x: TVarId, value: Value) -> &mut Self {
        self.push(Event::write(process, x, value));
        self.push(Event::aborted(process))
    }

    /// Appends a successful commit: `tryC_k · C_k`.
    pub fn commit(&mut self, process: ProcessId) -> &mut Self {
        self.push(Event::try_commit(process));
        self.push(Event::committed(process))
    }

    /// Appends a failed commit: `tryC_k · A_k`.
    pub fn abort_on_try_commit(&mut self, process: ProcessId) -> &mut Self {
        self.push(Event::try_commit(process));
        self.push(Event::aborted(process))
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been appended.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validates and returns the history.
    ///
    /// # Errors
    ///
    /// Returns a [`WellFormednessError`] if the event sequence violates the
    /// per-process alphabet `Σ_k`.
    pub fn build(&self) -> Result<History, WellFormednessError> {
        History::try_from_events(self.events.clone())
    }

    /// Returns the history without validating well-formedness (useful for
    /// constructing deliberately malformed sequences in tests).
    pub fn build_unchecked(&self) -> History {
        History::from_events_unchecked(self.events.clone())
    }
}

/// Pre-built histories for the paper's numbered figures.
///
/// Each function returns the *finite* history depicted (or, for the infinite
/// figures, the canonical finite pattern used by the corresponding lasso in
/// `tm-liveness`). See EXPERIMENTS.md for the mapping.
pub mod figures {
    use super::*;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);

    /// Figure 1: `p1` reads 0 from `x`; `p2` reads 0, writes 1 and commits;
    /// `p1` then writes 1 and is aborted. Opaque and strictly serializable.
    pub fn figure_1() -> History {
        HistoryBuilder::new()
            .read(P1, X, 0)
            .read(P2, X, 0)
            .write_ok(P2, X, 1)
            .commit(P2)
            .write_ok(P1, X, 1)
            .abort_on_try_commit(P1)
            .build()
            .expect("figure 1 is well-formed")
    }

    /// Figure 3: both processes read 0 from `x`, write 1 and commit.
    /// Neither opaque nor strictly serializable.
    pub fn figure_3() -> History {
        HistoryBuilder::new()
            .read(P1, X, 0)
            .read(P2, X, 0)
            .write_ok(P2, X, 1)
            .commit(P2)
            .write_ok(P1, X, 1)
            .commit(P1)
            .build()
            .expect("figure 3 is well-formed")
    }

    /// Figure 4: `p2` writes 1 and commits while `p1`'s transaction is live;
    /// `p1` then reads 1 (the committed value) and aborts. Strictly
    /// serializable (only committed transactions need explaining) but not
    /// opaque (`p1` read 0 then observed state written after its snapshot).
    pub fn figure_4() -> History {
        HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P2, X, 1)
            .commit(P2)
            .read(P1, X, 1)
            .abort_on_try_commit(P1)
            .build()
            .expect("figure 4 is well-formed")
    }

    /// Figure 8 / Figure 11: the *would-be terminating* suffix of
    /// Algorithms 1 and 2 — `p1` reads `v`, `p2` reads `v`, writes `v+1`
    /// and commits, then `p1` writes `v+1` and commits. Not opaque (the
    /// checker proves the adversary's central claim).
    pub fn figure_8(v: Value) -> History {
        HistoryBuilder::new()
            .read(P1, X, v)
            .read(P2, X, v)
            .write_ok(P2, X, v + 1)
            .commit(P2)
            .write_ok(P1, X, v + 1)
            .commit(P1)
            .build()
            .expect("figure 8 is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::figures;
    use super::*;
    use crate::transaction::TxStatus;

    const P1: ProcessId = ProcessId(0);
    const X: TVarId = TVarId(0);

    #[test]
    fn builder_chains_and_validates() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P1, X, 1)
            .commit(P1)
            .build()
            .unwrap();
        assert_eq!(h.len(), 6);
        assert!(h.is_complete());
    }

    #[test]
    fn builder_rejects_malformed() {
        let err = HistoryBuilder::new()
            .respond(P1, Response::Ok)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            WellFormednessError::ResponseWithoutInvocation { .. }
        ));
    }

    #[test]
    fn build_unchecked_permits_malformed() {
        let h = HistoryBuilder::new()
            .respond(P1, Response::Ok)
            .build_unchecked();
        assert_eq!(h.len(), 1);
        assert!(!h.is_well_formed());
    }

    #[test]
    fn figure_1_shape() {
        let h = figures::figure_1();
        assert!(h.is_well_formed());
        let txs = h.transactions();
        assert_eq!(txs.len(), 2);
        let t1 = txs.iter().find(|t| t.process() == P1).unwrap();
        let t2 = txs.iter().find(|t| t.process() == ProcessId(1)).unwrap();
        assert_eq!(t1.status, TxStatus::Aborted);
        assert_eq!(t2.status, TxStatus::Committed);
        assert!(t1.concurrent_with(t2));
    }

    #[test]
    fn figure_3_both_commit() {
        let h = figures::figure_3();
        let txs = h.transactions();
        assert!(txs.iter().all(|t| t.status == TxStatus::Committed));
    }

    #[test]
    fn figure_4_shape() {
        let h = figures::figure_4();
        let txs = h.transactions();
        assert_eq!(txs.len(), 2);
        assert_eq!(txs[0].status, TxStatus::Aborted); // p1
        assert_eq!(txs[1].status, TxStatus::Committed); // p2
    }

    #[test]
    fn figure_8_parameterized_by_value() {
        let h = figures::figure_8(41);
        let txs = h.transactions();
        assert!(txs.iter().all(|t| t.status == TxStatus::Committed));
        assert!(h.to_string().contains("x.write(42)"));
    }

    #[test]
    fn len_and_is_empty() {
        let mut b = HistoryBuilder::new();
        assert!(b.is_empty());
        b.read(P1, X, 0);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }
}
