//! Transactions parsed out of a history.
//!
//! A transaction of process `pk` in history `H` is a maximal subsequence
//! `T = e1 · ... · en` of `H|pk` such that `e1` is the first event of
//! `H|pk` or follows a terminal event (`A_k` or `C_k`), `en` is terminal or
//! the last event of `H|pk`, and no event other than `en` is terminal.

use core::fmt;
use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind, Invocation, Response};
use crate::history::History;
use crate::ids::{ProcessId, TVarId, Value};

/// Identifies a transaction as the `index`-th transaction (zero-based) of a
/// process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxId {
    /// The executing process.
    pub process: ProcessId,
    /// Zero-based position among the process's transactions.
    pub index: usize,
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T({},{})", self.process, self.index)
    }
}

/// Completion status of a transaction within a finite history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxStatus {
    /// The last event is the commit event `C_k`.
    Committed,
    /// The last event is the abort event `A_k`.
    Aborted,
    /// `tryC_k` was invoked but not yet answered.
    CommitPending,
    /// The transaction has neither invoked `tryC_k` nor terminated.
    Live,
}

impl TxStatus {
    /// Whether the transaction has terminated (committed or aborted).
    pub fn is_terminal(self) -> bool {
        matches!(self, TxStatus::Committed | TxStatus::Aborted)
    }
}

impl fmt::Display for TxStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxStatus::Committed => "committed",
            TxStatus::Aborted => "aborted",
            TxStatus::CommitPending => "commit-pending",
            TxStatus::Live => "live",
        };
        f.write_str(s)
    }
}

/// A completed operation inside a transaction, in the logical form used by
/// the sequential specification of t-variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operation {
    /// A read of `tvar` that returned `value`.
    Read {
        /// The t-variable read.
        tvar: TVarId,
        /// The value returned.
        value: Value,
    },
    /// A write of `value` to `tvar` acknowledged with `ok`.
    Write {
        /// The t-variable written.
        tvar: TVarId,
        /// The value written.
        value: Value,
    },
}

impl Operation {
    /// The t-variable accessed by the operation.
    pub fn tvar(self) -> TVarId {
        match self {
            Operation::Read { tvar, .. } | Operation::Write { tvar, .. } => tvar,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Read { tvar, value } => write!(f, "{tvar}.read→{value}"),
            Operation::Write { tvar, value } => write!(f, "{tvar}.write({value})"),
        }
    }
}

/// A transaction extracted from a history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Identity: (process, per-process index).
    pub id: TxId,
    /// The transaction's events, in order.
    pub events: Vec<Event>,
    /// Positions of the transaction's events in the enclosing history.
    pub positions: Vec<usize>,
    /// Position in the enclosing history of the first event.
    pub first_pos: usize,
    /// Position in the enclosing history of the last event.
    pub last_pos: usize,
    /// Completion status.
    pub status: TxStatus,
}

impl Transaction {
    /// The executing process.
    pub fn process(&self) -> ProcessId {
        self.id.process
    }

    /// The *completed* operations of the transaction in the logical
    /// read/write form (invocations answered by a matching non-abort
    /// response). A trailing invocation answered by `A_k` or still pending
    /// is not a completed operation.
    pub fn operations(&self) -> Vec<Operation> {
        let mut ops = Vec::new();
        let mut pending: Option<Invocation> = None;
        for event in &self.events {
            match event.kind {
                EventKind::Invocation(inv) => pending = Some(inv),
                EventKind::Response(resp) => {
                    if let Some(inv) = pending.take() {
                        match (inv, resp) {
                            (Invocation::Read(tvar), Response::Value(value)) => {
                                ops.push(Operation::Read { tvar, value })
                            }
                            (Invocation::Write(tvar, value), Response::Ok) => {
                                ops.push(Operation::Write { tvar, value })
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        ops
    }

    /// The set of t-variables read by completed operations.
    pub fn read_set(&self) -> Vec<TVarId> {
        let mut seen = std::collections::BTreeSet::new();
        self.operations()
            .into_iter()
            .filter_map(|op| match op {
                Operation::Read { tvar, .. } => seen.insert(tvar).then_some(tvar),
                Operation::Write { .. } => None,
            })
            .collect()
    }

    /// The set of t-variables written by completed operations.
    pub fn write_set(&self) -> Vec<TVarId> {
        let mut seen = std::collections::BTreeSet::new();
        self.operations()
            .into_iter()
            .filter_map(|op| match op {
                Operation::Write { tvar, .. } => seen.insert(tvar).then_some(tvar),
                Operation::Read { .. } => None,
            })
            .collect()
    }

    /// Whether `self` precedes `other` in the real-time order `<H`:
    /// `self` terminated (committed or aborted) and its last event occurs
    /// before `other`'s first event.
    pub fn precedes(&self, other: &Transaction) -> bool {
        self.status.is_terminal() && self.last_pos < other.first_pos
    }

    /// Whether `self` and `other` are concurrent (neither precedes the
    /// other).
    pub fn concurrent_with(&self, other: &Transaction) -> bool {
        !self.precedes(other) && !other.precedes(self)
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]:", self.id, self.status)?;
        for op in self.operations() {
            write!(f, " {op}")?;
        }
        Ok(())
    }
}

/// Parses all transactions of a history, ordered by first event position.
pub(crate) fn transactions_of(history: &History) -> Vec<Transaction> {
    #[derive(Default)]
    struct Cursor {
        index: usize,
        events: Vec<Event>,
        positions: Vec<usize>,
    }
    let mut cursors: std::collections::BTreeMap<ProcessId, Cursor> = Default::default();
    let mut out: Vec<Transaction> = Vec::new();

    for (pos, event) in history.iter().enumerate() {
        let cursor = cursors.entry(event.process).or_default();
        cursor.events.push(*event);
        cursor.positions.push(pos);
        let terminal = matches!(
            event.kind,
            EventKind::Response(Response::Committed) | EventKind::Response(Response::Aborted)
        );
        if terminal {
            let status = if event.is_commit() {
                TxStatus::Committed
            } else {
                TxStatus::Aborted
            };
            let events = std::mem::take(&mut cursor.events);
            let positions = std::mem::take(&mut cursor.positions);
            out.push(Transaction {
                id: TxId {
                    process: event.process,
                    index: cursor.index,
                },
                first_pos: positions[0],
                last_pos: *positions.last().expect("non-empty"),
                events,
                positions,
                status,
            });
            cursor.index += 1;
        }
    }

    // Remaining open transactions (live or commit-pending).
    for (&process, cursor) in cursors.iter() {
        if cursor.events.is_empty() {
            continue;
        }
        let commit_pending = cursor
            .events
            .iter()
            .next_back()
            .is_some_and(|e| e.is_try_commit());
        out.push(Transaction {
            id: TxId {
                process,
                index: cursor.index,
            },
            first_pos: cursor.positions[0],
            last_pos: *cursor.positions.last().expect("non-empty"),
            events: cursor.events.clone(),
            positions: cursor.positions.clone(),
            status: if commit_pending {
                TxStatus::CommitPending
            } else {
                TxStatus::Live
            },
        });
    }

    out.sort_by_key(|t| t.first_pos);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    #[test]
    fn parses_committed_and_aborted_transactions() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .commit(P1)
            .read_abort(P1, X)
            .build()
            .unwrap();
        let txs = h.transactions();
        assert_eq!(txs.len(), 2);
        assert_eq!(
            txs[0].id,
            TxId {
                process: P1,
                index: 0
            }
        );
        assert_eq!(txs[0].status, TxStatus::Committed);
        assert_eq!(
            txs[1].id,
            TxId {
                process: P1,
                index: 1
            }
        );
        assert_eq!(txs[1].status, TxStatus::Aborted);
    }

    #[test]
    fn live_and_commit_pending_statuses() {
        let h = HistoryBuilder::new().read(P1, X, 0).build().unwrap();
        assert_eq!(h.transactions()[0].status, TxStatus::Live);

        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .invoke(P1, Invocation::TryCommit)
            .build()
            .unwrap();
        assert_eq!(h.transactions()[0].status, TxStatus::CommitPending);
    }

    #[test]
    fn pending_first_invocation_is_a_live_transaction() {
        let h = HistoryBuilder::new()
            .invoke(P1, Invocation::Read(X))
            .build()
            .unwrap();
        let txs = h.transactions();
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].status, TxStatus::Live);
    }

    #[test]
    fn operations_extract_reads_and_writes() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P1, Y, 5)
            .commit(P1)
            .build()
            .unwrap();
        let ops = h.transactions()[0].operations();
        assert_eq!(
            ops,
            vec![
                Operation::Read { tvar: X, value: 0 },
                Operation::Write { tvar: Y, value: 5 }
            ]
        );
    }

    #[test]
    fn aborted_operation_is_not_completed() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .write_abort(P1, X, 1)
            .build()
            .unwrap();
        let tx = &h.transactions()[0];
        assert_eq!(tx.status, TxStatus::Aborted);
        assert_eq!(tx.operations().len(), 1); // only the read completed
    }

    #[test]
    fn read_and_write_sets_deduplicate() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .read(P1, X, 0)
            .read(P1, Y, 0)
            .write_ok(P1, X, 1)
            .write_ok(P1, X, 2)
            .commit(P1)
            .build()
            .unwrap();
        let tx = &h.transactions()[0];
        assert_eq!(tx.read_set(), vec![X, Y]);
        assert_eq!(tx.write_set(), vec![X]);
    }

    #[test]
    fn real_time_order_and_concurrency() {
        // T1 (p1) finishes before T2 (p2) starts; T3 (p1) concurrent with T2.
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .commit(P1)
            .read(P2, X, 0)
            .read(P1, Y, 0)
            .commit(P2)
            .commit(P1)
            .build()
            .unwrap();
        let txs = h.transactions();
        assert_eq!(txs.len(), 3);
        let (t1, t2, t3) = (&txs[0], &txs[1], &txs[2]);
        assert!(t1.precedes(t2));
        assert!(t1.precedes(t3));
        assert!(t2.concurrent_with(t3));
        assert!(!t2.precedes(t3));
        assert!(!t3.precedes(t2));
    }

    #[test]
    fn live_transaction_never_precedes() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .read(P2, X, 0)
            .commit(P2)
            .build()
            .unwrap();
        let txs = h.transactions();
        let t1 = txs.iter().find(|t| t.process() == P1).unwrap();
        let t2 = txs.iter().find(|t| t.process() == P2).unwrap();
        assert_eq!(t1.status, TxStatus::Live);
        // Even though t1's last event precedes t2's last event, a live
        // transaction does not precede anything.
        assert!(!t1.precedes(t2));
    }

    #[test]
    fn transactions_ordered_by_first_event() {
        let h = HistoryBuilder::new()
            .read(P2, X, 0)
            .read(P1, X, 0)
            .commit(P1)
            .commit(P2)
            .build()
            .unwrap();
        let txs = h.transactions();
        assert_eq!(txs[0].process(), P2);
        assert_eq!(txs[1].process(), P1);
    }

    #[test]
    fn multiple_transactions_per_process_indexed() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .commit(P1)
            .read(P1, X, 0)
            .commit(P1)
            .read(P1, X, 0)
            .build()
            .unwrap();
        let txs = h.transactions();
        assert_eq!(txs.len(), 3);
        assert_eq!(txs[0].id.index, 0);
        assert_eq!(txs[1].id.index, 1);
        assert_eq!(txs[2].id.index, 2);
        assert_eq!(txs[2].status, TxStatus::Live);
    }

    #[test]
    fn display_renders_operations() {
        let h = HistoryBuilder::new()
            .read(P1, X, 0)
            .write_ok(P1, X, 1)
            .commit(P1)
            .build()
            .unwrap();
        let tx = &h.transactions()[0];
        let s = tx.to_string();
        assert!(s.contains("x.read→0"));
        assert!(s.contains("x.write(1)"));
        assert!(s.contains("committed"));
    }
}
