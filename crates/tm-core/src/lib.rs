//! Core formal model for transactional memory histories.
//!
//! This crate implements the event/history/transaction model of
//! *On the Liveness of Transactional Memory* (Bushkov, Guerraoui, Kapałka;
//! PODC 2012):
//!
//! * [`ProcessId`], [`TVarId`], [`Value`] — processes `pk`, t-variables
//!   `xj`, and the value domain `V`;
//! * [`Invocation`], [`Response`], [`Event`] — the alphabet `Inv ∪ Res` of
//!   the TM I/O automaton;
//! * [`History`] — finite event sequences with projection `H|pk`,
//!   completion `com(H)`, equivalence, and sequentiality;
//! * [`Transaction`] — transactions parsed from histories, with the
//!   real-time order `<H`;
//! * [`sequential`] — the sequential specification of t-variables and
//!   transaction legality (the ingredient of opacity and strict
//!   serializability, which live in the `tm-safety` crate);
//! * [`HistoryBuilder`] and [`builder::figures`] — ergonomic history
//!   construction, including the paper's figure histories.
//!
//! # Quick example
//!
//! ```
//! use tm_core::{builder::figures, ProcessId};
//!
//! // Figure 1 of the paper: p2 commits while p1's transaction aborts.
//! let h = figures::figure_1();
//! assert_eq!(h.commit_count(ProcessId(1)), 1);
//! assert_eq!(h.commit_count(ProcessId(0)), 0);
//! println!("{}", h.render_lanes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod digest;
pub mod event;
pub mod history;
pub mod ids;
pub mod sequential;
pub mod text;
pub mod transaction;

pub use builder::HistoryBuilder;
pub use digest::{digest_of, StableHasher};
pub use event::{Event, EventKind, Invocation, Response};
pub use history::{History, WellFormednessError};
pub use ids::{ProcessId, TVarId, Value, INITIAL_VALUE};
pub use sequential::{check_sequential_legality, final_committed_state, Legality};
pub use text::{parse_history, render_compact, ParseHistoryError};
pub use transaction::{Operation, Transaction, TxId, TxStatus};
