//! Stable, dependency-free 64-bit hashing for state fingerprints.
//!
//! The model checker's cross-schedule dedup and the liveness lasso search
//! both key hash tables on *canonical state digests* of TMs, clients and
//! certifiers. Those digests must be deterministic within a run but need
//! no cryptographic strength and no DoS resistance (all inputs are
//! machine-generated states, not attacker-controlled keys), so a plain
//! FNV-1a over the [`std::hash::Hash`] byte stream is the right tool:
//! allocation-free, seedless, and identical across threads — the parallel
//! frontier's per-worker seen sets agree on every digest.
//!
//! A 64-bit digest makes collisions a real (if astronomically unlikely)
//! possibility; every consumer is therefore *redundantly checked* — the
//! explorer's digest-dedup is differential-tested report-identical against
//! the non-dedup explorer, which would surface a collision as a count
//! mismatch.

use std::hash::{Hash, Hasher};

/// A deterministic, seedless 64-bit FNV-1a [`Hasher`].
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        StableHasher(FNV_OFFSET)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The FNV-1a digest of any hashable value.
pub fn digest_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = StableHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_deterministic() {
        let a = digest_of(&(1u64, vec![2u8, 3], "x"));
        let b = digest_of(&(1u64, vec![2u8, 3], "x"));
        assert_eq!(a, b);
    }

    #[test]
    fn digests_separate_nearby_values() {
        assert_ne!(digest_of(&1u64), digest_of(&2u64));
        assert_ne!(digest_of(&[1u8, 2]), digest_of(&[2u8, 1]));
        // Structure matters, not just content bytes.
        assert_ne!(
            digest_of(&(vec![1u8], vec![2u8])),
            digest_of(&(vec![1u8, 2u8], Vec::<u8>::new()))
        );
    }

    #[test]
    fn empty_input_hashes_to_offset_basis() {
        assert_eq!(StableHasher::new().finish(), FNV_OFFSET);
    }
}
