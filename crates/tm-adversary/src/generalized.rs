//! The n-process generalization (Lemma 1 / Theorem 2 flavour).
//!
//! Lemma 1 exhibits, for every TM ensuring a strictly serializable safety
//! property and a nonblocking liveness property, an infinite history with
//! at least two correct processes of which at most one makes progress.
//! This strategy generalizes Algorithm 1's shape to `n` processes: a
//! single victim `p1` and committers `p2 … pn` that take turns playing
//! the Step-2 role. Every committer stays correct and commits infinitely
//! often; the victim stays correct (it is aborted infinitely often) and
//! never commits — so `n − 1` of `n` correct processes make progress and
//! one starves, for arbitrary `n`.

use tm_core::{Invocation, ProcessId, Response, TVarId, Value};

use crate::strategy::Strategy;

const VICTIM: ProcessId = ProcessId(0);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    VictimReadDue,
    AwaitVictimRead,
    CommitterReadDue,
    AwaitCommitterRead,
    CommitterWriteDue,
    AwaitCommitterWrite,
    CommitterTryCDue,
    AwaitCommitterTryC,
    VictimAttackDue,
    AwaitVictimWrite,
    VictimTryCDue,
    AwaitVictimTryC,
    Finished,
}

/// A rotating-committers generalization of Algorithm 1 for `n ≥ 2`
/// processes.
#[derive(Debug, Clone)]
pub struct RotatingStarver {
    x: TVarId,
    processes: usize,
    state: State,
    /// Which committer (index into `1..processes`) plays Step 2 this
    /// round.
    committer: usize,
    victim_read: Option<Value>,
    committer_read: Value,
    rounds: usize,
}

impl RotatingStarver {
    /// Creates the strategy for `processes` processes playing on `x`.
    ///
    /// # Panics
    ///
    /// Panics if `processes < 2`.
    pub fn new(x: TVarId, processes: usize) -> Self {
        assert!(processes >= 2, "need a victim and at least one committer");
        RotatingStarver {
            x,
            processes,
            state: State::VictimReadDue,
            committer: 1,
            victim_read: None,
            committer_read: 0,
            rounds: 0,
        }
    }

    fn committer_id(&self) -> ProcessId {
        ProcessId(self.committer)
    }

    fn rotate(&mut self) {
        self.committer += 1;
        if self.committer >= self.processes {
            self.committer = 1;
        }
    }
}

impl Strategy for RotatingStarver {
    fn name(&self) -> &'static str {
        "rotating-starver"
    }

    fn next(&mut self) -> (ProcessId, Invocation) {
        match self.state {
            State::VictimReadDue => {
                self.state = State::AwaitVictimRead;
                (VICTIM, Invocation::Read(self.x))
            }
            State::CommitterReadDue => {
                self.state = State::AwaitCommitterRead;
                (self.committer_id(), Invocation::Read(self.x))
            }
            State::CommitterWriteDue => {
                self.state = State::AwaitCommitterWrite;
                (
                    self.committer_id(),
                    Invocation::Write(self.x, self.committer_read + 1),
                )
            }
            State::CommitterTryCDue => {
                self.state = State::AwaitCommitterTryC;
                (self.committer_id(), Invocation::TryCommit)
            }
            State::VictimAttackDue => match self.victim_read {
                None => {
                    self.state = State::AwaitVictimRead;
                    (VICTIM, Invocation::Read(self.x))
                }
                Some(v) => {
                    self.state = State::AwaitVictimWrite;
                    (VICTIM, Invocation::Write(self.x, v + 1))
                }
            },
            State::VictimTryCDue => {
                self.state = State::AwaitVictimTryC;
                (VICTIM, Invocation::TryCommit)
            }
            _ => unreachable!("next() in awaiting/finished state"),
        }
    }

    fn observe(&mut self, process: ProcessId, response: Response) {
        let committer = self.committer_id();
        self.state = match (self.state, process, response) {
            (State::AwaitVictimRead, p, Response::Value(v)) if p == VICTIM => {
                self.victim_read = Some(v);
                State::CommitterReadDue
            }
            (State::AwaitVictimRead, p, Response::Aborted) if p == VICTIM => {
                self.victim_read = None;
                State::CommitterReadDue
            }
            (State::AwaitCommitterRead, p, Response::Value(v)) if p == committer => {
                self.committer_read = v;
                State::CommitterWriteDue
            }
            (State::AwaitCommitterRead, p, Response::Aborted) if p == committer => {
                State::CommitterReadDue
            }
            (State::AwaitCommitterWrite, p, Response::Ok) if p == committer => {
                State::CommitterTryCDue
            }
            (State::AwaitCommitterWrite, p, Response::Aborted) if p == committer => {
                State::CommitterReadDue
            }
            (State::AwaitCommitterTryC, p, Response::Committed) if p == committer => {
                self.rounds += 1;
                State::VictimAttackDue
            }
            (State::AwaitCommitterTryC, p, Response::Aborted) if p == committer => {
                State::CommitterReadDue
            }
            (State::AwaitVictimWrite, p, Response::Ok) if p == VICTIM => State::VictimTryCDue,
            (State::AwaitVictimWrite, p, Response::Aborted) if p == VICTIM => {
                self.rotate();
                State::VictimReadDue
            }
            (State::AwaitVictimTryC, p, Response::Committed) if p == VICTIM => State::Finished,
            (State::AwaitVictimTryC, p, Response::Aborted) if p == VICTIM => {
                self.rotate();
                State::VictimReadDue
            }
            (state, p, r) => unreachable!("unexpected response {r:?} from {p} in {state:?}"),
        };
    }

    fn finished(&self) -> bool {
        self.state == State::Finished
    }

    fn rounds(&self) -> usize {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{run_game, GameConfig};
    use tm_stm::nonblocking_catalog;

    const X: TVarId = TVarId(0);

    #[test]
    fn all_committers_progress_victim_starves() {
        for n in [2, 3, 5, 8] {
            for mut tm in nonblocking_catalog(n, 1) {
                let mut strategy = RotatingStarver::new(X, n);
                let report = run_game(tm.as_mut(), &mut strategy, GameConfig::steps(8_000));
                assert!(!report.terminated, "{} n={n}", tm.name());
                assert_eq!(
                    report.commits[0],
                    0,
                    "{} n={n}: victim committed",
                    tm.name()
                );
                for k in 1..n {
                    assert!(
                        report.commits[k] > 0,
                        "{} n={n}: committer p{} never committed",
                        tm.name(),
                        k + 1
                    );
                }
                assert!(
                    report.aborts[0] > 0,
                    "{} n={n}: victim never aborted",
                    tm.name()
                );
            }
        }
    }

    #[test]
    fn histories_remain_opaque() {
        for mut tm in nonblocking_catalog(4, 1) {
            let mut strategy = RotatingStarver::new(X, 4);
            let report = run_game(
                tm.as_mut(),
                &mut strategy,
                GameConfig::steps(4_000).check_opacity(),
            );
            assert!(report.safety_ok, "{}", tm.name());
        }
    }

    #[test]
    #[should_panic(expected = "victim")]
    fn requires_two_processes() {
        let _ = RotatingStarver::new(X, 1);
    }
}
