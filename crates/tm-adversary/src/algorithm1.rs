//! Algorithm 1 of the paper (Theorem 1, parasitic-free systems).
//!
//! Two processes, one t-variable `x`:
//!
//! * **Step 1** — `p1` reads `x`, receiving a value `v` or `A1`; go to
//!   Step 2.
//! * **Step 2** — `p2` reads `x`; on `A2` repeat Step 2; else `p2` writes
//!   `v2 + 1`; on `A2` repeat Step 2; else `p2` invokes `tryC`; on `C2` go
//!   to Step 3, else repeat Step 2.
//! * **Step 3** — if `p1`'s Step-1 response was `A1`, go to Step 1; else
//!   `p1` writes `v + 1`; on `A1` go to Step 1; else `p1` invokes `tryC`;
//!   on `C1` **stop** — the paper proves the resulting history (Figure 8)
//!   is not opaque, so an opaque TM never lets this happen — else go to
//!   Step 1.
//!
//! While `p2` is looping in Step 2, `p1` is silent: the environment
//! behaves exactly as if `p1` had crashed (Figure 9); if the algorithm
//! reaches Step 3 forever, `p1` aborts forever (Figure 10). Either way
//! some correct process starves, contradicting local progress.

use tm_core::{Invocation, ProcessId, Response, TVarId, Value};

use crate::strategy::{Strategy, ValueMode};

const P1: ProcessId = ProcessId(0);
const P2: ProcessId = ProcessId(1);

/// Strategy state: `*Due` states emit an invocation from
/// [`Strategy::next`]; `Await*` states consume a response in
/// [`Strategy::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Step1ReadDue,
    AwaitStep1Read,
    Step2ReadDue,
    AwaitStep2Read,
    Step2WriteDue,
    AwaitStep2Write,
    Step2TryCDue,
    AwaitStep2TryC,
    Step3Due,
    AwaitStep3Write,
    Step3TryCDue,
    AwaitStep3TryC,
    Finished,
}

/// The Algorithm 1 adversary.
#[derive(Debug, Clone)]
pub struct Algorithm1 {
    x: TVarId,
    state: State,
    /// `p1`'s Step-1 response: `Some(v)` or `None` for `A1`.
    p1_read: Option<Value>,
    /// `p2`'s most recent read value.
    p2_read: Value,
    /// Offset the victim writes (`v + victim_offset`); the paper uses 1.
    /// Ignored in [`ValueMode::Binary`].
    victim_offset: Value,
    mode: ValueMode,
    rounds: usize,
}

impl Algorithm1 {
    /// Creates the adversary playing on t-variable `x` (processes `p1` and
    /// `p2` are indices 0 and 1).
    pub fn new(x: TVarId) -> Self {
        Self::with_victim_offset(x, 1)
    }

    /// Like [`Algorithm1::new`], but the victim writes `v + offset`
    /// instead of `v + 1`. Against a correct TM this changes nothing (the
    /// victim's writes never commit); against the literal `Fgp` variant an
    /// offset ≠ 1 makes the leaked aborted write *observable*, which the
    /// safety experiments exploit.
    pub fn with_victim_offset(x: TVarId, offset: Value) -> Self {
        Algorithm1 {
            x,
            state: State::Step1ReadDue,
            p1_read: None,
            p2_read: 0,
            victim_offset: offset,
            mode: ValueMode::Increment,
            rounds: 0,
        }
    }

    /// Binary-domain variant: both processes write `1 − v` instead of
    /// `v + 1`, so the produced run is eventually periodic and the lasso
    /// detector can recover the infinite history (see the
    /// `thm1_liveness_bridge` harness).
    pub fn binary(x: TVarId) -> Self {
        let mut a = Self::new(x);
        a.mode = ValueMode::Binary;
        a
    }
}

impl Strategy for Algorithm1 {
    fn name(&self) -> &'static str {
        "algorithm-1"
    }

    fn next(&mut self) -> (ProcessId, Invocation) {
        match self.state {
            State::Step1ReadDue => {
                self.state = State::AwaitStep1Read;
                (P1, Invocation::Read(self.x))
            }
            State::Step2ReadDue => {
                self.state = State::AwaitStep2Read;
                (P2, Invocation::Read(self.x))
            }
            State::Step2WriteDue => {
                self.state = State::AwaitStep2Write;
                (P2, Invocation::Write(self.x, self.mode.next(self.p2_read)))
            }
            State::Step2TryCDue => {
                self.state = State::AwaitStep2TryC;
                (P2, Invocation::TryCommit)
            }
            State::Step3Due => match self.p1_read {
                // p1 was aborted at Step 1: restart from Step 1.
                None => {
                    self.state = State::AwaitStep1Read;
                    (P1, Invocation::Read(self.x))
                }
                Some(v) => {
                    self.state = State::AwaitStep3Write;
                    let value = match self.mode {
                        ValueMode::Increment => v + self.victim_offset,
                        ValueMode::Binary => v ^ 1,
                    };
                    (P1, Invocation::Write(self.x, value))
                }
            },
            State::Step3TryCDue => {
                self.state = State::AwaitStep3TryC;
                (P1, Invocation::TryCommit)
            }
            State::AwaitStep1Read
            | State::AwaitStep2Read
            | State::AwaitStep2Write
            | State::AwaitStep2TryC
            | State::AwaitStep3Write
            | State::AwaitStep3TryC => unreachable!("next() while awaiting a response"),
            State::Finished => unreachable!("next() after finish"),
        }
    }

    fn observe(&mut self, process: ProcessId, response: Response) {
        self.state = match (self.state, process, response) {
            (State::AwaitStep1Read, p, Response::Value(v)) if p == P1 => {
                self.p1_read = Some(v);
                State::Step2ReadDue
            }
            (State::AwaitStep1Read, p, Response::Aborted) if p == P1 => {
                self.p1_read = None;
                State::Step2ReadDue
            }
            (State::AwaitStep2Read, p, Response::Value(v)) if p == P2 => {
                self.p2_read = v;
                State::Step2WriteDue
            }
            (State::AwaitStep2Read, p, Response::Aborted) if p == P2 => State::Step2ReadDue,
            (State::AwaitStep2Write, p, Response::Ok) if p == P2 => State::Step2TryCDue,
            (State::AwaitStep2Write, p, Response::Aborted) if p == P2 => State::Step2ReadDue,
            (State::AwaitStep2TryC, p, Response::Committed) if p == P2 => {
                self.rounds += 1;
                State::Step3Due
            }
            (State::AwaitStep2TryC, p, Response::Aborted) if p == P2 => State::Step2ReadDue,
            (State::AwaitStep3Write, p, Response::Ok) if p == P1 => State::Step3TryCDue,
            (State::AwaitStep3Write, p, Response::Aborted) if p == P1 => State::Step1ReadDue,
            (State::AwaitStep3TryC, p, Response::Committed) if p == P1 => State::Finished,
            (State::AwaitStep3TryC, p, Response::Aborted) if p == P1 => State::Step1ReadDue,
            (state, p, r) => unreachable!("unexpected response {r:?} from {p} in {state:?}"),
        };
    }

    fn finished(&self) -> bool {
        self.state == State::Finished
    }

    fn rounds(&self) -> usize {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{run_game, GameConfig};
    use tm_stm::nonblocking_catalog;

    const X: TVarId = TVarId(0);

    #[test]
    fn starves_p1_against_every_opaque_tm() {
        for mut tm in nonblocking_catalog(2, 1) {
            let mut strategy = Algorithm1::new(X);
            let report = run_game(tm.as_mut(), &mut strategy, GameConfig::steps(5_000));
            assert!(
                !report.terminated,
                "{}: adversary must not terminate",
                tm.name()
            );
            assert_eq!(
                report.commits[P1.index()],
                0,
                "{}: p1 must never commit",
                tm.name()
            );
            assert!(
                report.commits[P2.index()] >= 100,
                "{}: p2 should commit every round (got {})",
                tm.name(),
                report.commits[P2.index()]
            );
            assert!(
                report.aborts[P1.index()] >= 100,
                "{}: p1 should abort every round",
                tm.name()
            );
        }
    }

    #[test]
    fn histories_remain_opaque_throughout() {
        for mut tm in nonblocking_catalog(2, 1) {
            let mut strategy = Algorithm1::new(X);
            let report = run_game(
                tm.as_mut(),
                &mut strategy,
                GameConfig::steps(2_000).check_opacity(),
            );
            assert!(
                report.safety_ok,
                "{}: every prefix must stay opaque",
                tm.name()
            );
        }
    }

    #[test]
    fn global_lock_escapes_by_blocking() {
        // The global-lock TM defeats Algorithm 1 differently: p1's read
        // acquires the lock, p2 blocks forever. Nobody aborts, nobody
        // commits — and in a crash-prone world p1 might never come back.
        let mut tm = tm_stm::GlobalLock::new(2, 1);
        let mut strategy = Algorithm1::new(X);
        let report = run_game(&mut tm, &mut strategy, GameConfig::steps(1_000));
        assert!(!report.terminated);
        assert_eq!(report.commits, vec![0, 0]);
        assert_eq!(report.aborts, vec![0, 0]);
        assert!(report.stalled_steps > 900);
    }

    #[test]
    fn rounds_count_p2_commits() {
        let mut tm = tm_stm::Tl2::new(2, 1);
        let mut strategy = Algorithm1::new(X);
        let report = run_game(&mut tm, &mut strategy, GameConfig::steps(1_000));
        assert_eq!(strategy.rounds(), report.commits[P2.index()]);
    }
}
