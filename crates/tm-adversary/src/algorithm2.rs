//! Algorithm 2 of the paper (Theorem 1, crash-free systems).
//!
//! Two processes, one t-variable `x`:
//!
//! * **Step 1** — `p1` reads `x` (value `v` or `A1`); then `p2` reads `x`;
//!   on `A2` repeat Step 1; else `p2` writes `v2 + 1`; on `A2` repeat
//!   Step 1; else `p2` invokes `tryC`; on `C2` go to Step 2, else repeat
//!   Step 1.
//! * **Step 2** — if `p1`'s last response was `A1`, go to Step 1; else
//!   `p1` writes `v + 1`; on `A1` go to Step 1; else `p1` invokes `tryC`;
//!   on `C1` **stop** (impossible for an opaque TM — Figure 11), else go
//!   to Step 1.
//!
//! The crucial difference from Algorithm 1: `p1` re-reads `x` at **every**
//! iteration of Step 1, so `p1` never crashes. If the TM keeps `p2`
//! looping, `p1` executes infinitely many reads without `tryC` — it is
//! parasitic (Figure 12); if `p2` keeps committing, `p1` keeps aborting —
//! it starves (Figure 13).

use tm_core::{Invocation, ProcessId, Response, TVarId, Value};

use crate::strategy::{Strategy, ValueMode};

const P1: ProcessId = ProcessId(0);
const P2: ProcessId = ProcessId(1);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    P1ReadDue,
    AwaitP1Read,
    P2ReadDue,
    AwaitP2Read,
    P2WriteDue,
    AwaitP2Write,
    P2TryCDue,
    AwaitP2TryC,
    Step2Due,
    AwaitP1Write,
    P1TryCDue,
    AwaitP1TryC,
    Finished,
}

/// The Algorithm 2 adversary.
#[derive(Debug, Clone)]
pub struct Algorithm2 {
    x: TVarId,
    state: State,
    /// `p1`'s most recent read response (`None` = aborted).
    p1_read: Option<Value>,
    /// Whether `p1` has an open transaction (its Step-1 read succeeded
    /// without a terminating abort since).
    p2_read: Value,
    mode: ValueMode,
    rounds: usize,
}

impl Algorithm2 {
    /// Creates the adversary playing on t-variable `x`.
    pub fn new(x: TVarId) -> Self {
        Algorithm2 {
            x,
            state: State::P1ReadDue,
            p1_read: None,
            p2_read: 0,
            mode: ValueMode::Increment,
            rounds: 0,
        }
    }

    /// Binary-domain variant (writes `1 − v`): eventually periodic runs
    /// for the lasso detector.
    pub fn binary(x: TVarId) -> Self {
        let mut a = Self::new(x);
        a.mode = ValueMode::Binary;
        a
    }
}

impl Strategy for Algorithm2 {
    fn name(&self) -> &'static str {
        "algorithm-2"
    }

    fn next(&mut self) -> (ProcessId, Invocation) {
        match self.state {
            State::P1ReadDue => {
                self.state = State::AwaitP1Read;
                (P1, Invocation::Read(self.x))
            }
            State::P2ReadDue => {
                self.state = State::AwaitP2Read;
                (P2, Invocation::Read(self.x))
            }
            State::P2WriteDue => {
                self.state = State::AwaitP2Write;
                (P2, Invocation::Write(self.x, self.mode.next(self.p2_read)))
            }
            State::P2TryCDue => {
                self.state = State::AwaitP2TryC;
                (P2, Invocation::TryCommit)
            }
            State::Step2Due => match self.p1_read {
                None => {
                    self.state = State::AwaitP1Read;
                    (P1, Invocation::Read(self.x))
                }
                Some(v) => {
                    self.state = State::AwaitP1Write;
                    (P1, Invocation::Write(self.x, self.mode.next(v)))
                }
            },
            State::P1TryCDue => {
                self.state = State::AwaitP1TryC;
                (P1, Invocation::TryCommit)
            }
            State::AwaitP1Read
            | State::AwaitP2Read
            | State::AwaitP2Write
            | State::AwaitP2TryC
            | State::AwaitP1Write
            | State::AwaitP1TryC => unreachable!("next() while awaiting a response"),
            State::Finished => unreachable!("next() after finish"),
        }
    }

    fn observe(&mut self, process: ProcessId, response: Response) {
        self.state = match (self.state, process, response) {
            (State::AwaitP1Read, p, Response::Value(v)) if p == P1 => {
                self.p1_read = Some(v);
                State::P2ReadDue
            }
            (State::AwaitP1Read, p, Response::Aborted) if p == P1 => {
                self.p1_read = None;
                State::P2ReadDue
            }
            (State::AwaitP2Read, p, Response::Value(v)) if p == P2 => {
                self.p2_read = v;
                State::P2WriteDue
            }
            (State::AwaitP2Read, p, Response::Aborted) if p == P2 => State::P1ReadDue,
            (State::AwaitP2Write, p, Response::Ok) if p == P2 => State::P2TryCDue,
            (State::AwaitP2Write, p, Response::Aborted) if p == P2 => State::P1ReadDue,
            (State::AwaitP2TryC, p, Response::Committed) if p == P2 => {
                self.rounds += 1;
                State::Step2Due
            }
            (State::AwaitP2TryC, p, Response::Aborted) if p == P2 => State::P1ReadDue,
            (State::AwaitP1Write, p, Response::Ok) if p == P1 => State::P1TryCDue,
            (State::AwaitP1Write, p, Response::Aborted) if p == P1 => State::P1ReadDue,
            (State::AwaitP1TryC, p, Response::Committed) if p == P1 => State::Finished,
            (State::AwaitP1TryC, p, Response::Aborted) if p == P1 => State::P1ReadDue,
            (state, p, r) => unreachable!("unexpected response {r:?} from {p} in {state:?}"),
        };
    }

    fn finished(&self) -> bool {
        self.state == State::Finished
    }

    fn rounds(&self) -> usize {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{run_game, GameConfig};
    use tm_stm::nonblocking_catalog;

    const X: TVarId = TVarId(0);

    #[test]
    fn starves_p1_against_every_opaque_tm() {
        for mut tm in nonblocking_catalog(2, 1) {
            let mut strategy = Algorithm2::new(X);
            let report = run_game(tm.as_mut(), &mut strategy, GameConfig::steps(5_000));
            assert!(
                !report.terminated,
                "{}: adversary must not terminate",
                tm.name()
            );
            assert_eq!(
                report.commits[P1.index()],
                0,
                "{}: p1 must never commit",
                tm.name()
            );
            assert!(
                report.commits[P2.index()] >= 100,
                "{}: p2 should commit (got {})",
                tm.name(),
                report.commits[P2.index()]
            );
        }
    }

    #[test]
    fn p1_keeps_invoking_and_never_crashes() {
        // In Algorithm 2, p1 issues a read every round: in the produced
        // history p1's projection keeps growing (it is never silent
        // forever, i.e. the run is crash-free).
        let mut tm = tm_stm::Recorded::new(tm_stm::Tl2::new(2, 1));
        let mut strategy = Algorithm2::new(X);
        let _ = run_game(&mut tm, &mut strategy, GameConfig::steps(2_000));
        let p1_events = tm.history().project(P1).len();
        assert!(p1_events >= 500, "p1 stayed active (got {p1_events})");
    }

    #[test]
    fn histories_remain_opaque_throughout() {
        for mut tm in nonblocking_catalog(2, 1) {
            let mut strategy = Algorithm2::new(X);
            let report = run_game(
                tm.as_mut(),
                &mut strategy,
                GameConfig::steps(2_000).check_opacity(),
            );
            assert!(report.safety_ok, "{}: opacity violated", tm.name());
        }
    }
}
