//! The environment side of the impossibility game.
//!
//! Theorem 1 views each history as a game between the *environment*
//! (processes + scheduler, deciding invocations) and the *implementation*
//! (deciding responses). A [`Strategy`] is an environment: asked for the
//! next invocation, then shown the TM's response. The game driver
//! ([`crate::game`]) wires a strategy to any `SteppedTm`.

use tm_core::{Invocation, ProcessId, Response, Value};

/// How the adversary computes the "different value" it writes over a read
/// value `v`.
///
/// The paper's algorithms write `v + 1`, which makes the produced infinite
/// history aperiodic in values. [`ValueMode::Binary`] writes `1 − v`
/// instead (the paper's argument only needs *some* value different from
/// `v`), which makes the run **eventually periodic** — so the lasso
/// detector (`tm_liveness::detect_lasso`) can recover the infinite history
/// and classify it formally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueMode {
    /// Write `v + 1` (the paper's literal construction).
    Increment,
    /// Write `v XOR 1` — binary domain, exactly periodic runs.
    Binary,
}

impl ValueMode {
    /// The value the competitor writes over a read value `v`.
    pub fn next(self, v: Value) -> Value {
        match self {
            ValueMode::Increment => v + 1,
            ValueMode::Binary => v ^ 1,
        }
    }
}

/// An environment strategy: decides which process invokes what next, and
/// observes responses.
pub trait Strategy {
    /// Human-readable name (used in experiment output).
    fn name(&self) -> &'static str;

    /// The next invocation to issue. Must not be called after
    /// [`Strategy::finished`] returns true.
    fn next(&mut self) -> (ProcessId, Invocation);

    /// Observes the TM's response to the invocation most recently issued
    /// for `process`.
    fn observe(&mut self, process: ProcessId, response: Response);

    /// Whether the strategy has terminated. For the paper's adversaries
    /// this means the TM let the victim commit — Theorem 1 proves that can
    /// never happen if the TM is opaque, so `true` here is itself an
    /// experimental finding (it implies a safety violation).
    fn finished(&self) -> bool;

    /// Number of completed adversary rounds (each round gives the
    /// competitor process one commit).
    fn rounds(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::Algorithm1;
    use tm_core::TVarId;

    #[test]
    fn strategy_trait_is_object_safe() {
        let mut s: Box<dyn Strategy> = Box::new(Algorithm1::new(TVarId(0)));
        assert!(!s.finished());
        let (p, inv) = s.next();
        assert_eq!(p, ProcessId(0));
        assert!(matches!(inv, Invocation::Read(_)));
    }
}
