//! The game driver: environment strategy × TM implementation.
//!
//! Runs a [`Strategy`] against any [`SteppedTm`] for a bounded number of
//! steps, collecting per-process commit/abort counts, stall statistics
//! (for blocking TMs) and — optionally — an online opacity certificate
//! over the produced history.

use serde::{Deserialize, Serialize};

use tm_core::{Event, ProcessId, Response};
use tm_safety::{IncrementalChecker, Mode};
use tm_stm::{Outcome, SteppedTm};

use crate::strategy::Strategy;

/// Configuration for [`run_game`].
#[derive(Debug, Clone, Copy)]
pub struct GameConfig {
    /// Maximum number of driver steps (each step is one invocation, one
    /// delivered response, or one stalled poll).
    pub max_steps: usize,
    /// Online safety certification of the produced history.
    pub check: Option<Mode>,
}

impl GameConfig {
    /// A configuration running `max_steps` steps without safety checking.
    pub fn steps(max_steps: usize) -> Self {
        GameConfig {
            max_steps,
            check: None,
        }
    }

    /// Enables online opacity certification.
    pub fn check_opacity(mut self) -> Self {
        self.check = Some(Mode::Opacity);
        self
    }

    /// Enables online strict-serializability certification.
    pub fn check_strict_serializability(mut self) -> Self {
        self.check = Some(Mode::StrictSerializability);
        self
    }
}

/// The outcome of an adversary game.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GameReport {
    /// TM algorithm name.
    pub tm_name: String,
    /// Strategy name.
    pub strategy_name: String,
    /// Driver steps executed.
    pub steps: usize,
    /// Steps wasted polling a withheld response (blocking TMs only).
    pub stalled_steps: usize,
    /// Commit events per process.
    pub commits: Vec<usize>,
    /// Abort events per process.
    pub aborts: Vec<usize>,
    /// Completed adversary rounds.
    pub rounds: usize,
    /// Whether the strategy terminated (the victim committed) — Theorem 1
    /// says this never happens against an opaque TM.
    pub terminated: bool,
    /// Whether the (optional) online safety check passed.
    pub safety_ok: bool,
    /// Description of the safety violation, if one was detected.
    pub safety_violation: Option<String>,
}

impl GameReport {
    /// Renders the report as a one-line experiment row.
    pub fn row(&self) -> String {
        format!(
            "{:<12} {:<14} rounds={:<8} p1_commits={:<3} p2+_commits={:<8} p1_aborts={:<8} \
             stalls={:<8} terminated={:<5} safety_ok={}",
            self.tm_name,
            self.strategy_name,
            self.rounds,
            self.commits.first().copied().unwrap_or(0),
            self.commits.iter().skip(1).sum::<usize>(),
            self.aborts.first().copied().unwrap_or(0),
            self.stalled_steps,
            self.terminated,
            self.safety_ok,
        )
    }
}

/// Runs `strategy` against `tm` for at most `config.max_steps` steps.
///
/// The driver issues the strategy's invocations one at a time. If the TM
/// withholds a response (a blocking TM), subsequent steps poll until it
/// arrives — each fruitless poll counts as a *stalled step*, so a
/// permanently blocked game is visible in the report rather than hanging.
pub fn run_game(
    tm: &mut dyn SteppedTm,
    strategy: &mut dyn Strategy,
    config: GameConfig,
) -> GameReport {
    let n = tm.process_count();
    let mut commits = vec![0usize; n];
    let mut aborts = vec![0usize; n];
    let mut checker = config.check.map(IncrementalChecker::new);
    let mut safety_ok = true;
    let mut safety_violation = None;
    let mut blocked: Option<ProcessId> = None;
    let mut steps = 0;
    let mut stalled_steps = 0;

    let observe = |p: ProcessId,
                   r: Response,
                   commits: &mut Vec<usize>,
                   aborts: &mut Vec<usize>,
                   checker: &mut Option<IncrementalChecker>,
                   safety_ok: &mut bool,
                   safety_violation: &mut Option<String>| {
        match r {
            Response::Committed => commits[p.index()] += 1,
            Response::Aborted => aborts[p.index()] += 1,
            _ => {}
        }
        if let Some(c) = checker {
            if *safety_ok {
                if let Err(v) = c.push(Event::response(p, r)) {
                    *safety_ok = false;
                    *safety_violation = Some(v.to_string());
                }
            }
        }
    };

    while steps < config.max_steps && !strategy.finished() {
        steps += 1;
        if let Some(p) = blocked {
            match tm.poll(p) {
                Some(r) => {
                    blocked = None;
                    observe(
                        p,
                        r,
                        &mut commits,
                        &mut aborts,
                        &mut checker,
                        &mut safety_ok,
                        &mut safety_violation,
                    );
                    strategy.observe(p, r);
                }
                None => stalled_steps += 1,
            }
            continue;
        }
        let (p, inv) = strategy.next();
        if let Some(c) = &mut checker {
            if safety_ok {
                if let Err(v) = c.push(Event::invocation(p, inv)) {
                    safety_ok = false;
                    safety_violation = Some(v.to_string());
                }
            }
        }
        match tm.invoke(p, inv) {
            Outcome::Response(r) => {
                observe(
                    p,
                    r,
                    &mut commits,
                    &mut aborts,
                    &mut checker,
                    &mut safety_ok,
                    &mut safety_violation,
                );
                strategy.observe(p, r);
            }
            Outcome::Pending => blocked = Some(p),
        }
    }

    GameReport {
        tm_name: tm.name().to_string(),
        strategy_name: strategy.name().to_string(),
        steps,
        stalled_steps,
        commits,
        aborts,
        rounds: strategy.rounds(),
        terminated: strategy.finished(),
        safety_ok,
        safety_violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::Algorithm1;
    use tm_core::TVarId;
    use tm_stm::{literal_fgp, Tl2};

    const X: TVarId = TVarId(0);

    #[test]
    fn report_row_is_printable() {
        let mut tm = Tl2::new(2, 1);
        let mut s = Algorithm1::new(X);
        let report = run_game(&mut tm, &mut s, GameConfig::steps(500));
        let row = report.row();
        assert!(row.contains("tl2"));
        assert!(row.contains("algorithm-1"));
    }

    #[test]
    fn zero_steps_yields_empty_report() {
        let mut tm = Tl2::new(2, 1);
        let mut s = Algorithm1::new(X);
        let report = run_game(&mut tm, &mut s, GameConfig::steps(0));
        assert_eq!(report.steps, 0);
        assert_eq!(report.commits, vec![0, 0]);
        assert!(!report.terminated);
    }

    #[test]
    fn literal_fgp_fails_the_online_opacity_check() {
        // The literal Fgp leaks aborted writes. With the paper's exact
        // `v + 1` the leak happens to coincide with the committed value, so
        // we have the victim write `v + 2`: its doomed write then pollutes
        // its next transaction's read with a never-committed value, and the
        // online checker flags the violation.
        let mut tm = literal_fgp(2, 1);
        let mut s = Algorithm1::with_victim_offset(X, 2);
        let report = run_game(
            tm.as_mut(),
            &mut s,
            GameConfig::steps(5_000).check_opacity(),
        );
        assert!(
            !report.safety_ok,
            "literal Fgp should violate opacity under the adversary"
        );
        assert!(report.safety_violation.is_some());
    }

    #[test]
    fn corrected_fgp_passes_the_same_attack() {
        let mut tm = tm_stm::FgpTm::new(2, 1, tm_automata::FgpVariant::CpOnly);
        let mut s = Algorithm1::with_victim_offset(X, 2);
        let report = run_game(&mut tm, &mut s, GameConfig::steps(5_000).check_opacity());
        assert!(report.safety_ok);
        assert!(!report.terminated);
    }
}
