//! The impossibility adversaries of *On the Liveness of Transactional
//! Memory* (PODC 2012), executable against real TM implementations.
//!
//! Theorem 1 proves no TM ensures opacity **and** local progress in a
//! fault-prone system, by giving the environment a winning strategy:
//! [`Algorithm1`] (for systems where processes may crash) and
//! [`Algorithm2`] (for systems where processes may turn parasitic) force
//! any opaque TM to starve process `p1` forever. [`RotatingStarver`]
//! generalizes the construction to `n` processes (Lemma 1 / Theorem 2).
//!
//! [`run_game`] plays a [`Strategy`] against any `SteppedTm`, reporting
//! per-process commits/aborts, rounds, stalls (for blocking TMs) and an
//! optional online opacity certificate.
//!
//! ```
//! use tm_adversary::{run_game, Algorithm1, GameConfig};
//! use tm_core::{ProcessId, TVarId};
//! use tm_stm::Tl2;
//!
//! let mut tm = Tl2::new(2, 1);
//! let mut adversary = Algorithm1::new(TVarId(0));
//! let report = run_game(&mut tm, &mut adversary, GameConfig::steps(1_000));
//! assert_eq!(report.commits[0], 0); // p1 starves — Theorem 1 in action
//! assert!(report.commits[1] > 0);   // p2 commits every round
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm1;
pub mod algorithm2;
pub mod game;
pub mod generalized;
pub mod strategy;

pub use algorithm1::Algorithm1;
pub use algorithm2::Algorithm2;
pub use game::{run_game, GameConfig, GameReport};
pub use generalized::RotatingStarver;
pub use strategy::{Strategy, ValueMode};
