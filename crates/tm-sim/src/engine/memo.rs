//! Seen-set and interning backends of the exploration kernel.
//!
//! Every search in this crate keys some table on canonical configuration
//! digests: the safety explorer memoizes subtree summaries, the liveness
//! checker interns graph nodes. Two backends cover both:
//!
//! * **worker-local** hash maps — lock-free and run-to-run
//!   deterministic (the default everywhere);
//! * the 64-way lock-striped [`StripedTable`] — one table shared across
//!   rayon workers for cross-subtree hits, at stripe-lock cost. Sound
//!   because digests are thread-agnostic: a memoized value is exact
//!   wherever it was computed.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

/// A sharded, lock-striped concurrent map: each key hashes to one of 64
/// shards and operations take only that shard's lock, so concurrent
/// workers contend per stripe, not per table.
#[derive(Debug)]
pub struct StripedTable<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
}

impl<K: Hash + Eq, V: Copy> StripedTable<K, V> {
    /// Number of stripes.
    pub const SHARDS: usize = 64;

    /// An empty table.
    pub fn new() -> Self {
        StripedTable {
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let mut h = tm_core::StableHasher::new();
        key.hash(&mut h);
        use std::hash::Hasher;
        &self.shards[(h.finish() % Self::SHARDS as u64) as usize]
    }

    /// Looks `key` up in its stripe.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key)
            .lock()
            .expect("stripe poisoned")
            .get(key)
            .copied()
    }

    /// Inserts into `key`'s stripe.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key)
            .lock()
            .expect("stripe poisoned")
            .insert(key, value);
    }
}

impl<K: Hash + Eq, V: Copy> Default for StripedTable<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// The digest seen set of one search walk: disabled, worker-local, or a
/// handle to a shared [`StripedTable`]. The uniform `get`/`insert`
/// surface lets the walkers stay backend-agnostic.
#[derive(Debug)]
pub struct SeenSet<K, V> {
    enabled: bool,
    backend: SeenBackend<K, V>,
}

#[derive(Debug)]
enum SeenBackend<K, V> {
    Local(HashMap<K, V>),
    Shared(Arc<StripedTable<K, V>>),
}

impl<K: Hash + Eq, V: Copy> SeenSet<K, V> {
    /// A worker-local seen set (a no-op table when `enabled` is false).
    pub fn new(enabled: bool) -> Self {
        SeenSet {
            enabled,
            backend: SeenBackend::Local(HashMap::new()),
        }
    }

    /// A handle onto a table shared with other workers.
    pub fn shared(table: Arc<StripedTable<K, V>>) -> Self {
        SeenSet {
            enabled: true,
            backend: SeenBackend::Shared(table),
        }
    }

    /// Whether lookups/inserts do anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Looks `key` up.
    pub fn get(&self, key: &K) -> Option<V> {
        match &self.backend {
            SeenBackend::Local(map) => map.get(key).copied(),
            SeenBackend::Shared(table) => table.get(key),
        }
    }

    /// Records `key → value`.
    pub fn insert(&mut self, key: K, value: V) {
        match &mut self.backend {
            SeenBackend::Local(map) => {
                map.insert(key, value);
            }
            SeenBackend::Shared(table) => table.insert(key, value),
        }
    }
}

/// Dense interning of configuration keys: the liveness checker's
/// digest → node-id table. Ids are assigned in first-seen order, so a
/// traversal with a canonical discovery order (sequential DFS, or the
/// parallel frontier's deterministic level merge) yields identical ids
/// regardless of thread count.
#[derive(Debug, Default)]
pub struct Interner<K> {
    ids: HashMap<K, u32>,
}

impl<K: Hash + Eq> Interner<K> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            ids: HashMap::new(),
        }
    }

    /// The id of `key`, assigning the next dense id on first sight.
    /// Returns `(id, freshly_assigned)`.
    pub fn intern(&mut self, key: K) -> (u32, bool) {
        let next = u32::try_from(self.ids.len()).expect("state graph exceeds u32 nodes");
        match self.ids.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (*e.get(), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(next);
                (next, true)
            }
        }
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_table_round_trips() {
        let table: StripedTable<u64, u32> = StripedTable::new();
        for i in 0..1000u64 {
            table.insert(i, (i * 2) as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(table.get(&i), Some((i * 2) as u32));
        }
        assert_eq!(table.get(&1_000_000), None);
    }

    #[test]
    fn disabled_seen_set_is_inert_shared_is_cross_handle() {
        let mut local: SeenSet<u64, u32> = SeenSet::new(false);
        assert!(!local.enabled());
        local.insert(1, 2);
        // (Callers gate on enabled(); the table itself still stores.)
        let table = Arc::new(StripedTable::new());
        let mut a: SeenSet<u64, u32> = SeenSet::shared(Arc::clone(&table));
        let b: SeenSet<u64, u32> = SeenSet::shared(table);
        a.insert(7, 9);
        assert_eq!(b.get(&7), Some(9));
    }

    #[test]
    fn interner_assigns_dense_first_seen_ids() {
        let mut interner = Interner::new();
        assert!(interner.is_empty());
        assert_eq!(interner.intern("a"), (0, true));
        assert_eq!(interner.intern("b"), (1, true));
        assert_eq!(interner.intern("a"), (0, false));
        assert_eq!(interner.len(), 2);
    }
}
