//! The parallel frontier of the exploration kernel.
//!
//! Both checkers parallelize the same way: carve the search into
//! independent work items at a frontier (subtree roots at a split depth
//! for the schedule tree; whole BFS levels of configurations for the
//! state graph), run the items on the rayon pool, and merge the results
//! **in item order** — so reports are deterministic regardless of thread
//! count or scheduling. Dynamic dealing (idle workers claim the next
//! item) balances skewed items without giving up the ordered merge.

use rayon::prelude::*;

/// Runs `worker` over `items` on the rayon pool and returns the results
/// in item order: the kernel's deterministic parallel map. The order
/// guarantee is what makes every parallel path report-identical to its
/// sequential counterpart — workers may finish in any order, but the
/// merge is lexicographic.
pub fn distribute<I, O, F>(items: Vec<I>, worker: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync + Send,
{
    items.into_par_iter().map(worker).collect()
}

/// [`distribute`] with per-item panic isolation: a worker that panics
/// yields `None` in its slot instead of aborting the whole run, so the
/// caller can merge the surviving results (slots stay aligned with
/// `items`) and degrade to a partial report. The panic payload is
/// dropped — the caller only learns *that* the item failed — and the
/// default panic hook still prints the message to stderr, which is
/// deliberate: a poisoned worker should be loud in logs yet harmless to
/// the verdict.
pub fn distribute_isolated<I, O, F>(items: Vec<I>, worker: F) -> Vec<Option<O>>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync + Send,
{
    items
        .into_par_iter()
        .map(|item| std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker(item))).ok())
        .collect()
}

/// The smallest split depth of a `width`-ary schedule tree that yields
/// at least eight subtree roots per worker thread (so dynamic dealing
/// can balance skew), capped below the search depth. Zero when the pool
/// has a single thread: splitting buys nothing.
pub fn auto_split_depth(width: usize, depth: usize) -> usize {
    let workers = rayon::current_num_threads();
    if workers <= 1 {
        return 0;
    }
    let target = workers * 8;
    let mut split = 0;
    let mut roots = 1usize;
    while roots < target && split < depth.saturating_sub(1) {
        roots *= width;
        split += 1;
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribute_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = distribute(items, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn isolated_distribute_survives_a_panicking_worker() {
        let items: Vec<usize> = (0..20).collect();
        let out = distribute_isolated(items, |i| {
            assert!(i != 7, "poisoned item");
            i * 2
        });
        assert_eq!(out.len(), 20);
        assert_eq!(out[7], None);
        for (i, slot) in out.iter().enumerate() {
            if i != 7 {
                assert_eq!(*slot, Some(i * 2));
            }
        }
    }

    #[test]
    fn split_depth_is_bounded_by_depth() {
        for depth in 0..6 {
            assert!(auto_split_depth(2, depth) <= depth.saturating_sub(1));
        }
    }
}
