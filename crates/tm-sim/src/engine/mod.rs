//! The exploration kernel: the search substrate shared by the safety
//! explorer and the liveness checker.
//!
//! Both model checkers in this crate are bounded searches over the
//! configurations of a stepped TM driven by deterministic clients. They
//! differ in *what* they search — the safety explorer walks the
//! `n^depth` **schedule tree** certifying opacity of every history
//! prefix; the liveness checker walks the canonical **state graph**
//! hunting lassos — but the substrate beneath them is the same, and
//! before this module existed each checker carried its own copy: a DFS
//! frontier, fork/refork TM recycling, client mark/restore, digest-keyed
//! seen sets, reduction hooks, and a rayon frontier. This module owns
//! that substrate once.
//!
//! # Layers
//!
//! ```text
//!   report      Exploration (explore)        LivecheckReport (livecheck)
//!      ▲                ▲                            ▲
//!   budget      [`budget::BudgetMeter`] — shared atomic caps on states /
//!      │        schedules / wall clock; a tripped cap degrades the run
//!      │        into a partial report with an explicit `exhausted` verdict
//!      ▲                ▲                            ▲
//!   frontier    [`frontier::distribute`] — deterministic order-preserving
//!      │        parallel map (subtree roots / BFS levels), lexicographic
//!      │        merge; [`frontier::distribute_isolated`] adds per-item
//!      │        panic isolation; [`frontier::auto_split_depth`] splits
//!      ▲                ▲                            ▲
//!   faults      [`crate::faults::FaultConfig`] widens the branch space with
//!      │        `crash(p)` / `parasite(p)` scheduler transitions; the
//!      │        per-branch [`crate::faults::FaultState`] masks fold into
//!      │        memo keys and node identities so dedup stays sound
//!      ▲                ▲                            ▲
//!   reduction   DPOR backtrack/sleep sets     transition memoization
//!      │        (`reduction`, schedule search) (edge replay, graph search)
//!      ▲                ▲                            ▲
//!   seen sets   [`memo::SeenSet`] — per-worker deterministic tables or the
//!      │        64-way lock-striped [`memo::StripedTable`]; [`memo::Interner`]
//!      │        for the graph checker's configuration ids
//!      ▲                ▲                            ▲
//!   space       [`SearchSpace`] — expand a configuration one process-step
//!      │        at a time ([`StepRecord`]), digest it, checkpoint/rollback
//!      │        the client (and certifier) state
//!      ▲                ▲                            ▲
//!   TM pool     [`TmPool`] — allocation-free fork/refork box recycling
//!               (hoisted into `tm_stm::api`, shared by every walker)
//! ```
//!
//! The two checkers are instantiations of this stack:
//!
//! * [`crate::explore::explore_with`] drives a `ScheduleSpace` (clients +
//!   schedule path + history + incremental opacity certifier) through the
//!   schedule tree, with sleep-set / source-set-DPOR reduction and the
//!   split-depth parallel frontier;
//! * [`crate::livecheck::livecheck`] drives a `GraphSpace` (clients +
//!   schedule + history, no certifier) through the interned state graph,
//!   with transition-level reduction (execute each graph edge once,
//!   replay re-walks) and — with `LivecheckConfig::parallel` — a
//!   level-synchronous rayon frontier over the interned-node table that
//!   executes every TM transition exactly once across all workers.
//!
//! Determinism is the kernel's invariant: every parallel path merges
//! worker results in a canonical order (lexicographic subtree roots for
//! the tree search; breadth-first discovery order for the graph search),
//! so reports are byte-identical to the sequential search regardless of
//! thread count — the property all differential suites pin.

pub mod budget;
pub mod frontier;
pub mod memo;
pub(crate) mod reduction;
pub mod space;

pub use budget::{Budget, BudgetMeter};
pub use space::{SearchSpace, StepRecord};
pub use tm_stm::TmPool;
