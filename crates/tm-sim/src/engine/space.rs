//! The configuration layer of the exploration kernel: one scheduler
//! step, recorded; and the [`SearchSpace`] contract both checkers'
//! search states implement.

use tm_core::{Event, Invocation, ProcessId, Response};
use tm_stm::{BoxedTm, Outcome, SteppedTm, TmPool};
use tm_telemetry::{Json, Telemetry};

use crate::workload::{Client, ClientScript};

/// What one scheduler step of one process did, as recorded by
/// [`SearchSpace::step`]. A step is either the delivery attempt of a
/// withheld response (a poll) or the client's next invocation with the
/// TM's immediate answer (or lack of one). The record carries everything
/// either checker derives from a step: the produced events, the
/// transaction-completion facts, and the `tryC` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepRecord {
    /// The process had a pending invocation; the poll delivered the
    /// response, or `None` while the TM still blocks.
    Polled(Option<Response>),
    /// The invocation was answered immediately.
    Call(Invocation, Response),
    /// The invocation was withheld (a blocking TM); poll later.
    Withheld(Invocation),
}

impl StepRecord {
    /// The events the step appended to the history (at most two),
    /// attributed to process `p`.
    pub fn events(&self, p: ProcessId) -> [Option<Event>; 2] {
        match *self {
            StepRecord::Polled(None) => [None, None],
            StepRecord::Polled(Some(resp)) => [Some(Event::response(p, resp)), None],
            StepRecord::Call(inv, resp) => [
                Some(Event::invocation(p, inv)),
                Some(Event::response(p, resp)),
            ],
            StepRecord::Withheld(inv) => [Some(Event::invocation(p, inv)), None],
        }
    }

    /// How many events the step produced (0, 1 or 2).
    pub fn event_count(&self) -> u8 {
        match self {
            StepRecord::Polled(None) => 0,
            StepRecord::Polled(Some(_)) | StepRecord::Withheld(_) => 1,
            StepRecord::Call(..) => 2,
        }
    }

    /// The response the step delivered, if any.
    pub fn response(&self) -> Option<Response> {
        match *self {
            StepRecord::Polled(resp) => resp,
            StepRecord::Call(_, resp) => Some(resp),
            StepRecord::Withheld(_) => None,
        }
    }

    /// Whether the step *invoked* `tryC` (a poll that merely delivers a
    /// commit response is not a `tryC` step — the invocation happened at
    /// an earlier step).
    pub fn invoked_tryc(&self) -> bool {
        matches!(
            self,
            StepRecord::Call(Invocation::TryCommit, _)
                | StepRecord::Withheld(Invocation::TryCommit)
        )
    }
}

/// One scheduler step of process `k` against the TM: deliver a withheld
/// response if one exists, otherwise issue the client's next invocation.
/// Produced events are appended to `history` and responses are fed to
/// the client. With `parasitic`, a client about to invoke `tryC` loops
/// its transaction instead (the paper's §2.3 parasitic processes) —
/// only the liveness checker sets it.
///
/// This is the single stepper beneath both checkers: the safety
/// explorer's certifier feed and the liveness checker's edge labelling
/// are both derived from the returned [`StepRecord`].
pub(crate) fn step_process(
    tm: &mut BoxedTm,
    clients: &mut [Client],
    k: usize,
    parasitic: bool,
    history: &mut Vec<Event>,
) -> StepRecord {
    let p = ProcessId(k);
    if tm.has_pending(p) {
        let polled = tm.poll(p);
        if let Some(resp) = polled {
            history.push(Event::response(p, resp));
            clients[k].observe(resp);
        }
        return StepRecord::Polled(polled);
    }
    if parasitic && clients[k].next_invocation() == Invocation::TryCommit {
        clients[k].restart_transaction();
    }
    let inv = clients[k].next_invocation();
    history.push(Event::invocation(p, inv));
    match tm.invoke(p, inv) {
        Outcome::Response(resp) => {
            history.push(Event::response(p, resp));
            clients[k].observe(resp);
            StepRecord::Call(inv, resp)
        }
        Outcome::Pending => StepRecord::Withheld(inv),
    }
}

/// The kernel's contract for a checker's mutable search state: a
/// *configuration* that can be expanded one process-step at a time,
/// digested for the seen sets, and unwound in O(1) on backtrack.
///
/// The safety explorer's `ScheduleSpace` (clients, schedule path,
/// history, incremental certifier) and the liveness checker's
/// `GraphSpace` (clients, schedule, history) are the two
/// instantiations; generic kernel helpers such as `expand_child` (the
/// pool-fork-then-step expansion every walker shares) drive either.
pub trait SearchSpace {
    /// Everything [`SearchSpace::step`] mutates besides the TM, captured
    /// before a step and restored after its subtree unwinds: client
    /// cursor, history length, and (for the safety explorer) the
    /// certifier checkpoint.
    type Mark;

    /// The branching factor: one successor per process.
    fn width(&self) -> usize;

    /// Snapshots the state `step(k)` will mutate.
    fn mark(&mut self, k: usize) -> Self::Mark;

    /// Executes one scheduler step of process `k` against `tm`,
    /// recording path/history/certifier effects in the space.
    fn step(&mut self, tm: &mut BoxedTm, k: usize) -> StepRecord;

    /// Unwinds one [`SearchSpace::step`] of process `k`.
    fn rewind(&mut self, k: usize, mark: Self::Mark);

    /// The canonical configuration key — `(TM state digest, clients
    /// digest)` — or `None` when the TM does not fingerprint. Equal keys
    /// mean observationally equivalent configurations (every future
    /// invocation and response coincides); this is what the seen sets
    /// and the graph interner hash.
    fn config_key(&self, tm: &BoxedTm) -> Option<(u64, u64)>;
}

/// Replays `schedule` from the initial configuration — `tm` fresh from
/// Identity of the witness a `trace` event annotates: which engine and
/// event kind it is adjacent to, its index within the run, and (for
/// lassos) where the repeated cycle begins in the schedule.
pub(crate) struct TraceWitness<'a> {
    /// The producing engine (`"explore"` / `"livecheck"`).
    pub engine: &'a str,
    /// `"violation"` or `"lasso"`.
    pub kind: &'a str,
    /// Witness index within the run.
    pub idx: usize,
    /// Lasso only: the step index where the cycle starts.
    pub cycle_start: Option<usize>,
}

/// Replays `schedule` from the initial configuration — `tm` fresh from
/// the factory (or a fork of the root) and clients fresh from `scripts`
/// — and emits one v1 `trace` event annotating the witness: a
/// `{"p","op","resp","digest"}` object per scheduler step, the digest
/// taken *after* the step (the canonical fingerprint of the state the
/// step produced). Stepping is deterministic, so the replay reproduces
/// exactly the history the search recorded for this schedule; it runs
/// outside the search hot path and touches no counters, so enabling
/// traces cannot perturb [`tm_telemetry::Snapshot`] equality.
///
/// `plan` is the witness's concrete fault plan (indexed by *process*
/// step, matching `schedule`, which carries process steps only): a
/// process turned parasitic at step `t` loops instead of committing
/// from step `t` on, exactly as the search stepped it. Crashed
/// processes simply stop appearing in `schedule`, so crashes need no
/// replay action.
pub(crate) fn emit_trace(
    telemetry: &Telemetry,
    witness: &TraceWitness<'_>,
    mut tm: BoxedTm,
    scripts: &[ClientScript],
    parasitic: u64,
    plan: &crate::faults::FaultPlan,
    schedule: &[ProcessId],
) {
    let mut clients: Vec<Client> = scripts.iter().cloned().map(Client::new).collect();
    let mut history = Vec::new();
    let mut steps = Vec::with_capacity(schedule.len());
    for (i, &p) in schedule.iter().enumerate() {
        let k = p.0;
        let record = step_process(
            &mut tm,
            &mut clients,
            k,
            parasitic & (1 << k) != 0 || plan.is_parasitic(p, i),
            &mut history,
        );
        let op = match record {
            StepRecord::Polled(_) => "poll".to_string(),
            StepRecord::Call(inv, _) | StepRecord::Withheld(inv) => inv.to_string(),
        };
        let resp = record
            .response()
            .map_or(Json::Null, |r| Json::str(r.to_string()));
        let mut step = vec![
            ("p".to_string(), Json::Int(k as i64)),
            ("op".to_string(), Json::Str(op)),
            ("resp".to_string(), resp),
        ];
        if let Some(digest) = tm.state_digest() {
            step.push(("digest".to_string(), Json::Str(format!("{digest:016x}"))));
        }
        steps.push(Json::Obj(step));
    }
    let schedule_json = Json::Arr(schedule.iter().map(|p| Json::Int(p.0 as i64)).collect());
    let mut fields = vec![
        ("engine", Json::str(witness.engine)),
        ("kind", Json::str(witness.kind)),
        ("idx", Json::Int(witness.idx as i64)),
        ("schedule", schedule_json),
    ];
    if let Some(start) = witness.cycle_start {
        fields.push(("cycle_start", Json::Int(start as i64)));
    }
    if !plan.is_empty() {
        fields.push(("faults", plan.to_json()));
    }
    fields.push(("steps", Json::Arr(steps)));
    telemetry.event("trace", &fields);
}

/// Branches `parent` through the pool and steps process `k` on the
/// branch: the kernel's per-tree-edge expansion, shared by every walker
/// (the last child of a node skips this and consumes the parent's box
/// directly via [`SearchSpace::step`]).
pub(crate) fn expand_child<S: SearchSpace>(
    space: &mut S,
    pool: &mut TmPool,
    parent: &BoxedTm,
    k: usize,
) -> (BoxedTm, StepRecord) {
    let mut child = pool.fork_child(parent);
    let record = space.step(&mut child, k);
    (child, record)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_record_events_and_counts() {
        let p = ProcessId(1);
        let call = StepRecord::Call(Invocation::TryCommit, Response::Committed);
        assert_eq!(call.event_count(), 2);
        assert!(call.invoked_tryc());
        assert_eq!(call.response(), Some(Response::Committed));
        let [a, b] = call.events(p);
        assert_eq!(
            a.and_then(|e| e.as_invocation()),
            Some(Invocation::TryCommit)
        );
        assert_eq!(b.and_then(|e| e.as_response()), Some(Response::Committed));

        let blocked = StepRecord::Polled(None);
        assert_eq!(blocked.event_count(), 0);
        assert_eq!(blocked.events(p), [None, None]);
        assert!(!blocked.invoked_tryc());

        // A poll delivering a commit is not a tryC *invocation*.
        let delivered = StepRecord::Polled(Some(Response::Committed));
        assert_eq!(delivered.event_count(), 1);
        assert!(!delivered.invoked_tryc());
    }
}
