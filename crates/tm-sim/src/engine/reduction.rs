//! The reduction layer of the exploration kernel: the pruning state the
//! schedule-tree search threads through its walk.
//!
//! Three reductions live here, all driven by per-TM independence
//! contracts (see the soundness discussion in [`crate::explore`]'s
//! module docs):
//!
//! * **sleep sets** over the coarse variable-footprint relation
//!   ([`Footprint`], gated on `SteppedTm::disjoint_var_ops_commute`);
//! * **source-set DPOR** ([`Dpor`]): vector clocks over the conflict
//!   relation declared by `SteppedTm::step_footprint`, with
//!   Flanagan–Godefroid backtrack sets and Abdulla-et-al source sets;
//! * **optimal DPOR** ([`OptimalDpor`]): the wakeup-tree algorithm of
//!   Abdulla, Aronis, Jonsson and Sagonas, replacing the flat backtrack
//!   sets with ordered sleep-set-aware trees of race-reversal
//!   *sequences*.
//!
//! # Wakeup trees
//!
//! A [`WakeupTree`] is an ordered tree whose edges are labelled with
//! steps (process + footprint); the children of every node carry
//! pairwise-distinct process labels, in insertion order. Each node of
//! the *schedule* tree being explored owns one wakeup tree holding the
//! race reversals still owed below it; exploration at a node pops the
//! tree's first edge, executes it, and hands the edge's subtree to the
//! child — so a multi-step reversal sequence is walked verbatim before
//! free seeding resumes at its end.
//!
//! **Insertion rule.** When race detection derives a reversal sequence
//! `v` for the node `e` (the not-yet-dependent suffix `notdep(e, E)`
//! followed by the racing process's step), the sequence is first guarded
//! by the *weak-initials* test: if `WI(v)` — the processes whose first
//! `v`-step has no happens-before predecessor inside `v`, plus the
//! processes not in `v` whose next step at `e` is independent of all of
//! `v` — meets `e`'s sleep set, an equivalent execution is already
//! explored or in progress and the insertion is dropped (counted
//! redundant). Otherwise the walk descends the ordered tree: at each
//! node, the first child edge whose label either *is* an initial of the
//! remaining `v` (consume that occurrence) or is independent of all of
//! it (pass `v` through unchanged) is entered; reaching the end of an
//! existing branch with `v` unconsumed proves subsumption (redundant);
//! if no child accepts, `v` is appended as a fresh chain in arrival
//! order. Appended chains always start with a process distinct from
//! every sibling label — a matching label would have been consumed as an
//! initial — which keeps child labels unique.
//!
//! **Why no execution is ever sleep-blocked.** A node's sleep set grows
//! only by (a) inheritance — sleeping siblings filtered through the
//! SDPOR independence test — and (b) its own explored children, and the
//! weak-initial guard checks both against `v` at insertion time. That
//! guard is exact for a *static* independence relation; our footprints
//! are state-dependent, so a sequence inserted from one execution
//! context (where, say, a `TryCommit` was about to hit a locked word)
//! may be replayed in the node's own context where that conflict has
//! dissolved — and sleep inheritance, which re-checks independence
//! against the actual footprints on the path, then keeps the head
//! asleep. The walk therefore re-tests each popped edge: an asleep head
//! certifies that an already-explored sibling subtree covers the whole
//! branch, and the edge is dropped — subtree included — *before any
//! step executes* (counted redundant). Source-set mode, by contrast,
//! suppresses race-inserted backtrack branches whose process has gone to
//! sleep *after* the insertion — each suppression is an execution the
//! classic SDPOR formulation starts and abandons, counted by
//! `Counter::SleepBlockedExecutions`. Optimal mode never starts a
//! schedule it abandons, so it must keep that counter at exactly zero
//! (asserted in the differential suite).
//!
//! The graph search's transition memoization (execute each state-graph
//! edge once, replay re-walks) is the liveness checker's analogue; it
//! lives with the graph structures in [`crate::livecheck`].

use tm_core::{Invocation, ProcessId, TVarId};
use tm_stm::{BoxedTm, StepFootprint, SteppedTm};

use crate::workload::Client;

/// What a process's next step would do, for the sleep sets' coarse
/// independence relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Footprint {
    /// An operation step confined to one t-variable.
    Var(TVarId),
    /// A step whose effect or outcome depends on global TM state
    /// (`tryC`, or polling a blocking TM).
    Global,
}

/// Per-node footprints of every process's next step, on the stack (no
/// allocation in the hot recursion).
pub(crate) type Feet = [Footprint; 64];

pub(crate) fn footprint(tm: &BoxedTm, clients: &[Client], k: usize) -> Footprint {
    if tm.has_pending(ProcessId(k)) {
        return Footprint::Global;
    }
    match clients[k].next_invocation() {
        Invocation::Read(x) | Invocation::Write(x, _) => Footprint::Var(x),
        Invocation::TryCommit => Footprint::Global,
    }
}

pub(crate) fn independent(a: Footprint, b: Footprint) -> bool {
    match (a, b) {
        (Footprint::Var(x), Footprint::Var(y)) => x != y,
        _ => false,
    }
}

/// The sleep-set footprints of every process's next step at the current
/// configuration.
pub(crate) fn sleep_feet(tm: &BoxedTm, clients: &[Client]) -> Feet {
    let mut feet: Feet = [Footprint::Global; 64];
    for (k, foot) in feet.iter_mut().enumerate().take(clients.len()) {
        *foot = footprint(tm, clients, k);
    }
    feet
}

/// The sleep set `sleep` filtered down for the child reached by stepping
/// `k`: a sibling stays asleep only while its step is independent of the
/// step just taken.
pub(crate) fn filtered_sleep(sleep: u64, feet: &Feet, k: usize, n: usize) -> u64 {
    let mut kept = 0u64;
    for q in 0..n {
        if sleep & (1 << q) != 0 && independent(feet[q], feet[k]) {
            kept |= 1 << q;
        }
    }
    kept
}

/// The next-step footprint of process `q` at the current configuration:
/// the TM's conflict oracle for the pending invocation, with the
/// transaction-begin flag supplied by the driver (which owns the client
/// cursor), or the fully conservative footprint for a blocked poll.
pub(crate) fn next_footprint(tm: &BoxedTm, clients: &[Client], q: usize) -> StepFootprint {
    if tm.has_pending(ProcessId(q)) {
        StepFootprint::global()
    } else {
        let mut foot = tm.step_footprint(ProcessId(q), clients[q].next_invocation());
        foot.begins = !clients[q].mid_transaction();
        foot
    }
}

/// One executed step of the DPOR trace (the current path of the walk,
/// annotated with the data race reversal needs).
#[derive(Debug)]
pub(crate) struct DporStep {
    pub(crate) proc: u8,
    pub(crate) foot: StepFootprint,
    /// 1-based count of this process's steps up to and including this one.
    local_index: u32,
    /// The process's previous step's trace index (restored on pop).
    prev_of_proc: Option<u32>,
}

/// The source-set DPOR state riding along the depth-first walk: the
/// executed trace with vector clocks (happens-before), and the per-node
/// backtrack sets race detection grows.
#[derive(Debug)]
pub(crate) struct Dpor {
    n: usize,
    pub(crate) steps: Vec<DporStep>,
    /// Flat vector-clock matrix: `clocks[i * n + q]` = how many of
    /// process `q`'s steps happen before (or are) step `i`.
    clocks: Vec<u32>,
    /// Per-process trace index of the last executed step.
    last_of: Vec<Option<u32>>,
    /// Per-depth backtrack sets (a step's trace index is also the depth
    /// of the node it was executed from).
    pub(crate) backtrack: Vec<u64>,
    /// Reversible races detected over this instance's lifetime
    /// (telemetry tally, flushed per worker as [`Counter::DporRaces`]).
    ///
    /// [`Counter::DporRaces`]: tm_telemetry::Counter::DporRaces
    pub(crate) races: u64,
    /// Backtrack bits suppressed by the sleep discipline: at node
    /// completion, processes the backtrack set demanded but the walk
    /// never ran because they were asleep. Each is an execution classic
    /// sleep-set DPOR would start and abandon — the redundant work
    /// source sets schedule and optimal mode never does (telemetry
    /// tally, flushed per worker as [`Counter::SleepBlockedExecutions`]).
    ///
    /// [`Counter::SleepBlockedExecutions`]: tm_telemetry::Counter::SleepBlockedExecutions
    pub(crate) blocked: u64,
}

impl Dpor {
    pub(crate) fn new(n: usize) -> Self {
        Dpor {
            n,
            steps: Vec::new(),
            clocks: Vec::new(),
            last_of: vec![None; n],
            backtrack: Vec::new(),
            races: 0,
            blocked: 0,
        }
    }

    /// Records the execution of one step by `k` with footprint `foot`:
    /// its clock is the join of the process's previous clock and the
    /// clocks of every earlier conflicting step, plus itself.
    pub(crate) fn push(&mut self, k: usize, foot: StepFootprint) {
        let n = self.n;
        let i = self.steps.len();
        let base = self.clocks.len();
        match self.last_of[k] {
            Some(p) => {
                let row = p as usize * n;
                for q in 0..n {
                    let c = self.clocks[row + q];
                    self.clocks.push(c);
                }
            }
            None => self.clocks.resize(base + n, 0),
        }
        for j in 0..i {
            if self.steps[j].foot.conflicts(&foot) {
                let row = j * n;
                for q in 0..n {
                    if self.clocks[row + q] > self.clocks[base + q] {
                        self.clocks[base + q] = self.clocks[row + q];
                    }
                }
            }
        }
        let local_index = self.last_of[k].map_or(0, |p| self.steps[p as usize].local_index) + 1;
        self.clocks[base + k] = local_index;
        self.steps.push(DporStep {
            proc: u8::try_from(k).expect("≤ 64 processes"),
            foot,
            local_index,
            prev_of_proc: self.last_of[k],
        });
        self.last_of[k] = Some(u32::try_from(i).expect("trace fits u32"));
    }

    pub(crate) fn pop(&mut self) {
        let step = self.steps.pop().expect("pop matches push");
        self.last_of[step.proc as usize] = step.prev_of_proc;
        self.clocks.truncate(self.steps.len() * self.n);
    }

    /// Whether step `i` happens-before step `j` (`i < j`).
    fn hb_steps(&self, i: usize, j: usize) -> bool {
        self.clocks[j * self.n + self.steps[i].proc as usize] >= self.steps[i].local_index
    }

    /// Whether step `i` happens-before the *next* (unexecuted) step of
    /// process `q` — i.e. `i` is in the causal past of `q`'s last step.
    fn hb_to_next(&self, i: usize, q: usize) -> bool {
        if self.steps[i].proc as usize == q {
            return true;
        }
        match self.last_of[q] {
            None => false,
            Some(l) => {
                self.clocks[l as usize * self.n + self.steps[i].proc as usize]
                    >= self.steps[i].local_index
            }
        }
    }

    /// SDPOR race detection for the next step of process `k` (footprint
    /// `fp`) against the trace steps at indices `lo..`: for every step
    /// in a reversible race with it — conflicting, by another process,
    /// not already ordered before `k` — ensure the backtrack set at that
    /// step's node intersects the race's source set, inserting one
    /// source member if not.
    ///
    /// Callers pass `lo = 0` for a full scan, or `lo = len - 1` to check
    /// only the step just executed: a race ensured at an ancestor stays
    /// ensured, because an initial of the shorter reversed continuation
    /// remains an initial of every extension (new events by other
    /// processes cannot become happens-before predecessors of it), so
    /// only the *new* step needs checking when neither `k`'s footprint
    /// nor its clock changed.
    pub(crate) fn detect_races_from(&mut self, k: usize, fp: &StepFootprint, lo: usize) {
        for e in (lo..self.steps.len()).rev() {
            let step = &self.steps[e];
            if step.proc as usize == k || !step.foot.conflicts(fp) || self.hb_to_next(e, k) {
                continue;
            }
            self.races += 1;
            let initials = self.source_initials(e, k);
            if self.backtrack[e] & initials == 0 {
                let add = if initials & (1 << k) != 0 {
                    k
                } else {
                    initials.trailing_zeros() as usize
                };
                self.backtrack[e] |= 1 << add;
            }
        }
    }

    /// The source set `I(notdep(e, E) · next_k)`: processes whose first
    /// step in the race's reversed continuation has no happens-before
    /// predecessor inside it. Exploring any one of them from `e`'s node
    /// (eventually) covers the reversal, which is the source-set
    /// weakening of plain DPOR's "add `k` itself".
    fn source_initials(&self, e: usize, k: usize) -> u64 {
        let len = self.steps.len();
        let mut initials = 0u64;
        for q in 0..self.n {
            let first = (e + 1..len).find(|&j| self.steps[j].proc as usize == q);
            match first {
                Some(j) => {
                    if self.hb_steps(e, j) {
                        continue; // causally after e: not in notdep
                    }
                    let blocked =
                        (e + 1..j).any(|j2| !self.hb_steps(e, j2) && self.hb_steps(j2, j));
                    if !blocked {
                        initials |= 1 << q;
                    }
                }
                None => {
                    if q == k {
                        initials |= 1 << k;
                    }
                }
            }
        }
        if initials == 0 {
            initials = 1 << k; // defensive: k is always a valid insertion
        }
        initials
    }
}

/// One step of a wakeup-tree sequence: the racing process and the
/// footprint its step had when the reversal was derived (footprints are
/// class-invariant under the commutation contract, so the recorded
/// footprint equals the footprint at execution time).
#[derive(Debug, Clone, Copy)]
pub(crate) struct WakeupStep {
    pub(crate) proc: u8,
    pub(crate) foot: StepFootprint,
}

/// An edge of a wakeup tree: a labelled step and the subtree to explore
/// after executing it.
#[derive(Debug)]
pub(crate) struct WakeupEdge {
    pub(crate) proc: u8,
    pub(crate) foot: StepFootprint,
    pub(crate) sub: WakeupTree,
}

/// An ordered tree of race-reversal sequences (see the module docs):
/// children carry pairwise-distinct process labels in insertion order.
/// Exploration pops edges front-first; insertion descends by the
/// weak-initial rule.
#[derive(Debug, Default)]
pub(crate) struct WakeupTree {
    pub(crate) edges: Vec<WakeupEdge>,
}

/// Whether `v[i]` is an initial of `v`: no earlier element is a
/// happens-before predecessor (same process, or conflicting footprint —
/// any longer happens-before chain into `v[i]` ends in one of those
/// direct edges, so the direct check suffices).
fn is_initial(v: &[WakeupStep], i: usize) -> bool {
    v[..i]
        .iter()
        .all(|s| s.proc != v[i].proc && !s.foot.conflicts(&v[i].foot))
}

impl WakeupTree {
    pub(crate) fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Removes and returns the first (oldest) edge.
    pub(crate) fn pop_first(&mut self) -> Option<WakeupEdge> {
        if self.edges.is_empty() {
            None
        } else {
            Some(self.edges.remove(0))
        }
    }

    /// Seeds an exhausted tree with a single free step (the walk's
    /// arbitrary first representative at a node no reversal targets).
    pub(crate) fn seed(&mut self, proc: u8, foot: StepFootprint) {
        debug_assert!(self.edges.is_empty());
        self.edges.push(WakeupEdge {
            proc,
            foot,
            sub: WakeupTree::default(),
        });
    }

    /// Inserts the reversal sequence `v` by the ordered-tree rule
    /// (module docs): descend into the first child edge whose label is
    /// an initial of the remaining sequence (consuming that occurrence)
    /// or independent of all of it (passing it through); append the
    /// remainder as a fresh chain when no child accepts; report
    /// subsumption (`false`) when an existing branch ends first or the
    /// sequence is consumed entirely.
    pub(crate) fn insert(&mut self, v: Vec<WakeupStep>) -> bool {
        self.insert_from(v, false)
    }

    fn insert_from(&mut self, v: Vec<WakeupStep>, interior: bool) -> bool {
        if v.is_empty() {
            return false; // consumed: an existing branch covers it
        }
        if interior && self.edges.is_empty() {
            // End of an existing branch with steps left over: the
            // branch's own exploration (free seeding plus its own race
            // detection) subsumes the remainder.
            return false;
        }
        for i in 0..self.edges.len() {
            let edge = &self.edges[i];
            if let Some(pos) = v.iter().position(|s| s.proc == edge.proc) {
                if is_initial(&v, pos) {
                    let mut rest = v;
                    rest.remove(pos);
                    return self.edges[i].sub.insert_from(rest, true);
                }
                // The label's process occurs in v but is not an initial:
                // this branch cannot host the reversal; try the next.
            } else if v.iter().all(|s| !edge.foot.conflicts(&s.foot)) {
                return self.edges[i].sub.insert_from(v, true);
            }
        }
        // No child accepts: append v as a fresh chain. Its head process
        // is distinct from every sibling label (a matching label would
        // have consumed it as an initial above), keeping labels unique.
        let mut sub = WakeupTree::default();
        for s in v.into_iter().rev() {
            let mut wrap = WakeupTree::default();
            wrap.edges.push(WakeupEdge {
                proc: s.proc,
                foot: s.foot,
                sub,
            });
            sub = wrap;
        }
        self.edges.append(&mut sub.edges);
        true
    }

    /// Order-sensitive structural digest (FNV-1a over a preorder walk),
    /// for the dedup seen-set key: two nodes with equal configuration
    /// digests but different pending reversals must not share a
    /// memoized subtree summary.
    pub(crate) fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        self.digest_into(&mut h);
        h
    }

    fn digest_into(&self, h: &mut u64) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, v: u64) {
            *h ^= v;
            *h = h.wrapping_mul(PRIME);
        }
        mix(h, self.edges.len() as u64);
        for edge in &self.edges {
            mix(h, u64::from(edge.proc) | 0x100);
            mix(h, edge.foot.var_reads);
            mix(h, edge.foot.var_writes);
            mix(
                h,
                u64::from(edge.foot.global_read)
                    | u64::from(edge.foot.global_write) << 1
                    | u64::from(edge.foot.ends) << 2
                    | u64::from(edge.foot.begins) << 3,
            );
            edge.sub.digest_into(h);
        }
    }
}

/// The optimal-DPOR state riding along the walk: the source-set core
/// (trace, vector clocks, race detection) plus per-path-node context —
/// the sleep set, the wakeup tree, and every process's next-step
/// footprint at that node (for the weak-initial guard).
#[derive(Debug)]
pub(crate) struct OptimalDpor {
    pub(crate) core: Dpor,
    n: usize,
    /// Per-node sleep sets along the current path (inherited sleepers
    /// plus explored children), indexed by node depth.
    sleeps: Vec<u64>,
    /// Per-node wakeup trees along the current path (pending reversal
    /// branches only; the edge being explored is popped).
    wuts: Vec<WakeupTree>,
    /// Flat per-node footprints: `feet[node * n + q]` is process `q`'s
    /// next-step footprint at that node.
    feet: Vec<StepFootprint>,
    /// Reversal sequences inserted into wakeup trees (telemetry tally).
    pub(crate) inserts: u64,
    /// Reversals proved covered: rejected by the weak-initial sleep
    /// guard, subsumed by an existing branch, or popped with an asleep
    /// head — state-dependent footprints make the insertion-time guard
    /// conservative, so coverage can surface late (telemetry tally).
    pub(crate) redundant: u64,
    /// Executions started and then abandoned as redundant. Structurally
    /// zero here: the walk drops covered branches before their first
    /// step (module docs). Kept so the optimal path flushes the same
    /// [`Counter::SleepBlockedExecutions`] tally source mode does — the
    /// pinned zero *is* the optimality claim.
    ///
    /// [`Counter::SleepBlockedExecutions`]: tm_telemetry::Counter::SleepBlockedExecutions
    pub(crate) blocked: u64,
}

impl OptimalDpor {
    pub(crate) fn new(n: usize) -> Self {
        OptimalDpor {
            core: Dpor::new(n),
            n,
            sleeps: Vec::new(),
            wuts: Vec::new(),
            feet: Vec::new(),
            inserts: 0,
            redundant: 0,
            blocked: 0,
        }
    }

    /// Enters a node at depth `sleeps.len()`: records its sleep set,
    /// pending wakeup tree, and next-step footprints.
    pub(crate) fn push_node(&mut self, sleep: u64, wut: WakeupTree, feet: &[StepFootprint]) {
        debug_assert_eq!(feet.len(), self.n);
        self.sleeps.push(sleep);
        self.wuts.push(wut);
        self.feet.extend_from_slice(feet);
    }

    pub(crate) fn pop_node(&mut self) {
        self.sleeps.pop().expect("pop matches push");
        self.wuts.pop();
        self.feet.truncate(self.feet.len() - self.n);
    }

    /// Marks `k` explored at the node at `depth` (joins its sleep set).
    pub(crate) fn sleep_child(&mut self, depth: usize, k: usize) {
        self.sleeps[depth] |= 1 << k;
    }

    pub(crate) fn wut_is_empty(&self, depth: usize) -> bool {
        self.wuts[depth].is_empty()
    }

    pub(crate) fn seed(&mut self, depth: usize, proc: u8, foot: StepFootprint) {
        self.wuts[depth].seed(proc, foot);
    }

    pub(crate) fn pop_edge(&mut self, depth: usize) -> Option<WakeupEdge> {
        self.wuts[depth].pop_first()
    }

    /// Optimal-mode race detection for the next step of process `k`
    /// (footprint `fp`) against trace steps `lo..`: for every reversible
    /// race, derive the full reversal sequence `notdep(e, E) · k` and
    /// insert it into the racing node's wakeup tree unless the
    /// weak-initial sleep guard proves it covered. Same incremental
    /// contract as [`Dpor::detect_races_from`].
    pub(crate) fn detect_races(&mut self, k: usize, fp: &StepFootprint, lo: usize) {
        let len = self.core.steps.len();
        for e in (lo..len).rev() {
            let step = &self.core.steps[e];
            if step.proc as usize == k || !step.foot.conflicts(fp) || self.core.hb_to_next(e, k) {
                continue;
            }
            self.core.races += 1;
            let mut v: Vec<WakeupStep> = (e + 1..len)
                .filter(|&j| !self.core.hb_steps(e, j))
                .map(|j| WakeupStep {
                    proc: self.core.steps[j].proc,
                    foot: self.core.steps[j].foot,
                })
                .collect();
            v.push(WakeupStep {
                proc: u8::try_from(k).expect("≤ 64 processes"),
                foot: *fp,
            });
            let wi = self.weak_initials(e, &v);
            if wi & self.sleeps[e] != 0 {
                self.redundant += 1; // an explored or sleeping branch covers it
            } else if self.wuts[e].insert(v) {
                self.inserts += 1;
            } else {
                self.redundant += 1; // subsumed by a pending branch
            }
        }
    }

    /// `WI(v)` at the node at depth `e`: initials of `v`, plus processes
    /// outside `v` whose next step at that node is independent of all of
    /// `v` (the weak part — executing such a step first commutes with
    /// the whole reversal).
    fn weak_initials(&self, e: usize, v: &[WakeupStep]) -> u64 {
        let mut wi = 0u64;
        let mut procs = 0u64;
        for (i, s) in v.iter().enumerate() {
            let bit = 1u64 << s.proc;
            if procs & bit == 0 {
                procs |= bit;
                if is_initial(v, i) {
                    wi |= bit;
                }
            }
        }
        for q in 0..self.n {
            let bit = 1u64 << q;
            if procs & bit != 0 {
                continue;
            }
            let foot = &self.feet[e * self.n + q];
            if v.iter().all(|s| !foot.conflicts(&s.foot)) {
                wi |= bit;
            }
        }
        wi
    }
}
