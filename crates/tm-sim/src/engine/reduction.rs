//! The reduction layer of the exploration kernel: the pruning state the
//! schedule-tree search threads through its walk.
//!
//! Two reductions live here, both driven by per-TM independence
//! contracts (see the soundness discussion in [`crate::explore`]'s
//! module docs):
//!
//! * **sleep sets** over the coarse variable-footprint relation
//!   ([`Footprint`], gated on `SteppedTm::disjoint_var_ops_commute`);
//! * **source-set DPOR** ([`Dpor`]): vector clocks over the conflict
//!   relation declared by `SteppedTm::step_footprint`, with
//!   Flanagan–Godefroid backtrack sets and Abdulla-et-al source sets.
//!
//! The graph search's transition memoization (execute each state-graph
//! edge once, replay re-walks) is the liveness checker's analogue; it
//! lives with the graph structures in [`crate::livecheck`].

use tm_core::{Invocation, ProcessId, TVarId};
use tm_stm::{BoxedTm, StepFootprint, SteppedTm};

use crate::workload::Client;

/// What a process's next step would do, for the sleep sets' coarse
/// independence relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Footprint {
    /// An operation step confined to one t-variable.
    Var(TVarId),
    /// A step whose effect or outcome depends on global TM state
    /// (`tryC`, or polling a blocking TM).
    Global,
}

/// Per-node footprints of every process's next step, on the stack (no
/// allocation in the hot recursion).
pub(crate) type Feet = [Footprint; 64];

pub(crate) fn footprint(tm: &BoxedTm, clients: &[Client], k: usize) -> Footprint {
    if tm.has_pending(ProcessId(k)) {
        return Footprint::Global;
    }
    match clients[k].next_invocation() {
        Invocation::Read(x) | Invocation::Write(x, _) => Footprint::Var(x),
        Invocation::TryCommit => Footprint::Global,
    }
}

pub(crate) fn independent(a: Footprint, b: Footprint) -> bool {
    match (a, b) {
        (Footprint::Var(x), Footprint::Var(y)) => x != y,
        _ => false,
    }
}

/// The sleep-set footprints of every process's next step at the current
/// configuration.
pub(crate) fn sleep_feet(tm: &BoxedTm, clients: &[Client]) -> Feet {
    let mut feet: Feet = [Footprint::Global; 64];
    for (k, foot) in feet.iter_mut().enumerate().take(clients.len()) {
        *foot = footprint(tm, clients, k);
    }
    feet
}

/// The sleep set `sleep` filtered down for the child reached by stepping
/// `k`: a sibling stays asleep only while its step is independent of the
/// step just taken.
pub(crate) fn filtered_sleep(sleep: u64, feet: &Feet, k: usize, n: usize) -> u64 {
    let mut kept = 0u64;
    for q in 0..n {
        if sleep & (1 << q) != 0 && independent(feet[q], feet[k]) {
            kept |= 1 << q;
        }
    }
    kept
}

/// The next-step footprint of process `q` at the current configuration:
/// the TM's conflict oracle for the pending invocation, with the
/// transaction-begin flag supplied by the driver (which owns the client
/// cursor), or the fully conservative footprint for a blocked poll.
pub(crate) fn next_footprint(tm: &BoxedTm, clients: &[Client], q: usize) -> StepFootprint {
    if tm.has_pending(ProcessId(q)) {
        StepFootprint::global()
    } else {
        let mut foot = tm.step_footprint(ProcessId(q), clients[q].next_invocation());
        foot.begins = !clients[q].mid_transaction();
        foot
    }
}

/// One executed step of the DPOR trace (the current path of the walk,
/// annotated with the data race reversal needs).
#[derive(Debug)]
pub(crate) struct DporStep {
    pub(crate) proc: u8,
    pub(crate) foot: StepFootprint,
    /// 1-based count of this process's steps up to and including this one.
    local_index: u32,
    /// The process's previous step's trace index (restored on pop).
    prev_of_proc: Option<u32>,
}

/// The source-set DPOR state riding along the depth-first walk: the
/// executed trace with vector clocks (happens-before), and the per-node
/// backtrack sets race detection grows.
#[derive(Debug)]
pub(crate) struct Dpor {
    n: usize,
    pub(crate) steps: Vec<DporStep>,
    /// Flat vector-clock matrix: `clocks[i * n + q]` = how many of
    /// process `q`'s steps happen before (or are) step `i`.
    clocks: Vec<u32>,
    /// Per-process trace index of the last executed step.
    last_of: Vec<Option<u32>>,
    /// Per-depth backtrack sets (a step's trace index is also the depth
    /// of the node it was executed from).
    pub(crate) backtrack: Vec<u64>,
    /// Reversible races detected over this instance's lifetime
    /// (telemetry tally, flushed per worker as [`Counter::DporRaces`]).
    ///
    /// [`Counter::DporRaces`]: tm_telemetry::Counter::DporRaces
    pub(crate) races: u64,
}

impl Dpor {
    pub(crate) fn new(n: usize) -> Self {
        Dpor {
            n,
            steps: Vec::new(),
            clocks: Vec::new(),
            last_of: vec![None; n],
            backtrack: Vec::new(),
            races: 0,
        }
    }

    /// Records the execution of one step by `k` with footprint `foot`:
    /// its clock is the join of the process's previous clock and the
    /// clocks of every earlier conflicting step, plus itself.
    pub(crate) fn push(&mut self, k: usize, foot: StepFootprint) {
        let n = self.n;
        let i = self.steps.len();
        let base = self.clocks.len();
        match self.last_of[k] {
            Some(p) => {
                let row = p as usize * n;
                for q in 0..n {
                    let c = self.clocks[row + q];
                    self.clocks.push(c);
                }
            }
            None => self.clocks.resize(base + n, 0),
        }
        for j in 0..i {
            if self.steps[j].foot.conflicts(&foot) {
                let row = j * n;
                for q in 0..n {
                    if self.clocks[row + q] > self.clocks[base + q] {
                        self.clocks[base + q] = self.clocks[row + q];
                    }
                }
            }
        }
        let local_index = self.last_of[k].map_or(0, |p| self.steps[p as usize].local_index) + 1;
        self.clocks[base + k] = local_index;
        self.steps.push(DporStep {
            proc: u8::try_from(k).expect("≤ 64 processes"),
            foot,
            local_index,
            prev_of_proc: self.last_of[k],
        });
        self.last_of[k] = Some(u32::try_from(i).expect("trace fits u32"));
    }

    pub(crate) fn pop(&mut self) {
        let step = self.steps.pop().expect("pop matches push");
        self.last_of[step.proc as usize] = step.prev_of_proc;
        self.clocks.truncate(self.steps.len() * self.n);
    }

    /// Whether step `i` happens-before step `j` (`i < j`).
    fn hb_steps(&self, i: usize, j: usize) -> bool {
        self.clocks[j * self.n + self.steps[i].proc as usize] >= self.steps[i].local_index
    }

    /// Whether step `i` happens-before the *next* (unexecuted) step of
    /// process `q` — i.e. `i` is in the causal past of `q`'s last step.
    fn hb_to_next(&self, i: usize, q: usize) -> bool {
        if self.steps[i].proc as usize == q {
            return true;
        }
        match self.last_of[q] {
            None => false,
            Some(l) => {
                self.clocks[l as usize * self.n + self.steps[i].proc as usize]
                    >= self.steps[i].local_index
            }
        }
    }

    /// SDPOR race detection for the next step of process `k` (footprint
    /// `fp`) against the trace steps at indices `lo..`: for every step
    /// in a reversible race with it — conflicting, by another process,
    /// not already ordered before `k` — ensure the backtrack set at that
    /// step's node intersects the race's source set, inserting one
    /// source member if not.
    ///
    /// Callers pass `lo = 0` for a full scan, or `lo = len - 1` to check
    /// only the step just executed: a race ensured at an ancestor stays
    /// ensured, because an initial of the shorter reversed continuation
    /// remains an initial of every extension (new events by other
    /// processes cannot become happens-before predecessors of it), so
    /// only the *new* step needs checking when neither `k`'s footprint
    /// nor its clock changed.
    pub(crate) fn detect_races_from(&mut self, k: usize, fp: &StepFootprint, lo: usize) {
        for e in (lo..self.steps.len()).rev() {
            let step = &self.steps[e];
            if step.proc as usize == k || !step.foot.conflicts(fp) || self.hb_to_next(e, k) {
                continue;
            }
            self.races += 1;
            let initials = self.source_initials(e, k);
            if self.backtrack[e] & initials == 0 {
                let add = if initials & (1 << k) != 0 {
                    k
                } else {
                    initials.trailing_zeros() as usize
                };
                self.backtrack[e] |= 1 << add;
            }
        }
    }

    /// The source set `I(notdep(e, E) · next_k)`: processes whose first
    /// step in the race's reversed continuation has no happens-before
    /// predecessor inside it. Exploring any one of them from `e`'s node
    /// (eventually) covers the reversal, which is the source-set
    /// weakening of plain DPOR's "add `k` itself".
    fn source_initials(&self, e: usize, k: usize) -> u64 {
        let len = self.steps.len();
        let mut initials = 0u64;
        for q in 0..self.n {
            let first = (e + 1..len).find(|&j| self.steps[j].proc as usize == q);
            match first {
                Some(j) => {
                    if self.hb_steps(e, j) {
                        continue; // causally after e: not in notdep
                    }
                    let blocked =
                        (e + 1..j).any(|j2| !self.hb_steps(e, j2) && self.hb_steps(j2, j));
                    if !blocked {
                        initials |= 1 << q;
                    }
                }
                None => {
                    if q == k {
                        initials |= 1 << k;
                    }
                }
            }
        }
        if initials == 0 {
            initials = 1 << k; // defensive: k is always a valid insertion
        }
        initials
    }
}
