//! Exploration budgets: bounded resources with graceful degradation.
//!
//! A long-running checker must never turn a too-large search space into
//! a hang or an OOM. A [`Budget`] caps the resources one run may spend —
//! states expanded, schedules completed, wall-clock time — and a shared
//! [`BudgetMeter`] trips **once** when any cap is hit. Walkers poll the
//! meter at node entry and unwind normally; the run then finishes as a
//! *partial* report carrying an explicit `exhausted` reason instead of a
//! conclusive verdict (the `budget_exhausted` NDJSON event and the
//! report's `exhausted` field).
//!
//! The meter is a bundle of atomics so the parallel frontier shares it
//! without locks; the first cap to trip wins the reason
//! (compare-exchange), and wall-clock checks are amortized to one
//! `Instant::now()` per `WALL_CHECK_MASK`+1 state notes. Exhausted
//! runs are inherently timing- or scheduling-dependent, so the
//! byte-identity determinism contract applies to runs that finish
//! *within* budget — a partial report only promises a sound
//! under-approximation plus the explicit non-conclusive verdict.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// Resource caps for one checker run. `Budget::unlimited()` (the
/// default) disables metering entirely — no atomics are touched on the
/// hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Cap on states expanded (tree nodes entered / graph nodes
    /// interned).
    pub max_states: Option<u64>,
    /// Cap on completed schedules (safety explorer leaves; unused by the
    /// graph checker).
    pub max_schedules: Option<u64>,
    /// Wall-clock cap in milliseconds.
    pub wall_ms: Option<u64>,
}

impl Budget {
    /// No caps: the search runs to completion.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps states expanded.
    pub fn with_max_states(mut self, max: u64) -> Self {
        self.max_states = Some(max);
        self
    }

    /// Caps completed schedules.
    pub fn with_max_schedules(mut self, max: u64) -> Self {
        self.max_schedules = Some(max);
        self
    }

    /// Caps wall-clock time.
    pub fn with_wall_ms(mut self, ms: u64) -> Self {
        self.wall_ms = Some(ms);
        self
    }

    /// Whether any cap is set.
    pub fn is_limited(&self) -> bool {
        self.max_states.is_some() || self.max_schedules.is_some() || self.wall_ms.is_some()
    }
}

/// Which cap tripped first (stored as an atomic code; 0 = none).
const TRIP_NONE: u8 = 0;
const TRIP_STATES: u8 = 1;
const TRIP_SCHEDULES: u8 = 2;
const TRIP_WALL: u8 = 3;
const TRIP_PANIC: u8 = 4;

/// Amortization mask for wall-clock checks: one `Instant::now()` per
/// `WALL_CHECK_MASK + 1` state notes.
const WALL_CHECK_MASK: u64 = 0x3f;

/// The shared, lock-free run meter of a [`Budget`]. One per run, shared
/// by every frontier worker; poll [`BudgetMeter::within`] at node entry.
#[derive(Debug)]
pub struct BudgetMeter {
    limits: Budget,
    start: Instant,
    states: AtomicU64,
    schedules: AtomicU64,
    tripped: AtomicU8,
}

impl BudgetMeter {
    /// A fresh meter; the wall clock starts now.
    pub fn new(limits: Budget) -> Self {
        BudgetMeter {
            limits,
            start: Instant::now(),
            states: AtomicU64::new(0),
            schedules: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
        }
    }

    fn trip(&self, code: u8) {
        // First cap to trip wins the reason.
        let _ =
            self.tripped
                .compare_exchange(TRIP_NONE, code, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Notes one expanded state and reports whether the run is still
    /// within budget. Also performs the amortized wall-clock check.
    pub fn note_state(&self) -> bool {
        if !self.limits.is_limited() {
            return true;
        }
        let n = self.states.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.limits.max_states {
            if n > max {
                self.trip(TRIP_STATES);
            }
        }
        if let Some(wall) = self.limits.wall_ms {
            if n & WALL_CHECK_MASK == 0 && self.start.elapsed().as_millis() as u64 >= wall {
                self.trip(TRIP_WALL);
            }
        }
        self.within()
    }

    /// Notes one completed schedule and reports whether the run is
    /// still within budget.
    pub fn note_schedule(&self) -> bool {
        if !self.limits.is_limited() {
            return true;
        }
        let n = self.schedules.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.limits.max_schedules {
            if n > max {
                self.trip(TRIP_SCHEDULES);
            }
        }
        self.within()
    }

    /// Whether no cap has tripped yet.
    pub fn within(&self) -> bool {
        self.tripped.load(Ordering::Relaxed) == TRIP_NONE
    }

    /// Marks the run exhausted for a reason outside the metered caps
    /// (a panicked frontier worker). Does not override an earlier trip.
    pub fn trip_external(&self) {
        self.trip(TRIP_PANIC);
    }

    /// The human-readable exhaustion reason, if any cap tripped.
    pub fn exhausted(&self) -> Option<&'static str> {
        match self.tripped.load(Ordering::Relaxed) {
            TRIP_NONE => None,
            TRIP_STATES => Some("state budget exhausted"),
            TRIP_SCHEDULES => Some("schedule budget exhausted"),
            TRIP_WALL => Some("wall-clock budget exhausted"),
            _ => Some("frontier worker panicked"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let meter = BudgetMeter::new(Budget::unlimited());
        for _ in 0..10_000 {
            assert!(meter.note_state());
            assert!(meter.note_schedule());
        }
        assert_eq!(meter.exhausted(), None);
    }

    #[test]
    fn state_cap_trips_once_and_stays_tripped() {
        let meter = BudgetMeter::new(Budget::unlimited().with_max_states(3));
        assert!(meter.note_state());
        assert!(meter.note_state());
        assert!(meter.note_state());
        assert!(!meter.note_state());
        assert!(!meter.within());
        assert_eq!(meter.exhausted(), Some("state budget exhausted"));
        // A later schedule cap cannot steal the reason.
        let capped = BudgetMeter::new(Budget::unlimited().with_max_states(1).with_max_schedules(1));
        assert!(capped.note_state());
        assert!(!capped.note_state());
        assert!(!capped.note_schedule());
        assert_eq!(capped.exhausted(), Some("state budget exhausted"));
    }

    #[test]
    fn schedule_cap_trips() {
        let meter = BudgetMeter::new(Budget::unlimited().with_max_schedules(2));
        assert!(meter.note_schedule());
        assert!(meter.note_schedule());
        assert!(!meter.note_schedule());
        assert_eq!(meter.exhausted(), Some("schedule budget exhausted"));
    }

    #[test]
    fn zero_wall_budget_trips_at_the_first_amortized_check() {
        let meter = BudgetMeter::new(Budget::unlimited().with_wall_ms(0));
        // The wall check fires every WALL_CHECK_MASK+1 notes.
        let mut tripped = false;
        for _ in 0..=WALL_CHECK_MASK + 1 {
            tripped |= !meter.note_state();
        }
        assert!(tripped);
        assert_eq!(meter.exhausted(), Some("wall-clock budget exhausted"));
    }

    #[test]
    fn external_trip_reports_a_panic() {
        let meter = BudgetMeter::new(Budget::unlimited().with_max_states(100));
        meter.trip_external();
        assert!(!meter.within());
        assert_eq!(meter.exhausted(), Some("frontier worker panicked"));
    }
}
