//! Simulation substrate: schedulers, faults, workloads, and a bounded
//! model checker for stepped TMs.
//!
//! The paper's systems model is an asynchronous shared-memory system where
//! a scheduler — beyond anyone's control — orders process steps, and any
//! number of processes may crash or turn parasitic. This crate makes that
//! model executable:
//!
//! * [`Scheduler`] implementations ([`RoundRobin`], [`RandomScheduler`],
//!   [`WeightedScheduler`], [`FixedSchedule`]);
//! * [`FaultPlan`] — crash and parasitic-turn injection at chosen steps;
//! * [`Client`] / [`ClientScript`] — the transactional programs processes
//!   run, with retry-on-abort;
//! * [`simulate`] — the simulation loop, with per-process progress
//!   accounting and optional online opacity certification;
//! * [`explore_schedules`] — bounded-exhaustive enumeration of all
//!   interleavings, the executable analogue of Theorem 3's "every finite
//!   history of `Fgp` is opaque";
//! * [`livecheck`](livecheck()) — bounded *liveness* model checking: lasso detection
//!   over the canonical state graph, classifying which processes a TM
//!   can starve, block, or keep progressing (the paper's Figure 2
//!   taxonomy, decided mechanically), with a deterministic parallel
//!   search (`LivecheckConfig::parallel`);
//! * [`FaultConfig`] — fault-*prone* model checking: crash and
//!   parasitic-turn transitions quantified exhaustively inside both
//!   checkers (every fault placement the budget admits, not one scripted
//!   plan), with witnesses carrying their concrete [`FaultPlan`];
//! * [`Budget`] — graceful degradation: state/schedule/wall-clock caps
//!   that stop the search and downgrade the result to an explicit
//!   partial verdict instead of running unbounded;
//! * [`online`] — streaming opacity certification at production
//!   traffic: the consumer side of `tm_stm`'s sharded recorder, sealing
//!   the merged event stream into epochs, cutting it into
//!   independently certifiable chunks, and certifying them on a rayon
//!   pool while worker threads keep committing
//!   ([`certify_workload`]);
//! * [`engine`] — the exploration kernel beneath both model checkers:
//!   the shared stepper and [`engine::SearchSpace`] contract, TM
//!   fork/refork pooling ([`tm_stm::TmPool`]), seen-set/interning
//!   backends, reduction state, and the deterministic parallel frontier.
//!
//! ```
//! use tm_core::TVarId;
//! use tm_sim::{simulate, Client, ClientScript, FaultPlan, RandomScheduler, SimConfig};
//! use tm_stm::Tl2;
//!
//! let x = TVarId(0);
//! let mut tm = Tl2::new(2, 1);
//! let mut clients = vec![
//!     Client::new(ClientScript::increment(x)),
//!     Client::new(ClientScript::increment(x)),
//! ];
//! let report = simulate(
//!     &mut tm,
//!     &mut clients,
//!     &mut RandomScheduler::new(42),
//!     &FaultPlan::none(),
//!     SimConfig::steps(300).check_opacity(),
//! );
//! assert!(report.safety_ok);
//! assert!(report.commits.iter().all(|&c| c > 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod explore;
pub mod faults;
pub mod livecheck;
pub mod online;
pub mod runner;
pub mod scheduler;
pub mod workload;

pub use engine::{Budget, BudgetMeter};
pub use explore::{
    explore_schedules, explore_schedules_naive, explore_with, mazurkiewicz_classes,
    schedule_normal_form, Exploration, ExploreConfig, Violation,
};
pub use faults::{parasitic_script, Fault, FaultConfig, FaultPlan, FaultState};
pub use livecheck::{
    livecheck, FairProcessVerdicts, LassoFinding, LivecheckConfig, LivecheckReport,
    ProcessCycleVerdicts,
};
pub use online::{
    certify_chunk, certify_workload, Chunk, Chunker, OnlineConfig, OnlinePipeline, OnlineReport,
    OnlineViolation, OnlineWorkload,
};
pub use runner::{simulate, SimConfig, SimReport};
pub use scheduler::{FixedSchedule, RandomScheduler, RoundRobin, Scheduler, WeightedScheduler};
pub use workload::{random_script, Client, ClientMark, ClientScript, PlannedOp, WorkloadConfig};
