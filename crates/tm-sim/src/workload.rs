//! Transactional workloads: the application side of a simulation.
//!
//! A [`Client`] is the program a process runs: it issues invocations one
//! at a time, retries its transaction when aborted, and starts a new
//! transaction after a commit. Clients come in two flavours:
//!
//! * **scripted** ([`ClientScript`]) — a fixed operation list executed in
//!   a loop, used by the exhaustive model checker where determinism is
//!   essential;
//! * **random** ([`random_script`]) — scripts drawn from a
//!   [`WorkloadConfig`] distribution, used by the randomized simulations.

use rand::Rng;
use serde::{Deserialize, Serialize};

use tm_core::{Invocation, Response, TVarId, Value};

/// One planned transactional operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlannedOp {
    /// Read a t-variable.
    Read(TVarId),
    /// Write a constant value.
    Write(TVarId, Value),
    /// Write `last read value + 1` (a read-modify-write increment); falls
    /// back to writing `1` if the transaction has not read yet.
    Bump(TVarId),
}

/// A transaction plan: the operations of one transaction, followed by an
/// implicit `tryC`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientScript {
    ops: Vec<PlannedOp>,
}

impl ClientScript {
    /// Creates a script from planned operations (the commit is implicit).
    pub fn new(ops: Vec<PlannedOp>) -> Self {
        ClientScript { ops }
    }

    /// The planned operations.
    pub fn ops(&self) -> &[PlannedOp] {
        &self.ops
    }

    /// `read x · write x (v+1) · tryC` — the increment transaction.
    pub fn increment(x: TVarId) -> Self {
        ClientScript::new(vec![PlannedOp::Read(x), PlannedOp::Bump(x)])
    }

    /// `read x · read y · write x · write y · tryC` — a two-variable
    /// transfer-shaped transaction.
    pub fn transfer(x: TVarId, y: TVarId) -> Self {
        ClientScript::new(vec![
            PlannedOp::Read(x),
            PlannedOp::Read(y),
            PlannedOp::Bump(x),
            PlannedOp::Write(y, 7),
        ])
    }

    /// `read x · read y · tryC` — a read-only snapshot transaction.
    pub fn read_both(x: TVarId, y: TVarId) -> Self {
        ClientScript::new(vec![PlannedOp::Read(x), PlannedOp::Read(y)])
    }

    /// `write x v · tryC` — a blind write.
    pub fn blind_write(x: TVarId, v: Value) -> Self {
        ClientScript::new(vec![PlannedOp::Write(x, v)])
    }
}

/// Distribution from which random scripts are drawn.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of t-variables the workload touches.
    pub tvars: usize,
    /// Minimum operations per transaction.
    pub min_ops: usize,
    /// Maximum operations per transaction.
    pub max_ops: usize,
    /// Probability that an operation is a write (vs a read).
    pub write_fraction: f64,
    /// Written constants are drawn from `0..value_range`.
    pub value_range: Value,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            tvars: 4,
            min_ops: 1,
            max_ops: 4,
            write_fraction: 0.5,
            value_range: 8,
        }
    }
}

/// Draws a random script from the configuration.
pub fn random_script<R: Rng>(config: &WorkloadConfig, rng: &mut R) -> ClientScript {
    let n = rng.gen_range(config.min_ops..=config.max_ops.max(config.min_ops));
    let ops = (0..n)
        .map(|_| {
            let x = TVarId(rng.gen_range(0..config.tvars));
            if rng.gen_bool(config.write_fraction) {
                if rng.gen_bool(0.5) {
                    PlannedOp::Write(x, rng.gen_range(0..config.value_range))
                } else {
                    PlannedOp::Bump(x)
                }
            } else {
                PlannedOp::Read(x)
            }
        })
        .collect();
    ClientScript::new(ops)
}

/// Digest of every client's [`Client::cursor`] — the client component of
/// the model checkers' configuration keys: exactly the state that
/// determines all future invocations, with the commit/abort tallies
/// excluded (they differ between merged prefixes and influence nothing
/// the checkers observe). Allocation-free: this sits on the per-node
/// hot path of the dedup explorer and the per-step path of livecheck.
pub(crate) fn clients_digest(clients: &[Client]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = tm_core::StableHasher::new();
    clients.len().hash(&mut hasher);
    for client in clients {
        client.cursor().hash(&mut hasher);
    }
    hasher.finish()
}

/// A snapshot of a [`Client`]'s execution state, taken by
/// [`Client::mark`] and consumed by [`Client::restore`].
#[derive(Debug, Clone, Copy)]
pub struct ClientMark {
    position: usize,
    last_read: Option<Value>,
    commits: usize,
    aborts: usize,
}

/// The execution state of a client: which operation of its current
/// transaction attempt is next.
#[derive(Debug, Clone)]
pub struct Client {
    script: ClientScript,
    position: usize,
    last_read: Option<Value>,
    /// Completed transactions.
    pub commits: usize,
    /// Aborted transaction attempts.
    pub aborts: usize,
}

impl Client {
    /// Creates a client that loops on `script`, retrying aborted
    /// transactions from the start (the paper's "keeps retrying" premise
    /// behind local progress).
    pub fn new(script: ClientScript) -> Self {
        Client {
            script,
            position: 0,
            last_read: None,
            commits: 0,
            aborts: 0,
        }
    }

    /// The invocation the client issues next.
    pub fn next_invocation(&self) -> Invocation {
        match self.script.ops().get(self.position) {
            Some(PlannedOp::Read(x)) => Invocation::Read(*x),
            Some(PlannedOp::Write(x, v)) => Invocation::Write(*x, *v),
            Some(PlannedOp::Bump(x)) => Invocation::Write(*x, self.last_read.map_or(1, |v| v + 1)),
            None => Invocation::TryCommit,
        }
    }

    /// Feeds the TM's response to the client, advancing (or restarting)
    /// its transaction.
    pub fn observe(&mut self, response: Response) {
        match response {
            Response::Aborted => {
                self.aborts += 1;
                self.position = 0;
                self.last_read = None;
            }
            Response::Committed => {
                self.commits += 1;
                self.position = 0;
                self.last_read = None;
            }
            Response::Value(v) => {
                self.last_read = Some(v);
                self.position += 1;
            }
            Response::Ok => {
                self.position += 1;
            }
        }
    }

    /// Snapshots the execution state (not the script, which is immutable
    /// during exploration). With [`Client::restore`] this lets the model
    /// checker backtrack one step in O(1) without cloning the client.
    pub fn mark(&self) -> ClientMark {
        ClientMark {
            position: self.position,
            last_read: self.last_read,
            commits: self.commits,
            aborts: self.aborts,
        }
    }

    /// Restores a snapshot taken by [`Client::mark`].
    pub fn restore(&mut self, mark: ClientMark) {
        self.position = mark.position;
        self.last_read = mark.last_read;
        self.commits = mark.commits;
        self.aborts = mark.aborts;
    }

    /// The client's transaction cursor: the operation position and the
    /// last read value — exactly the state that determines every future
    /// invocation. The commit/abort tallies are deliberately excluded
    /// (they are observation counters, not behaviour), which is what
    /// lets the model checker's digest dedup and the liveness lasso
    /// search merge configurations reached by different prefixes.
    pub fn cursor(&self) -> (usize, Option<Value>) {
        (self.position, self.last_read)
    }

    /// Restores a cursor snapshot taken by [`Client::cursor`], leaving
    /// the commit/abort tallies at zero. The parallel liveness frontier
    /// uses this to rehydrate a configuration's clients on a worker —
    /// sound because the tallies are observation counters excluded from
    /// every configuration digest and read by nothing the checkers emit.
    pub(crate) fn set_cursor(&mut self, (position, last_read): (usize, Option<Value>)) {
        self.position = position;
        self.last_read = last_read;
    }

    /// Restarts the current transaction attempt without touching the
    /// commit/abort tallies. The liveness checker uses this to model
    /// *parasitic* processes (paper §2.3): instead of reaching the
    /// script's implicit `tryC`, a parasitic client loops its operations
    /// forever.
    pub fn restart_transaction(&mut self) {
        self.position = 0;
        self.last_read = None;
    }

    /// Replaces the script (used by parasitic fault injection, which
    /// switches a client to an endless read loop).
    pub fn replace_script(&mut self, script: ClientScript) {
        self.script = script;
        self.position = 0;
        self.last_read = None;
    }

    /// Whether the client is mid-transaction (has issued at least one
    /// operation of its current attempt).
    pub fn mid_transaction(&self) -> bool {
        self.position > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    #[test]
    fn increment_script_sequences_read_bump_commit() {
        let mut c = Client::new(ClientScript::increment(X));
        assert_eq!(c.next_invocation(), Invocation::Read(X));
        c.observe(Response::Value(4));
        assert_eq!(c.next_invocation(), Invocation::Write(X, 5));
        c.observe(Response::Ok);
        assert_eq!(c.next_invocation(), Invocation::TryCommit);
        c.observe(Response::Committed);
        assert_eq!(c.commits, 1);
        // New transaction starts over.
        assert_eq!(c.next_invocation(), Invocation::Read(X));
    }

    #[test]
    fn abort_restarts_the_attempt() {
        let mut c = Client::new(ClientScript::increment(X));
        c.observe(Response::Value(4));
        c.observe(Response::Aborted);
        assert_eq!(c.aborts, 1);
        assert_eq!(c.next_invocation(), Invocation::Read(X));
        assert!(!c.mid_transaction());
    }

    #[test]
    fn bump_without_read_writes_one() {
        let c = Client::new(ClientScript::new(vec![PlannedOp::Bump(X)]));
        assert_eq!(c.next_invocation(), Invocation::Write(X, 1));
    }

    #[test]
    fn transfer_script_touches_both_vars() {
        let s = ClientScript::transfer(X, Y);
        assert_eq!(s.ops().len(), 4);
    }

    #[test]
    fn random_scripts_respect_config() {
        let config = WorkloadConfig {
            tvars: 2,
            min_ops: 2,
            max_ops: 5,
            write_fraction: 1.0,
            value_range: 3,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = random_script(&config, &mut rng);
            assert!(s.ops().len() >= 2 && s.ops().len() <= 5);
            for op in s.ops() {
                match op {
                    PlannedOp::Read(_) => panic!("write_fraction = 1.0"),
                    PlannedOp::Write(x, v) => {
                        assert!(x.index() < 2);
                        assert!(*v < 3);
                    }
                    PlannedOp::Bump(x) => assert!(x.index() < 2),
                }
            }
        }
    }

    #[test]
    fn replace_script_resets_position() {
        let mut c = Client::new(ClientScript::increment(X));
        c.observe(Response::Value(1));
        assert!(c.mid_transaction());
        c.replace_script(ClientScript::read_both(X, Y));
        assert!(!c.mid_transaction());
        assert_eq!(c.next_invocation(), Invocation::Read(X));
    }
}
