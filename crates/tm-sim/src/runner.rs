//! The simulation loop: TM × clients × scheduler × faults.
//!
//! Each step, the scheduler picks an eligible (non-crashed) process; the
//! process either polls its withheld response (blocking TMs) or issues its
//! client's next invocation. Faults from the [`FaultPlan`] are applied at
//! their trigger steps. The report carries per-process commit/abort
//! counts, a commit log for progress-over-time analysis, and an optional
//! online opacity certificate.

use serde::{Deserialize, Serialize};

use tm_core::{Event, ProcessId, Response};
use tm_safety::{IncrementalChecker, Mode};
use tm_stm::{Outcome, SteppedTm};

use crate::faults::{parasitic_script, FaultPlan};
use crate::scheduler::Scheduler;
use crate::workload::Client;

/// Configuration for [`simulate`].
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of scheduler steps.
    pub steps: usize,
    /// Optional online safety certification.
    pub check: Option<Mode>,
}

impl SimConfig {
    /// `steps` steps, no safety checking.
    pub fn steps(steps: usize) -> Self {
        SimConfig { steps, check: None }
    }

    /// Enables online opacity certification.
    pub fn check_opacity(mut self) -> Self {
        self.check = Some(Mode::Opacity);
        self
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// TM algorithm name.
    pub tm_name: String,
    /// Steps actually executed.
    pub steps: usize,
    /// Commits per process.
    pub commits: Vec<usize>,
    /// Aborted attempts per process.
    pub aborts: Vec<usize>,
    /// Fruitless polls per process (blocking TMs).
    pub stalls: Vec<usize>,
    /// `(step, process)` for every commit, for windowed progress analysis.
    pub commit_log: Vec<(usize, ProcessId)>,
    /// Whether the online safety check passed (true when disabled).
    pub safety_ok: bool,
    /// Description of the safety violation, if detected.
    pub safety_violation: Option<String>,
}

impl SimReport {
    /// The processes that committed at least once at or after `from_step`
    /// — used to decide who "keeps making progress" in the tail of a run.
    pub fn progressing_since(&self, from_step: usize) -> Vec<ProcessId> {
        let mut out: Vec<ProcessId> = self
            .commit_log
            .iter()
            .filter(|&&(s, _)| s >= from_step)
            .map(|&(_, p)| p)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether every window of `window` steps (up to `self.steps`)
    /// contains a commit by one of `processes` — the finite-run rendering
    /// of "some correct process commits infinitely often".
    pub fn global_progress_in_windows(&self, window: usize, processes: &[ProcessId]) -> bool {
        if window == 0 || self.steps == 0 {
            return true;
        }
        let mut window_start = 0;
        while window_start + window <= self.steps {
            let hit = self.commit_log.iter().any(|&(s, p)| {
                s >= window_start && s < window_start + window && processes.contains(&p)
            });
            if !hit {
                return false;
            }
            window_start += window;
        }
        true
    }
}

/// Runs the simulation.
///
/// # Panics
///
/// Panics if `clients.len()` differs from the TM's process count.
pub fn simulate(
    tm: &mut dyn SteppedTm,
    clients: &mut [Client],
    scheduler: &mut dyn Scheduler,
    faults: &FaultPlan,
    config: SimConfig,
) -> SimReport {
    let n = tm.process_count();
    assert_eq!(clients.len(), n, "one client per process");
    let mut stalls = vec![0usize; n];
    let mut commit_log: Vec<(usize, ProcessId)> = Vec::new();
    let mut checker = config.check.map(IncrementalChecker::new);
    let mut safety_ok = true;
    let mut safety_violation: Option<String> = None;
    let mut steps_done = 0;

    for step in 0..config.steps {
        // Trigger parasitic turns scheduled for this step.
        for (k, client) in clients.iter_mut().enumerate() {
            let p = ProcessId(k);
            if faults.parasitic_turn_at(p, step) {
                let x = tm_core::TVarId(0);
                client.replace_script(parasitic_script(x));
            }
        }
        let eligible: Vec<ProcessId> = (0..n)
            .map(ProcessId)
            .filter(|&p| !faults.is_crashed(p, step))
            .collect();
        if eligible.is_empty() {
            break; // everyone crashed
        }
        steps_done = step + 1;
        let p = scheduler.pick(step, &eligible);
        let k = p.index();

        if tm.has_pending(p) {
            match tm.poll(p) {
                Some(response) => {
                    if let Some(c) = &mut checker {
                        if safety_ok {
                            if let Err(v) = c.push(Event::response(p, response)) {
                                safety_ok = false;
                                safety_violation = Some(v.to_string());
                            }
                        }
                    }
                    if response == Response::Committed {
                        commit_log.push((step, p));
                    }
                    clients[k].observe(response);
                }
                None => stalls[k] += 1,
            }
            continue;
        }

        let invocation = clients[k].next_invocation();
        if let Some(c) = &mut checker {
            if safety_ok {
                if let Err(v) = c.push(Event::invocation(p, invocation)) {
                    safety_ok = false;
                    safety_violation = Some(v.to_string());
                }
            }
        }
        match tm.invoke(p, invocation) {
            Outcome::Response(response) => {
                if let Some(c) = &mut checker {
                    if safety_ok {
                        if let Err(v) = c.push(Event::response(p, response)) {
                            safety_ok = false;
                            safety_violation = Some(v.to_string());
                        }
                    }
                }
                if response == Response::Committed {
                    commit_log.push((step, p));
                }
                clients[k].observe(response);
            }
            Outcome::Pending => {}
        }
    }

    SimReport {
        tm_name: tm.name().to_string(),
        steps: steps_done,
        commits: clients.iter().map(|c| c.commits).collect(),
        aborts: clients.iter().map(|c| c.aborts).collect(),
        stalls,
        commit_log,
        safety_ok,
        safety_violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{RandomScheduler, RoundRobin};
    use crate::workload::ClientScript;
    use tm_core::TVarId;
    use tm_stm::{GlobalLock, Tl2};

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);

    fn increment_clients(n: usize) -> Vec<Client> {
        (0..n)
            .map(|_| Client::new(ClientScript::increment(X)))
            .collect()
    }

    #[test]
    fn fault_free_random_run_all_processes_commit() {
        let mut tm = Tl2::new(2, 1);
        let mut clients = increment_clients(2);
        let mut sched = RandomScheduler::new(17);
        let report = simulate(
            &mut tm,
            &mut clients,
            &mut sched,
            &FaultPlan::none(),
            SimConfig::steps(600).check_opacity(),
        );
        assert!(report.safety_ok);
        assert!(report.commits[0] > 10);
        assert!(report.commits[1] > 10);
        // Increments never get lost: committed value = total commits of
        // increment transactions.
        assert_eq!(
            tm.committed_value(X),
            (report.commits[0] + report.commits[1]) as u64
        );
    }

    #[test]
    fn round_robin_lockstep_starves_the_second_incrementer() {
        // A *finding*, not a bug: under strict alternation p1 always
        // reaches tryC first, so TL2 aborts p2 every round — a concrete
        // local-progress violation produced by a fair-looking scheduler.
        let mut tm = Tl2::new(2, 1);
        let mut clients = increment_clients(2);
        let mut sched = RoundRobin::new();
        let report = simulate(
            &mut tm,
            &mut clients,
            &mut sched,
            &FaultPlan::none(),
            SimConfig::steps(600).check_opacity(),
        );
        assert!(report.safety_ok);
        assert!(report.commits[0] > 50);
        assert_eq!(report.commits[1], 0);
        assert!(report.aborts[1] > 50);
    }

    #[test]
    fn crash_fault_starves_global_lock_but_not_tl2() {
        let faults = FaultPlan::none().crash(P1, 3);
        // Global lock: p1 likely holds the lock at step 3 → p2 stalls out.
        let mut gl = GlobalLock::new(2, 1);
        let mut clients = increment_clients(2);
        let mut sched = RoundRobin::new();
        let gl_report = simulate(
            &mut gl,
            &mut clients,
            &mut sched,
            &faults,
            SimConfig::steps(500),
        );
        assert_eq!(gl_report.commits[1], 0, "p2 must starve behind the lock");
        assert!(gl_report.stalls[1] > 100);

        // TL2: p2 sails on.
        let mut tl2 = Tl2::new(2, 1);
        let mut clients = increment_clients(2);
        let mut sched = RoundRobin::new();
        let tl2_report = simulate(
            &mut tl2,
            &mut clients,
            &mut sched,
            &faults,
            SimConfig::steps(500),
        );
        assert!(tl2_report.commits[1] > 50);
    }

    #[test]
    fn parasitic_fault_stops_commits_of_victim() {
        let faults = FaultPlan::none().parasitic(P2, 50);
        let mut tm = Tl2::new(2, 1);
        let mut clients = increment_clients(2);
        let mut sched = RandomScheduler::new(11);
        let report = simulate(
            &mut tm,
            &mut clients,
            &mut sched,
            &faults,
            SimConfig::steps(2_000),
        );
        // p2 committed only before its parasitic turn.
        assert!(report.commit_log.iter().all(|&(s, p)| p != P2 || s < 50));
        // p1 keeps going.
        assert!(report.commits[0] > 50);
    }

    #[test]
    fn progressing_since_and_windows() {
        let mut tm = Tl2::new(2, 1);
        let mut clients = increment_clients(2);
        let mut sched = RandomScheduler::new(23);
        let report = simulate(
            &mut tm,
            &mut clients,
            &mut sched,
            &FaultPlan::none(),
            SimConfig::steps(1_000),
        );
        let tail = report.progressing_since(500);
        assert!(tail.contains(&P1) && tail.contains(&P2));
        assert!(report.global_progress_in_windows(200, &[P1, P2]));
    }

    #[test]
    fn all_crashed_run_stops_early() {
        let faults = FaultPlan::none().crash(P1, 2).crash(P2, 2);
        let mut tm = Tl2::new(2, 1);
        let mut clients = increment_clients(2);
        let mut sched = RoundRobin::new();
        let report = simulate(
            &mut tm,
            &mut clients,
            &mut sched,
            &faults,
            SimConfig::steps(1_000),
        );
        assert_eq!(report.steps, 2);
    }
}
