//! Bounded liveness model checking: lasso detection over the canonical
//! state graph.
//!
//! The safety explorer ([`crate::explore`]) certifies *finite* behaviour
//! (opacity of every history up to a depth). The paper's central results,
//! however, are about *infinite* behaviour: which processes starve, which
//! are parasitic, which progress (§2.3, Figures 5–7). Infinite
//! counterexamples of finite-state systems are **lassos** — a finite
//! prefix leading into a cycle repeated forever — so liveness checking
//! reduces to cycle detection in a canonical state graph. This module
//! builds that graph and searches it.
//!
//! # The canonical state graph
//!
//! A *configuration* is `(TM state, client cursors)`; it determines every
//! future response and invocation, so the bounded run graph is exactly
//! the graph over configurations with one edge per scheduled process.
//! Configurations are interned by their canonical digests —
//! [`tm_stm::SteppedTm::state_digest`] (whose per-algorithm
//! canonicalization contract normalizes unbounded version clocks into
//! rank patterns, making recurrence *possible* at all) and
//! [`crate::workload::Client::cursor`] (which excludes the commit/abort
//! tallies for the same reason). A DFS bounded by
//! [`LivecheckConfig::depth`] explores the graph once per configuration
//! (re-expanding only when revisited with a larger remaining budget), so
//! the cost scales with the number of *distinct states*, not with the
//! `n^depth` schedule tree.
//!
//! # Lassos: concrete witnesses
//!
//! When the DFS steps into a configuration already on its own path, the
//! events since that configuration's frame form a cycle that the
//! scheduler can repeat forever. Each such cycle is converted into a
//! [`tm_liveness::InfiniteHistory`] via
//! [`tm_liveness::detect::lasso_from_cycle`] and every process is
//! classified with the paper's Figure 2 taxonomy
//! ([`fn@tm_liveness::classify`]): progressing, starving, parasitic,
//! crashed (the scheduler abandoned it), or absent. Findings are
//! deduplicated and capped at [`LivecheckConfig::max_lassos`].
//!
//! A cycle can also contain **no events at all** — a blocked process
//! polling a withheld response forever (the global-lock TM under a
//! crashed lock holder). Such cycles admit no `InfiniteHistory` (the
//! paper's histories are event sequences; an eventless suffix is
//! Figure 14's blocking shape) and are certified separately below.
//!
//! # Certified verdicts: the SCC pass
//!
//! On-path detection yields witnesses, but *absence* claims ("no
//! starvation lasso at this bound") need a completeness argument that
//! per-path search cannot give once the seen set prunes re-expansion.
//! The checker therefore also records the explored graph explicitly and
//! decides cycle **existence** exactly, per process, via the SCC
//! certificates of [`tm_liveness::scc`] (Tarjan over edge-filtered
//! views; see that module for the per-verdict edge deletions):
//!
//! * **starving** — a cycle aborts the process infinitely often and
//!   never commits it;
//! * **parasitic** — a cycle gives the process infinitely many events
//!   but finitely many `tryC`/aborts;
//! * **blocked** — the scheduler can run the process forever without the
//!   TM ever responding;
//! * **progressing** — a cycle commits the process infinitely often.
//!
//! These verdicts are exact *for the explored subgraph*: configurations
//! first reached at the depth bound are frontier nodes without outgoing
//! edges, so the certificate is "no such cycle within the bound", the
//! standard bounded-model-checking guarantee.
//! [`LivecheckReport::lasso_starvation_free`] is the resulting per-TM
//! certificate. The per-process certificates are independent Tarjan
//! passes over a read-only graph — embarrassingly parallel — and run on
//! the rayon pool ([`tm_liveness::certify_cycles_parallel`], verdicts
//! merged in process-id order) when [`LivecheckConfig::parallel`] is on.
//!
//! # Parasitic processes
//!
//! [`LivecheckConfig::with_parasitic`] marks processes that never invoke
//! `tryC` (§2.3): their clients loop their operations via
//! [`Client::restart_transaction`] instead of reaching the script's
//! implicit commit. This reproduces the Figure 12 shape — a parasitic
//! reader starving a writer — mechanically.
//!
//! # Equivalence-class reduction
//!
//! The safety explorer's source-set DPOR ([`crate::explore`]) prunes
//! whole interleaving classes because a *verdict* is class-invariant.
//! Liveness certification cannot prune schedules that way: for two
//! independent steps `a | b`, the interleavings `ab` and `ba` pass
//! through **different intermediate configurations** (`after-a` vs
//! `after-b`), and both must be interned for the state/edge/lasso sets —
//! the very objects the SCC certificates quantify over — to be complete.
//! What *is* redundant is re-executing a transition the graph already
//! records: the budget-bounded DFS re-walks a node's subtree whenever a
//! shorter path reaches it with a larger remaining budget, re-deriving
//! edges whose targets, labels and events are already known.
//!
//! [`LivecheckConfig::reduce`] prunes exactly that redundancy — one
//! *executed* representative per transition, every re-derivation
//! replayed: first expansions record each edge's (at most two) events;
//! re-walks replay recorded edges into the history and client cursors
//! (stepping is deterministic, so the replay is byte-identical) without
//! touching a TM; and a frontier node reached but not yet expanded
//! *parks* its TM box so a later, deeper re-walk can expand it in place
//! instead of re-executing the path to it. Every TM transition is thus
//! executed exactly once; the traversal order, the explored graph, the
//! lasso findings and the certified verdicts are unchanged (asserted by
//! the differential suite), and
//! `steps(plain) = steps(reduced) + replayed_steps(reduced)`.
//!
//! The safety explorer's wakeup trees
//! ([`crate::explore`](crate::explore#optimal-dpor-wakeup-trees))
//! sharpen its reduction further — never *starting* a schedule later
//! abandoned as redundant. Transition memoization is this checker's
//! analogue of that optimality: where wakeup trees guarantee at most
//! one executed schedule per interleaving class, `reduce` guarantees
//! exactly one executed step per state-graph edge — the quantified
//! object each checker certifies over. A wakeup-tree mode for liveness
//! itself would be unsound for the same reason sleep sets are: pruned
//! interleavings pass through unexplored intermediate configurations,
//! and the SCC certificates must quantify over all of them.
//!
//! # Parallel lasso search
//!
//! With [`LivecheckConfig::parallel`] the expensive part of the search —
//! executing TM transitions and digesting the results — runs on the
//! rayon pool, in two phases that keep the report **byte-identical to
//! the sequential reduced search** regardless of thread count:
//!
//! 1. **Graph construction** is a level-synchronous frontier over the
//!    interned-node table: all configurations at BFS distance `d` are
//!    expanded concurrently ([`crate::engine::frontier::distribute`],
//!    which preserves item order), then their successors are interned in
//!    one deterministic merge — parent order, then process order — so
//!    node ids equal the canonical breadth-first discovery order on
//!    every run. Each node is expanded exactly once, so every TM
//!    transition is executed exactly once (the reduction's execution
//!    discipline, now also spread across cores). The graph this phase
//!    produces is *the* canonical bounded graph — nodes at distance
//!    ≤ depth, edges of nodes at distance ≤ depth−1 — which is exactly
//!    the graph the sequential budget-DFS explores, because a budget-DFS
//!    eventually expands every node at its maximal remaining budget
//!    `depth − distance`.
//! 2. **Lasso detection** replays the sequential DFS over the recorded
//!    graph — no TM work, just edge replays (the reduction's re-walk
//!    machinery with every edge recorded) — so cycles are discovered in
//!    the sequential order, and lassos, cycle counters, dedup hits and
//!    verdicts come out byte-identical to the sequential search.
//!
//! Because phase 1 executes each transition once, the parallel report's
//! [`LivecheckReport::steps`]/[`LivecheckReport::replayed_steps`] match
//! the *reduced* sequential search's (`parallel` implies the reduction's
//! execution discipline); states, edges, lassos and verdicts match every
//! sequential mode.
//!
//! # The exploration kernel
//!
//! This checker is the graph-search instantiation of the shared kernel
//! in [`crate::engine`] (the safety explorer is the tree-search one):
//! its `GraphSpace` implements the kernel's [`SearchSpace`] contract
//! over the shared stepper, TM branching runs through the shared
//! [`tm_stm::TmPool`], configurations are interned through
//! [`crate::engine::memo::Interner`], and the parallel frontier is the
//! kernel's deterministic [`crate::engine::frontier::distribute`].

use std::collections::{HashMap, HashSet};

use tm_core::{digest_of, Event, Invocation, ProcessId, Value};
use tm_liveness::{classify, detect::lasso_from_cycle, CycleEdge, InfiniteHistory, ProcessClass};
use tm_stm::{BoxedTm, SteppedTm, TmPool};
use tm_telemetry::{Counter, Json, Telemetry, Timer};

use crate::engine::budget::{Budget, BudgetMeter};
use crate::engine::frontier;
use crate::engine::memo::Interner;
use crate::engine::space::{emit_trace, step_process, SearchSpace, StepRecord, TraceWitness};
use crate::faults::{Fault, FaultConfig, FaultPlan, FaultState};
use crate::workload::{clients_digest, Client, ClientMark, ClientScript};

pub use tm_liveness::{FairProcessVerdicts, ProcessCycleVerdicts};

/// Configuration for [`livecheck`].
#[derive(Debug, Clone)]
pub struct LivecheckConfig {
    /// Maximum schedule length explored from the initial configuration.
    /// Cycle existence is decided exactly for the subgraph reachable
    /// within this bound.
    pub depth: usize,
    /// Cap on *stored* lasso findings (detection keeps counting).
    pub max_lassos: usize,
    /// Transition-level reduction: execute every TM transition **once**
    /// and replay recorded edges on re-walks (see the module docs'
    /// "Equivalence-class reduction" section). The explored graph,
    /// lassos and verdicts are identical; only
    /// [`LivecheckReport::steps`] (TM executions) drops — re-walked
    /// edges count in [`LivecheckReport::replayed_steps`] instead.
    pub reduce: bool,
    /// Parallel lasso search (see the module docs): graph construction
    /// runs level-synchronously on the rayon pool with every TM
    /// transition executed exactly once, then lasso detection replays
    /// the sequential DFS over the recorded graph and the SCC
    /// certificates fan out per process. Reports are byte-identical to
    /// the sequential `reduce` search regardless of thread count
    /// (`parallel` implies the reduction's execution discipline; states,
    /// edges, lassos and verdicts also match the unreduced search).
    pub parallel: bool,
    /// Bitmask of processes that never invoke `tryC` (loop their
    /// operations forever): the paper's parasitic processes.
    parasitic: u64,
    /// Fault quantification: with a non-trivial config, `crash(p)` /
    /// `parasite(p)` become scheduler-level transitions of the graph
    /// search, exhaustively explored. Fault state folds into node
    /// identities (same TM state under different crash masks is a
    /// different configuration) and each lasso finding carries the
    /// concrete [`FaultPlan`] its branch chose. With
    /// [`FaultConfig::none()`] (the default) reports are byte-identical
    /// to fault-free checking.
    pub faults: FaultConfig,
    /// Resource caps ([`Budget`]): a tripped cap degrades the run into a
    /// partial report with [`LivecheckReport::exhausted`] set (absence
    /// claims are then only sound for the subgraph actually explored).
    /// Unlimited by default.
    pub budget: Budget,
    /// Observability handle (off by default — hooks are no-ops). The
    /// counters it accumulates are deterministic at any thread count;
    /// see the `tm_telemetry` module docs for the schema and contract.
    pub telemetry: Telemetry,
}

impl LivecheckConfig {
    /// Exploration to `depth` with the default finding cap.
    pub fn new(depth: usize) -> Self {
        LivecheckConfig {
            depth,
            max_lassos: 32,
            reduce: false,
            parallel: false,
            parasitic: 0,
            faults: FaultConfig::none(),
            budget: Budget::unlimited(),
            telemetry: Telemetry::off(),
        }
    }

    /// Quantifies over crash/parasitic faults ([`FaultConfig`]).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Caps the run's resources ([`Budget`]); a tripped cap yields a
    /// partial report with [`LivecheckReport::exhausted`] set.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Enables the transition-level reduction (execute each TM
    /// transition once; replay recorded edges on re-walks).
    pub fn with_reduction(mut self) -> Self {
        self.reduce = true;
        self
    }

    /// Enables the parallel lasso search (rayon graph construction +
    /// parallel SCC certification, byte-identical reports).
    pub fn with_parallel(mut self) -> Self {
        self.parallel = true;
        self
    }

    /// Marks `process` parasitic: it loops its script's operations
    /// forever instead of ever invoking `tryC`.
    pub fn with_parasitic(mut self, process: ProcessId) -> Self {
        assert!(process.index() < 64, "parasitic mask is a u64");
        self.parasitic |= 1 << process.index();
        self
    }

    /// Caps the number of stored lasso findings.
    pub fn with_max_lassos(mut self, max: usize) -> Self {
        self.max_lassos = max;
        self
    }

    /// Attaches a telemetry handle (counters, phase spans and — when the
    /// handle streams — NDJSON progress events).
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }
}

/// A concrete lasso found by the bounded search: a schedule the
/// adversarial scheduler can repeat forever, with the paper's per-process
/// classification of the resulting infinite history.
#[derive(Debug, Clone)]
pub struct LassoFinding {
    /// The schedule reaching the cycle's entry configuration.
    pub schedule_prefix: Vec<ProcessId>,
    /// The schedule segment the scheduler repeats forever.
    pub schedule_cycle: Vec<ProcessId>,
    /// The induced infinite history `prefix · cycle^ω`.
    pub lasso: InfiniteHistory,
    /// Figure 2 classification of every configured process.
    pub classes: Vec<(ProcessId, ProcessClass)>,
    /// The concrete fault placements on the branch reaching this lasso
    /// (`at_step` indexes into `schedule_prefix · schedule_cycle`,
    /// process steps only). Empty for fault-free branches.
    pub plan: FaultPlan,
}

impl LassoFinding {
    /// The processes this lasso starves.
    pub fn starving(&self) -> Vec<ProcessId> {
        self.with_class(ProcessClass::Starving)
    }

    /// The processes this lasso makes parasitic.
    pub fn parasitic(&self) -> Vec<ProcessId> {
        self.with_class(ProcessClass::Parasitic)
    }

    /// The processes this lasso keeps progressing.
    pub fn progressing(&self) -> Vec<ProcessId> {
        self.with_class(ProcessClass::Progressing)
    }

    fn with_class(&self, class: ProcessClass) -> Vec<ProcessId> {
        self.classes
            .iter()
            .filter(|&&(_, c)| c == class)
            .map(|&(p, _)| p)
            .collect()
    }
}

/// Outcome of a bounded liveness check of one TM.
#[derive(Debug, Clone)]
pub struct LivecheckReport {
    /// The checked TM's name.
    pub tm: String,
    /// The exploration bound used.
    pub depth: usize,
    /// Distinct configurations interned (including frontier nodes).
    pub states: usize,
    /// Edges of the explored graph.
    pub edges: usize,
    /// Scheduler steps executed against a TM (edges walked fresh; with
    /// [`LivecheckConfig::reduce`] or [`LivecheckConfig::parallel`] each
    /// graph transition is executed exactly once, so this equals the
    /// edge count of the expanded subgraph).
    pub steps: usize,
    /// Edge re-walks served by replaying recorded events instead of
    /// executing the TM (0 unless [`LivecheckConfig::reduce`] or
    /// [`LivecheckConfig::parallel`]).
    pub replayed_steps: usize,
    /// Subtree re-expansions avoided by the seen set.
    pub dedup_hits: usize,
    /// Back-edges encountered (cycles, counted with multiplicity).
    pub cycles_detected: usize,
    /// Cycles with no events (blocked shapes; certified via
    /// [`ProcessCycleVerdicts::blocked`], not convertible to lassos).
    pub eventless_cycles: usize,
    /// Cycles rejected by lasso validation — always 0 unless a TM's
    /// fingerprint canonicalization is unsound.
    pub rejected_cycles: usize,
    /// Stored findings (deduplicated, capped at
    /// [`LivecheckConfig::max_lassos`]).
    pub lassos: Vec<LassoFinding>,
    /// Whether findings were dropped by the cap.
    pub truncated: bool,
    /// Certified per-process cycle-existence verdicts.
    pub verdicts: Vec<ProcessCycleVerdicts>,
    /// Fairness-filtered verdicts ([`tm_liveness::certify_fair_cycles`]):
    /// cycle existence restricted to cycles scheduling every live
    /// process infinitely often, separating scheduler-abandoned shapes
    /// (unfair: the plain verdict holds, the fair one does not),
    /// crash-induced starvation (`crash_victim`), and genuinely
    /// TM-induced starvation (fair verdict holds with no crash).
    pub fair_verdicts: Vec<FairProcessVerdicts>,
    /// Bitmask of processes some explored branch crashed (0 without
    /// fault quantification).
    pub crash_injected: u64,
    /// Bitmask of processes some explored branch turned parasitic via a
    /// fault transition (0 without fault quantification).
    pub parasite_injected: u64,
    /// `Some(reason)` when a [`Budget`] cap tripped before the bounded
    /// graph was fully explored: the report is *partial* — counts and
    /// witnesses are sound, but absence claims (including
    /// [`LivecheckReport::lasso_starvation_free`]) cover only the
    /// subgraph actually explored and certify nothing at the bound.
    pub exhausted: Option<String>,
}

impl LivecheckReport {
    /// The certificate the paper's taxonomy calls for: **no** process has
    /// a starving or parasitic cycle anywhere in the explored subgraph.
    /// (Blocked cycles are reported separately: a blocked process is
    /// pending forever but takes no effective steps — the paper's
    /// blocking TMs fail *nonblocking* properties, not starvation
    /// freedom.)
    pub fn lasso_starvation_free(&self) -> bool {
        self.verdicts.iter().all(|v| !v.starving && !v.parasitic)
    }

    /// Processes with a certified starving cycle.
    pub fn starving_processes(&self) -> Vec<ProcessId> {
        self.collect(|v| v.starving)
    }

    /// Processes with a certified parasitic cycle.
    pub fn parasitic_processes(&self) -> Vec<ProcessId> {
        self.collect(|v| v.parasitic)
    }

    /// Processes with a certified blocked cycle.
    pub fn blocked_processes(&self) -> Vec<ProcessId> {
        self.collect(|v| v.blocked)
    }

    /// Processes with a certified progressing cycle.
    pub fn progressing_processes(&self) -> Vec<ProcessId> {
        self.collect(|v| v.progressing)
    }

    /// The fairness-filtered counterpart of
    /// [`LivecheckReport::lasso_starvation_free`]: no process has a
    /// starving or parasitic cycle along which every *live* process is
    /// scheduled infinitely often. Weaker claims than the plain
    /// certificate (fair cycles are a subset), so a TM can fail the
    /// plain certificate through scheduler-abandonment shapes alone and
    /// still pass this one.
    pub fn fair_starvation_free(&self) -> bool {
        self.fair_verdicts
            .iter()
            .all(|v| !v.starving && !v.parasitic)
    }

    /// Processes with a certified *fair* starving cycle.
    pub fn fair_starving_processes(&self) -> Vec<ProcessId> {
        self.fair_verdicts
            .iter()
            .filter(|v| v.starving)
            .map(|v| v.process)
            .collect()
    }

    /// Processes whose fair starving/blocked witness runs through a
    /// crash: the Theorem-1 corollary shape (a crashed peer starves or
    /// blocks them under every fair schedule of the witness component).
    pub fn crash_victims(&self) -> Vec<ProcessId> {
        self.fair_verdicts
            .iter()
            .filter(|v| v.crash_victim)
            .map(|v| v.process)
            .collect()
    }

    fn collect(&self, f: impl Fn(&ProcessCycleVerdicts) -> bool) -> Vec<ProcessId> {
        self.verdicts
            .iter()
            .filter(|v| f(v))
            .map(|v| v.process)
            .collect()
    }
}

/// What one scheduler step did, for edge labelling.
#[derive(Debug, Clone, Copy, Default)]
struct StepFacts {
    events: u8,
    committed: bool,
    aborted: bool,
    tryc: bool,
}

impl StepFacts {
    /// Derives the edge label from the kernel's step record.
    fn of(record: &StepRecord) -> StepFacts {
        let resp = record.response();
        StepFacts {
            events: record.event_count(),
            committed: resp == Some(tm_core::Response::Committed),
            aborted: resp == Some(tm_core::Response::Aborted),
            tryc: record.invoked_tryc(),
        }
    }
}

/// What kind of scheduler transition an edge is: a process step, or one
/// of the fault transitions a [`FaultConfig`] adds. Fault edges carry no
/// events, leave the TM untouched, and — because fault masks only grow
/// along edges while node identity includes them — can never lie on a
/// cycle, so they are excluded from the SCC certification graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeKind {
    Step,
    Crash,
    Parasite,
}

/// One edge of the explored configuration graph.
#[derive(Debug, Clone, Copy)]
struct Edge {
    target: u32,
    process: u8,
    kind: EdgeKind,
    facts: StepFacts,
    /// The (at most two) events the step produced, recorded so
    /// reduced-mode re-walks can replay the edge — history bytes, client
    /// transitions and lasso findings included — without touching a TM.
    events: [Option<Event>; 2],
}

/// One interned configuration.
#[derive(Default)]
struct Node {
    /// Largest remaining budget this node has been expanded with
    /// (`None` = frontier: interned but never expanded).
    budget: Option<usize>,
    /// Outgoing edges, recorded on first expansion (stepping is
    /// deterministic, so re-expansions would record the same edges).
    edges: Vec<Edge>,
    /// Crashed-process mask of this configuration (0 without fault
    /// quantification) — the per-node input the fairness certificates
    /// need to exempt dead processes.
    crashed: u64,
    /// Reduced mode only: the configuration's TM, parked while the node
    /// is an unexpanded frontier so a later, deeper re-walk can expand
    /// it without re-executing the path to it. Taken (and dropped) on
    /// first expansion — after that the recorded edges carry everything.
    parked_tm: Option<BoxedTm>,
}

/// A node currently on the DFS path.
struct Frame {
    history_len: usize,
    sched_len: usize,
}

/// The liveness checker's instantiation of the kernel's [`SearchSpace`]:
/// a graph-walk configuration — client cursors, the growing history and
/// schedule — plus the parasitic-process mask the stepper needs. (No
/// certifier: liveness is decided on the recorded graph, not per
/// history prefix.)
struct GraphSpace {
    clients: Vec<Client>,
    history: Vec<Event>,
    sched: Vec<usize>,
    /// The *static* parasitic mask ([`LivecheckConfig::with_parasitic`]);
    /// fault-induced parasitism lives in [`GraphSpace::fstate`] and the
    /// stepper honours the union of both.
    parasitic: u64,
    /// Crash/parasitic masks of the current branch, mutated only along
    /// fault edges (saved/restored by the walker — process steps and
    /// [`GraphSpace::rewind`] never touch it).
    fstate: FaultState,
    /// The fault transitions taken along the current branch, in order —
    /// the concrete [`FaultPlan`] a lasso on this branch reports.
    fault_log: Vec<Fault>,
    telemetry: Telemetry,
}

/// Everything one [`GraphSpace`] step mutates, for O(1) backtrack.
struct GraphMark {
    history_len: usize,
    client: ClientMark,
}

impl GraphSpace {
    fn new(scripts: &[ClientScript], parasitic: u64, telemetry: Telemetry) -> Self {
        GraphSpace {
            clients: scripts.iter().cloned().map(Client::new).collect(),
            history: Vec::new(),
            sched: Vec::new(),
            parasitic,
            fstate: FaultState::none(),
            fault_log: Vec::new(),
            telemetry,
        }
    }

    /// Whether process `k` currently steps parasitically: statically
    /// configured, or turned by a fault transition on this branch.
    fn is_parasitic(&self, k: usize) -> bool {
        (self.parasitic | self.fstate.parasitic) & (1 << k) != 0
    }

    /// Reduced-mode re-walk of one recorded edge: replays its events
    /// into the history and the client — identically to re-executing
    /// the step, since stepping is deterministic — without touching a
    /// TM. Mirrors [`GraphSpace::step`]'s client handling, including
    /// the parasitic loop rule.
    fn replay(&mut self, k: usize, events: &[Option<Event>; 2]) {
        self.sched.push(k);
        if let Some(first) = events[0] {
            if first.is_invocation() {
                if self.is_parasitic(k)
                    && self.clients[k].next_invocation() == Invocation::TryCommit
                {
                    self.clients[k].restart_transaction();
                }
                debug_assert_eq!(
                    first.as_invocation(),
                    Some(self.clients[k].next_invocation())
                );
            }
            for event in events.iter().flatten() {
                self.history.push(*event);
                if let Some(resp) = event.as_response() {
                    self.clients[k].observe(resp);
                }
            }
        }
    }
}

impl SearchSpace for GraphSpace {
    type Mark = GraphMark;

    fn width(&self) -> usize {
        self.clients.len()
    }

    fn mark(&mut self, k: usize) -> GraphMark {
        GraphMark {
            history_len: self.history.len(),
            client: self.clients[k].mark(),
        }
    }

    fn step(&mut self, tm: &mut BoxedTm, k: usize) -> StepRecord {
        self.sched.push(k);
        let parasitic = self.is_parasitic(k);
        let started = self.telemetry.timer_start();
        let record = step_process(tm, &mut self.clients, k, parasitic, &mut self.history);
        self.telemetry.timer_stop(Timer::Step, started);
        record
    }

    fn rewind(&mut self, k: usize, mark: GraphMark) {
        self.sched.pop();
        self.history.truncate(mark.history_len);
        self.clients[k].restore(mark.client);
    }

    fn config_key(&self, tm: &BoxedTm) -> Option<(u64, u64)> {
        tm.state_digest()
            .map(|d| (d, clients_digest(&self.clients)))
    }
}

struct Search<'a> {
    config: &'a LivecheckConfig,
    space: GraphSpace,
    frames: Vec<Frame>,
    on_path: HashMap<u32, usize>,
    /// Node identity: `(TM digest, clients digest, fault-state key)` —
    /// the same TM/client state under different crash/parasitic masks
    /// has different futures and must be a different node.
    ids: Interner<(u64, u64, u64)>,
    nodes: Vec<Node>,
    pool: TmPool,
    reduce: bool,
    /// The run's fault quantification, crash budget pre-clamped to n−1.
    faults: FaultConfig,
    /// The run's budget meter (shared with the parallel frontier).
    meter: &'a BudgetMeter,
    steps: usize,
    replayed: usize,
    dedup_hits: usize,
    cycles_detected: usize,
    eventless_cycles: usize,
    rejected_cycles: usize,
    /// Fault transitions exercised, as process bitmasks (for the
    /// `fault_injected` events and the report).
    crash_injected: u64,
    parasite_injected: u64,
    faults_injected: u64,
    seen_cycles: HashSet<u64>,
    lassos: Vec<LassoFinding>,
    truncated: bool,
    /// A fork of the root TM plus the scripts, kept only when the
    /// telemetry handle streams: each stored lasso finding is replayed
    /// from here (out of band, off the counters) to emit its `trace`
    /// event adjacent to the `lasso_found` event.
    trace_seed: Option<(BoxedTm, Vec<ClientScript>)>,
}

impl Search<'_> {
    fn key_of(&self, tm: &BoxedTm) -> (u64, u64, u64) {
        let (tm_digest, clients) = self
            .space
            .config_key(tm)
            .expect("livecheck requires a fingerprinting TM (SteppedTm::state_digest)");
        (tm_digest, clients, self.space.fstate.key())
    }

    fn intern(&mut self, key: (u64, u64, u64)) -> u32 {
        let (id, new) = self.ids.intern(key);
        if new {
            self.nodes.push(Node {
                crashed: self.space.fstate.crashed,
                ..Node::default()
            });
        }
        id
    }

    /// The fault transitions available from the current configuration,
    /// in canonical order (crashes ascending, then parasitic turns
    /// ascending) — empty in fault-free runs. Statically-parasitic
    /// processes get no parasitic fault edge: the turn would change the
    /// node identity without changing any future behaviour.
    fn fault_edges(&self) -> Vec<Fault> {
        let mut out = Vec::new();
        if !self.faults.enabled() {
            return out;
        }
        let at_step = self.space.sched.len();
        let n = self.space.width();
        for k in 0..n {
            if self.space.fstate.can_crash(&self.faults, k) {
                let process = ProcessId(k);
                out.push(Fault::Crash { process, at_step });
            }
        }
        for k in 0..n {
            if self.space.fstate.can_parasite(&self.faults, k)
                && self.space.parasitic & (1 << k) == 0
            {
                let process = ProcessId(k);
                out.push(Fault::Parasitic { process, at_step });
            }
        }
        out
    }

    /// Expands `id` (not on the path) with `remaining ≥ 1` budget.
    /// Fresh expansions (recorded edges absent) consume the given TM and
    /// return it for recycling; reduced-mode re-expansions replay the
    /// recorded edges and need no TM at all.
    fn expand(&mut self, tm: Option<BoxedTm>, id: u32, remaining: usize) -> Option<BoxedTm> {
        // Budget gate before any expansion: once the meter trips, the
        // walk unwinds (the node stays an unexpanded frontier) and the
        // run reports a partial result.
        if !self.meter.note_state() {
            return tm;
        }
        let replay = self.reduce && !self.nodes[id as usize].edges.is_empty();
        let record = self.nodes[id as usize].edges.is_empty();
        self.nodes[id as usize].budget = Some(remaining);
        self.on_path.insert(id, self.frames.len());
        self.frames.push(Frame {
            history_len: self.space.history.len(),
            sched_len: self.space.sched.len(),
        });
        let tm = if replay {
            for idx in 0..self.nodes[id as usize].edges.len() {
                let edge = self.nodes[id as usize].edges[idx];
                self.replay_edge(edge, remaining);
            }
            tm
        } else {
            let tm = tm.expect("fresh expansion requires the configuration's TM");
            let n = self.space.width();
            // Live process steps first (ascending), then fault edges —
            // the canonical child order both the sequential and the
            // level-parallel search produce. The last child overall
            // consumes the parent's box instead of forking.
            let alive: Vec<usize> = (0..n)
                .filter(|&k| !self.space.fstate.is_crashed(k))
                .collect();
            let fault_edges = self.fault_edges();
            let total = alive.len() + fault_edges.len();
            let mut kept = None;
            let mut slot = Some(tm);
            for (i, &k) in alive.iter().enumerate() {
                let is_last = i + 1 == total;
                let child = if is_last {
                    slot.take().expect("the last child consumes the box")
                } else {
                    self.pool
                        .fork_child(slot.as_ref().expect("box still owned"))
                };
                let recycled = self.child_step(child, k, id, remaining, record);
                if let Some(recycled) = recycled {
                    if is_last {
                        kept = Some(recycled);
                    } else {
                        self.pool.put_back(recycled);
                    }
                }
            }
            let alive_count = alive.len();
            for (j, fault) in fault_edges.into_iter().enumerate() {
                let is_last = alive_count + j + 1 == total;
                let child = if is_last {
                    slot.take().expect("the last child consumes the box")
                } else {
                    self.pool
                        .fork_child(slot.as_ref().expect("box still owned"))
                };
                let recycled = self.fault_step(child, fault, id, remaining, record);
                if let Some(recycled) = recycled {
                    if is_last {
                        kept = Some(recycled);
                    } else {
                        self.pool.put_back(recycled);
                    }
                }
            }
            kept
        };
        self.frames.pop();
        self.on_path.remove(&id);
        tm
    }

    /// Steps process `k` from the configuration `parent`, classifies the
    /// resulting edge, and recurses unless the child closes a cycle, is
    /// already explored at this budget, or sits at the depth bound.
    /// Returns the stepped TM for recycling — or `None` in reduced mode
    /// when the box was parked on a new frontier node instead.
    fn child_step(
        &mut self,
        mut tm: BoxedTm,
        k: usize,
        parent: u32,
        remaining: usize,
        record: bool,
    ) -> Option<BoxedTm> {
        let mark = self.space.mark(k);
        let rec = self.space.step(&mut tm, k);
        self.steps += 1;
        let key = self.key_of(&tm);
        let child = self.intern(key);
        if record {
            self.nodes[parent as usize].edges.push(Edge {
                target: child,
                process: u8::try_from(k).expect("≤ 64 processes"),
                kind: EdgeKind::Step,
                facts: StepFacts::of(&rec),
                events: rec.events(ProcessId(k)),
            });
        }
        let mut tm = Some(tm);
        let mut expanded = false;
        if let Some(&frame) = self.on_path.get(&child) {
            self.record_cycle(frame);
        } else if remaining > 1 {
            let explored = self.nodes[child as usize]
                .budget
                .is_some_and(|b| b >= remaining - 1);
            if explored {
                self.dedup_hits += 1;
            } else {
                // The recursion may itself park the box on a deeper
                // frontier node (reduced mode), returning None.
                tm = self.expand(tm, child, remaining - 1);
                expanded = true;
            }
        }
        self.space.rewind(k, mark);
        // Reduced mode: park the TM of a still-unexpanded frontier child
        // so a later, deeper re-walk can expand it from the recorded
        // graph without re-executing the path to it.
        if self.reduce && !expanded {
            let node = &mut self.nodes[child as usize];
            if node.edges.is_empty()
                && node.parked_tm.is_none()
                && !self.on_path.contains_key(&child)
            {
                node.parked_tm = tm.take();
            }
        }
        tm
    }

    /// Takes one fault transition from the configuration `parent`: the
    /// TM and the clients are untouched (the box forks unchanged; only
    /// the fault masks move), so the edge carries no events and — since
    /// masks grow strictly along edges while node identity includes
    /// them — can never close a cycle.
    fn fault_step(
        &mut self,
        tm: BoxedTm,
        fault: Fault,
        parent: u32,
        remaining: usize,
        record: bool,
    ) -> Option<BoxedTm> {
        let saved = self.space.fstate;
        let k = fault.process().index();
        let kind = match fault {
            Fault::Crash { .. } => {
                self.space.fstate.crash(k);
                self.crash_injected |= 1 << k;
                EdgeKind::Crash
            }
            Fault::Parasitic { .. } => {
                self.space.fstate.parasite(k);
                self.parasite_injected |= 1 << k;
                EdgeKind::Parasite
            }
        };
        self.space.fault_log.push(fault);
        self.steps += 1;
        self.faults_injected += 1;
        let key = self.key_of(&tm);
        let child = self.intern(key);
        if record {
            self.nodes[parent as usize].edges.push(Edge {
                target: child,
                process: u8::try_from(k).expect("≤ 64 processes"),
                kind,
                facts: StepFacts::default(),
                events: [None, None],
            });
        }
        debug_assert!(
            !self.on_path.contains_key(&child),
            "fault masks grow strictly along edges — a fault edge cannot close a cycle"
        );
        let mut tm = Some(tm);
        let mut expanded = false;
        if remaining > 1 {
            let explored = self.nodes[child as usize]
                .budget
                .is_some_and(|b| b >= remaining - 1);
            if explored {
                self.dedup_hits += 1;
            } else {
                tm = self.expand(tm, child, remaining - 1);
                expanded = true;
            }
        }
        self.space.fault_log.pop();
        self.space.fstate = saved;
        if self.reduce && !expanded {
            let node = &mut self.nodes[child as usize];
            if node.edges.is_empty()
                && node.parked_tm.is_none()
                && !self.on_path.contains_key(&child)
            {
                node.parked_tm = tm.take();
            }
        }
        tm
    }

    /// Reduced-mode re-walk of one recorded edge: replays its events via
    /// [`GraphSpace::replay`], detects cycles, and recurses using parked
    /// TMs only where a frontier node genuinely needs its first
    /// expansion.
    fn replay_edge(&mut self, edge: Edge, remaining: usize) {
        let k = edge.process as usize;
        let child = edge.target;
        match edge.kind {
            EdgeKind::Step => {
                let mark = self.space.mark(k);
                self.space.replay(k, &edge.events);
                self.replayed += 1;
                if let Some(&frame) = self.on_path.get(&child) {
                    self.record_cycle(frame);
                } else if remaining > 1 {
                    self.replay_descend(child, remaining);
                }
                self.space.rewind(k, mark);
            }
            EdgeKind::Crash | EdgeKind::Parasite => {
                // Re-walk of a recorded fault transition: restore the
                // masks the original walk applied; no events, no cycle
                // check (fault edges never close cycles).
                let saved = self.space.fstate;
                let fault = match edge.kind {
                    EdgeKind::Crash => {
                        self.space.fstate.crash(k);
                        Fault::Crash {
                            process: ProcessId(k),
                            at_step: self.space.sched.len(),
                        }
                    }
                    _ => {
                        self.space.fstate.parasite(k);
                        Fault::Parasitic {
                            process: ProcessId(k),
                            at_step: self.space.sched.len(),
                        }
                    }
                };
                self.space.fault_log.push(fault);
                self.replayed += 1;
                if remaining > 1 {
                    self.replay_descend(child, remaining);
                }
                self.space.fault_log.pop();
                self.space.fstate = saved;
            }
        }
    }

    /// The recursion step shared by both replay arms: dedup against the
    /// recorded budget, or expand the child from its parked TM. A node
    /// with neither parked TM nor recorded edges is a budget-truncated
    /// frontier from the tripped original walk — leave it unexpanded;
    /// the report is partial either way.
    fn replay_descend(&mut self, child: u32, remaining: usize) {
        let explored = self.nodes[child as usize]
            .budget
            .is_some_and(|b| b >= remaining - 1);
        if explored {
            self.dedup_hits += 1;
            return;
        }
        let parked = self.nodes[child as usize].parked_tm.take();
        if parked.is_none() && self.nodes[child as usize].edges.is_empty() {
            return;
        }
        if let Some(recycled) = self.expand(parked, child, remaining - 1) {
            self.pool.put_back(recycled);
        }
    }

    /// The DFS stepped back into the configuration at `frames[frame]`:
    /// everything since is a repeatable cycle.
    fn record_cycle(&mut self, frame: usize) {
        self.cycles_detected += 1;
        let frame = &self.frames[frame];
        let (prefix, cycle) = self.space.history.split_at(frame.history_len);
        if cycle.is_empty() {
            // Blocked shape: steps without events. Certified by the SCC
            // pass; there is no event cycle to classify.
            self.eventless_cycles += 1;
            return;
        }
        let sched_cycle = &self.space.sched[frame.sched_len..];
        if !self.seen_cycles.insert(digest_of(&(cycle, sched_cycle))) {
            return;
        }
        if self.lassos.len() >= self.config.max_lassos {
            self.truncated = true;
            return;
        }
        match lasso_from_cycle(prefix, cycle) {
            Ok(lasso) => {
                let classes = (0..self.space.width())
                    .map(|k| (ProcessId(k), classify(&lasso, ProcessId(k))))
                    .collect();
                let finding = LassoFinding {
                    schedule_prefix: self.space.sched[..frame.sched_len]
                        .iter()
                        .copied()
                        .map(ProcessId)
                        .collect(),
                    schedule_cycle: sched_cycle.iter().copied().map(ProcessId).collect(),
                    plan: FaultPlan::from_faults(self.space.fault_log.clone()),
                    lasso,
                    classes,
                };
                if self.config.telemetry.streams() {
                    let procs = |ps: &[ProcessId]| {
                        Json::Arr(ps.iter().map(|p| Json::Int(p.0 as i64)).collect())
                    };
                    let mut fields = vec![
                        (
                            "prefix_len",
                            Json::Int(finding.schedule_prefix.len() as i64),
                        ),
                        ("cycle_len", Json::Int(finding.schedule_cycle.len() as i64)),
                        ("starving", procs(&finding.starving())),
                        ("parasitic", procs(&finding.parasitic())),
                    ];
                    if !finding.plan.is_empty() {
                        fields.push(("faults", finding.plan.to_json()));
                    }
                    self.config.telemetry.event("lasso_found", &fields);
                    // The witness timeline: replay prefix + cycle from a
                    // fork of the root, one `trace` event per stored
                    // lasso, adjacent to its `lasso_found` event.
                    if let Some((root, scripts)) = &self.trace_seed {
                        let mut schedule = finding.schedule_prefix.clone();
                        schedule.extend_from_slice(&finding.schedule_cycle);
                        emit_trace(
                            &self.config.telemetry,
                            &TraceWitness {
                                engine: "livecheck",
                                kind: "lasso",
                                idx: self.lassos.len(),
                                cycle_start: Some(finding.schedule_prefix.len()),
                            },
                            root.fork(),
                            scripts,
                            self.config.parasitic,
                            &finding.plan,
                            &schedule,
                        );
                    }
                }
                self.lassos.push(finding);
            }
            Err(_) => self.rejected_cycles += 1,
        }
    }

    /// Assembles the report: counters, findings, and the SCC-certified
    /// verdicts (fanned over the rayon pool when `parallel`).
    fn into_report(mut self, tm: String, depth: usize, parallel: bool) -> LivecheckReport {
        // The pool normally flushes its fork tallies at drop, which is
        // after the counter_snapshot below — flush now so the emitted
        // snapshot carries the complete run.
        self.pool.flush_counters();
        let processes = self.space.width();
        let edge_count: usize = self.nodes.iter().map(|n| n.edges.len()).sum();
        // The certification graph keeps process steps only: fault masks
        // grow strictly along fault edges while node identity includes
        // them, so a fault edge can never lie on a cycle — dropping them
        // here (node count preserved) changes no certificate and keeps
        // every SCC at a constant fault state.
        let graph: Vec<Vec<CycleEdge>> = self
            .nodes
            .iter()
            .map(|node| {
                node.edges
                    .iter()
                    .filter(|e| e.kind == EdgeKind::Step)
                    .map(|e| CycleEdge {
                        target: e.target,
                        process: e.process,
                        events: e.facts.events,
                        committed: e.facts.committed,
                        aborted: e.facts.aborted,
                        tryc: e.facts.tryc,
                    })
                    .collect()
            })
            .collect();
        let telemetry = self.config.telemetry.clone();
        let (verdicts, fair_verdicts) = {
            let _span = telemetry.phase("livecheck", "scc_certify");
            let verdicts = if parallel {
                tm_liveness::certify_cycles_parallel(&graph, processes)
            } else {
                tm_liveness::certify_cycles(&graph, processes)
            };
            let crashed: Vec<u64> = self.nodes.iter().map(|n| n.crashed).collect();
            let fair = tm_liveness::certify_fair_cycles(&graph, &crashed, processes);
            (verdicts, fair)
        };
        let report = LivecheckReport {
            tm,
            depth,
            states: self.nodes.len(),
            edges: edge_count,
            steps: self.steps,
            replayed_steps: self.replayed,
            dedup_hits: self.dedup_hits,
            cycles_detected: self.cycles_detected,
            eventless_cycles: self.eventless_cycles,
            rejected_cycles: self.rejected_cycles,
            lassos: self.lassos,
            truncated: self.truncated,
            verdicts,
            fair_verdicts,
            crash_injected: self.crash_injected,
            parasite_injected: self.parasite_injected,
            exhausted: self.meter.exhausted().map(str::to_string),
        };
        // The deterministic end-of-run flush: every count below comes
        // from the report itself (fixed properties of the bounded
        // graph), so the snapshot is thread-count-invariant.
        telemetry.add(Counter::GraphNodes, report.states as u64);
        telemetry.add(Counter::GraphEdges, report.edges as u64);
        telemetry.add(Counter::StepsExecuted, report.steps as u64);
        telemetry.add(Counter::StepsReplayed, report.replayed_steps as u64);
        telemetry.add(Counter::MemoHits, report.dedup_hits as u64);
        telemetry.add(Counter::CyclesDetected, report.cycles_detected as u64);
        telemetry.add(Counter::EventlessCycles, report.eventless_cycles as u64);
        telemetry.add(Counter::LassosFound, report.lassos.len() as u64);
        telemetry.add(Counter::FaultsInjected, self.faults_injected);
        if telemetry.streams() {
            // One `fault_injected` event per distinct fault transition
            // the search exercised (zero in fault-free runs — the stream
            // stays byte-identical).
            for k in 0..processes {
                if report.crash_injected & (1 << k) != 0 {
                    telemetry.event(
                        "fault_injected",
                        &[
                            ("engine", Json::str("livecheck")),
                            ("kind", Json::str("crash")),
                            ("process", Json::Int(k as i64)),
                        ],
                    );
                }
            }
            for k in 0..processes {
                if report.parasite_injected & (1 << k) != 0 {
                    telemetry.event(
                        "fault_injected",
                        &[
                            ("engine", Json::str("livecheck")),
                            ("kind", Json::str("parasite")),
                            ("process", Json::Int(k as i64)),
                        ],
                    );
                }
            }
            telemetry.heartbeat_now(
                "livecheck",
                &[
                    ("states", Json::Int(report.states as i64)),
                    ("steps", Json::Int(report.steps as i64)),
                    ("lassos", Json::Int(report.lassos.len() as i64)),
                    (
                        "states_per_sec",
                        Json::Num(report.states as f64 / telemetry.elapsed_secs().max(1e-9)),
                    ),
                ],
            );
            telemetry.emit_counters(&report.tm);
            // A tripped budget downgrades the verdict: `partial` + the
            // reason instead of a `starvation_free` claim the truncated
            // search cannot back.
            if let Some(reason) = &report.exhausted {
                telemetry.event(
                    "budget_exhausted",
                    &[
                        ("engine", Json::str("livecheck")),
                        ("reason", Json::str(reason.as_str())),
                    ],
                );
                telemetry.event(
                    "verdict",
                    &[
                        ("engine", Json::str("livecheck")),
                        ("tm", Json::str(report.tm.as_str())),
                        ("partial", Json::Bool(true)),
                        ("reason", Json::str(reason.as_str())),
                        ("states", Json::Int(report.states as i64)),
                        ("edges", Json::Int(report.edges as i64)),
                        ("lassos", Json::Int(report.lassos.len() as i64)),
                        ("depth", Json::Int(report.depth as i64)),
                    ],
                );
            } else {
                telemetry.event(
                    "verdict",
                    &[
                        ("engine", Json::str("livecheck")),
                        ("tm", Json::str(report.tm.as_str())),
                        (
                            "starvation_free",
                            Json::Bool(report.lasso_starvation_free()),
                        ),
                        ("states", Json::Int(report.states as i64)),
                        ("edges", Json::Int(report.edges as i64)),
                        ("lassos", Json::Int(report.lassos.len() as i64)),
                        ("depth", Json::Int(report.depth as i64)),
                    ],
                );
            }
        }
        report
    }
}

fn fresh_search<'a>(
    config: &'a LivecheckConfig,
    scripts: &[ClientScript],
    pool: TmPool,
    reduce: bool,
    faults: FaultConfig,
    meter: &'a BudgetMeter,
) -> Search<'a> {
    Search {
        config,
        space: GraphSpace::new(scripts, config.parasitic, config.telemetry.clone()),
        frames: Vec::new(),
        on_path: HashMap::new(),
        ids: Interner::new(),
        nodes: Vec::new(),
        pool,
        reduce,
        faults,
        meter,
        steps: 0,
        replayed: 0,
        dedup_hits: 0,
        cycles_detected: 0,
        eventless_cycles: 0,
        rejected_cycles: 0,
        crash_injected: 0,
        parasite_injected: 0,
        faults_injected: 0,
        seen_cycles: HashSet::new(),
        lassos: Vec::new(),
        truncated: false,
        trace_seed: None,
    }
}

/// What one parallel frontier expansion reports for one successor: the
/// configuration key (for the deterministic merge's interning), the edge
/// label and events, the client cursors a worker needs to expand the
/// child next level, the fault state the successor lives in, and the
/// stepped TM box (kept only when the child is new).
struct ChildRecord {
    key: (u64, u64, u64),
    process: u8,
    kind: EdgeKind,
    facts: StepFacts,
    events: [Option<Event>; 2],
    cursors: Vec<(usize, Option<Value>)>,
    fstate: FaultState,
    tm: BoxedTm,
}

/// A configuration on the parallel frontier: its interned id, its TM
/// box, the client cursors and fault state that complete the
/// configuration, and spare boxes recycled from the previous level's
/// duplicate children (so frontier forks go through the allocation-free
/// refork fast path).
struct LevelNode {
    id: u32,
    tm: BoxedTm,
    cursors: Vec<(usize, Option<Value>)>,
    fstate: FaultState,
    spares: Vec<BoxedTm>,
}

/// Expands one frontier configuration: executes all live successor
/// steps (the only TM work in the parallel search — each graph
/// transition is executed exactly once, here) and appends the available
/// fault transitions, returning the records in the canonical
/// process-steps-then-faults order for the deterministic merge.
fn expand_level_node(
    scripts: &[ClientScript],
    parasitic: u64,
    faults: FaultConfig,
    recycle: bool,
    telemetry: &Telemetry,
    node: LevelNode,
) -> Vec<ChildRecord> {
    let mut space = GraphSpace::new(scripts, parasitic, telemetry.clone());
    for (client, cursor) in space.clients.iter_mut().zip(&node.cursors) {
        client.set_cursor(*cursor);
    }
    space.fstate = node.fstate;
    let n = space.width();
    let mut pool = TmPool::new(recycle).instrument(telemetry);
    for spare in node.spares {
        pool.put_back(spare);
    }
    let tm = node.tm;
    let digest = |space: &mut GraphSpace, tm: &BoxedTm| {
        let (d, c) = space
            .config_key(tm)
            .expect("livecheck requires a fingerprinting TM (SteppedTm::state_digest)");
        (d, c)
    };
    // Same transition order the sequential search produces: live process
    // steps ascending, then crashes ascending, then parasitic turns
    // ascending.
    let alive: Vec<usize> = (0..n).filter(|&k| !space.fstate.is_crashed(k)).collect();
    let mut fault_kinds: Vec<(usize, EdgeKind)> = Vec::new();
    if faults.enabled() {
        for k in 0..n {
            if space.fstate.can_crash(&faults, k) {
                fault_kinds.push((k, EdgeKind::Crash));
            }
        }
        for k in 0..n {
            if space.fstate.can_parasite(&faults, k) && parasitic & (1 << k) == 0 {
                fault_kinds.push((k, EdgeKind::Parasite));
            }
        }
    }
    let total = alive.len() + fault_kinds.len();
    let mut out = Vec::with_capacity(total);
    let mut slot = Some(tm);
    let step_child = |space: &mut GraphSpace, mut tm: BoxedTm, k: usize| {
        let mark = space.mark(k);
        let rec = space.step(&mut tm, k);
        let (d, c) = digest(space, &tm);
        let cursors = space.clients.iter().map(Client::cursor).collect();
        let fstate = space.fstate;
        space.rewind(k, mark);
        ChildRecord {
            key: (d, c, fstate.key()),
            process: u8::try_from(k).expect("≤ 64 processes"),
            kind: EdgeKind::Step,
            facts: StepFacts::of(&rec),
            events: rec.events(ProcessId(k)),
            cursors,
            fstate,
            tm,
        }
    };
    for (i, &k) in alive.iter().enumerate() {
        let child = if i + 1 == total {
            // The last child consumes the frontier node's TM: no fork.
            slot.take().expect("the last child consumes the box")
        } else {
            pool.fork_child(slot.as_ref().expect("box still owned"))
        };
        out.push(step_child(&mut space, child, k));
    }
    for (j, (k, kind)) in fault_kinds.into_iter().enumerate() {
        let child = if alive.len() + j + 1 == total {
            slot.take().expect("the last child consumes the box")
        } else {
            pool.fork_child(slot.as_ref().expect("box still owned"))
        };
        // A fault transition leaves TM and clients untouched: fork the
        // box, move only the fault masks.
        let saved = space.fstate;
        match kind {
            EdgeKind::Crash => space.fstate.crash(k),
            _ => space.fstate.parasite(k),
        }
        let (d, c) = digest(&mut space, &child);
        let cursors = space.clients.iter().map(Client::cursor).collect();
        let fstate = space.fstate;
        space.fstate = saved;
        out.push(ChildRecord {
            key: (d, c, fstate.key()),
            process: u8::try_from(k).expect("≤ 64 processes"),
            kind,
            facts: StepFacts::default(),
            events: [None, None],
            cursors,
            fstate,
            tm: child,
        });
    }
    out
}

/// The parallel lasso search (see the module docs): level-synchronous
/// parallel graph construction with a deterministic breadth-first merge,
/// then a sequential replay DFS over the recorded graph for lassos, and
/// the parallel SCC certificates.
fn livecheck_parallel(
    tm: BoxedTm,
    scripts: &[ClientScript],
    config: &LivecheckConfig,
    faults: FaultConfig,
    meter: &BudgetMeter,
    name: String,
) -> LivecheckReport {
    // Phase 1: build the canonical bounded graph — nodes at BFS distance
    // ≤ depth, edges of nodes at distance ≤ depth−1 (exactly the
    // subgraph the sequential budget-DFS explores). Workers expand whole
    // levels concurrently; the merge interns successors in parent-then-
    // transition order, so ids are the canonical BFS discovery order.
    let mut search = fresh_search(config, scripts, TmPool::disabled(), true, faults, meter);
    if config.telemetry.streams() {
        search.trace_seed = Some((tm.fork(), scripts.to_vec()));
    }
    let recycle = TmPool::for_tm(&tm).recycles();
    let root_key = search.key_of(&tm);
    let root = search.intern(root_key);
    let root_cursors = search.space.clients.iter().map(Client::cursor).collect();
    let n = scripts.len();
    let telemetry = config.telemetry.clone();
    let mut steps = 0usize;
    let mut level = vec![LevelNode {
        id: root,
        tm,
        cursors: root_cursors,
        fstate: FaultState::none(),
        spares: Vec::new(),
    }];
    // Boxes of already-interned duplicate children, recycled into the
    // next level's expansions (each needs up to n−1 forks) instead of
    // being dropped — the frontier's analogue of the DFS spare pool.
    let mut spare_pool: Vec<BoxedTm> = Vec::new();
    let parasitic = config.parasitic;
    {
        let _span = telemetry.phase("livecheck", "graph_build");
        for _dist in 0..config.depth {
            // A tripped budget stops the level loop between levels: the
            // graph built so far stays canonical (whole levels only) and
            // the run degrades to a partial report.
            if level.is_empty() || !meter.within() {
                break;
            }
            telemetry.add(Counter::FrontierSplits, 1);
            telemetry.add(Counter::FrontierItems, level.len() as u64);
            let parents: Vec<u32> = level.iter().map(|node| node.id).collect();
            let expansions = frontier::distribute_isolated(level, |node| {
                expand_level_node(scripts, parasitic, faults, recycle, &telemetry, node)
            });
            level = Vec::new();
            for (parent, children) in parents.into_iter().zip(expansions) {
                let Some(children) = children else {
                    // The worker expanding this parent panicked: keep
                    // every other expansion, mark the run partial.
                    meter.trip_external();
                    continue;
                };
                for child in children {
                    steps += 1;
                    match child.kind {
                        EdgeKind::Step => {}
                        EdgeKind::Crash => {
                            search.crash_injected |= 1 << child.process;
                            search.faults_injected += 1;
                        }
                        EdgeKind::Parasite => {
                            search.parasite_injected |= 1 << child.process;
                            search.faults_injected += 1;
                        }
                    }
                    let (cid, new) = search.ids.intern(child.key);
                    if new {
                        meter.note_state();
                        search.nodes.push(Node {
                            crashed: child.fstate.crashed,
                            ..Node::default()
                        });
                        let take = spare_pool.len().min(n.saturating_sub(1));
                        level.push(LevelNode {
                            id: cid,
                            tm: child.tm,
                            cursors: child.cursors,
                            fstate: child.fstate,
                            spares: spare_pool.split_off(spare_pool.len() - take),
                        });
                    } else if recycle {
                        spare_pool.push(child.tm);
                    }
                    search.nodes[parent as usize].edges.push(Edge {
                        target: cid,
                        process: child.process,
                        kind: child.kind,
                        facts: child.facts,
                        events: child.events,
                    });
                }
            }
            telemetry.heartbeat("livecheck", || {
                let states = search.nodes.len();
                let mut fields = vec![
                    ("states", Json::Int(states as i64)),
                    ("frontier", Json::Int(level.len() as i64)),
                    ("steps", Json::Int(steps as i64)),
                    (
                        "states_per_sec",
                        Json::Num(states as f64 / telemetry.elapsed_secs().max(1e-9)),
                    ),
                ];
                if search.crash_injected != 0 {
                    fields.push((
                        "crashed",
                        Json::Int(i64::from(search.crash_injected.count_ones())),
                    ));
                }
                fields
            });
        }
    }
    // Phase 2: replay the sequential DFS over the recorded graph (every
    // edge walk is a replay — no TM work), discovering cycles in the
    // sequential order. Counter bookkeeping: `steps` is phase 1's
    // executed transitions (= the reduced sequential search's `steps`);
    // the replay count minus those once-executed edges is what the
    // reduced sequential search reports as `replayed_steps`.
    {
        let _span = telemetry.phase("livecheck", "lasso_scan");
        search.expand(None, root, config.depth);
    }
    debug_assert!(
        search.replayed >= steps || meter.exhausted().is_some(),
        "replay walks every recorded edge"
    );
    // Under a tripped budget the replay may cover only part of the
    // recorded graph; the subtraction saturates and the report carries
    // the explicit `exhausted` reason instead of exact accounting.
    search.replayed = search.replayed.saturating_sub(steps);
    search.steps = steps;
    search.into_report(name, config.depth, true)
}

/// Runs the bounded liveness check of the TM built by `factory` under
/// the given client scripts.
///
/// # Panics
///
/// Panics if `scripts` is empty or exceeds 64 processes, if the factory's
/// process count does not match, if `config.depth` is zero, or if the TM
/// does not implement [`tm_stm::SteppedTm::state_digest`] (liveness
/// checking is built on state recurrence; there is no meaningful
/// degraded mode without a fingerprint).
pub fn livecheck<F>(
    factory: F,
    scripts: &[ClientScript],
    config: &LivecheckConfig,
) -> LivecheckReport
where
    F: Fn() -> BoxedTm,
{
    let n = scripts.len();
    assert!(n > 0, "need at least one process");
    assert!(n <= 64, "parasitic and step masks are u64s");
    assert!(config.depth > 0, "depth must be at least 1");
    let tm = factory();
    assert_eq!(tm.process_count(), n, "factory must match scripts");
    let name = tm.name().to_string();
    config.telemetry.event(
        "run_start",
        &[
            ("engine", Json::str("livecheck")),
            ("tm", Json::str(name.as_str())),
            ("depth", Json::Int(config.depth as i64)),
            ("processes", Json::Int(n as i64)),
        ],
    );
    // Crashing every process trivially halts the run — cap the crash
    // budget at n−1 so a live step always exists below the depth bound.
    let faults = FaultConfig {
        max_crashes: config.faults.max_crashes.min(n - 1),
        ..config.faults
    };
    let meter = BudgetMeter::new(config.budget);
    if config.parallel {
        return livecheck_parallel(tm, scripts, config, faults, &meter, name);
    }
    let pool = TmPool::for_tm(&tm).instrument(&config.telemetry);
    let mut search = fresh_search(config, scripts, pool, config.reduce, faults, &meter);
    if config.telemetry.streams() {
        search.trace_seed = Some((tm.fork(), scripts.to_vec()));
    }
    let root_key = search.key_of(&tm);
    let root = search.intern(root_key);
    {
        let _span = config.telemetry.phase("livecheck", "search");
        search.expand(Some(tm), root, config.depth);
    }
    search.into_report(name, config.depth, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_automata::FgpVariant;
    use tm_core::TVarId;
    use tm_stm::{FgpTm, GlobalLock, NOrec, Tl2};

    use crate::workload::PlannedOp;

    const X: TVarId = TVarId(0);

    /// A bounded-domain contended workload: constant writes, so the
    /// value space (and with it the canonical state graph) is finite.
    fn contended() -> Vec<ClientScript> {
        vec![
            ClientScript::new(vec![PlannedOp::Write(X, 1)]),
            ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
        ]
    }

    #[test]
    fn fgp_contention_yields_a_classified_starvation_lasso() {
        let report = livecheck(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &contended(),
            &LivecheckConfig::new(12),
        );
        // The certified verdict and a concrete witness must agree: some
        // schedule commits p1 forever while p2 aborts forever.
        let p2 = ProcessId(1);
        assert!(report.starving_processes().contains(&p2), "{report:?}");
        assert!(report
            .lassos
            .iter()
            .any(|l| l.starving().contains(&p2) && !l.progressing().is_empty()));
        assert_eq!(report.rejected_cycles, 0);
        assert!(!report.lasso_starvation_free());
    }

    #[test]
    fn global_lock_is_certified_starvation_free_at_the_bound() {
        let report = livecheck(
            || Box::new(GlobalLock::new(2, 1)),
            &contended(),
            &LivecheckConfig::new(12),
        );
        // The lock TM never aborts: nobody starves, nobody is parasitic —
        // but a crashed holder blocks the other process forever, which
        // the blocked verdict captures (the paper's §1.1 failure).
        assert!(report.lasso_starvation_free(), "{report:?}");
        assert!(!report.blocked_processes().is_empty());
        assert!(!report.progressing_processes().is_empty());
        assert_eq!(report.rejected_cycles, 0);
    }

    #[test]
    fn parasitic_reader_is_detected_as_parasitic() {
        // Figure 12's shape: p1 reads forever (never tryC), and under
        // greedy Fgp some schedule aborts p2 forever alongside it.
        let scripts = vec![
            ClientScript::new(vec![PlannedOp::Read(X)]),
            ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
        ];
        let report = livecheck(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &LivecheckConfig::new(10).with_parasitic(ProcessId(0)),
        );
        assert!(
            report.parasitic_processes().contains(&ProcessId(0)),
            "{report:?}"
        );
        assert!(report
            .lassos
            .iter()
            .any(|l| l.parasitic().contains(&ProcessId(0))));
        assert_eq!(report.rejected_cycles, 0);
    }

    #[test]
    fn dedup_collapses_the_search_and_findings_replay() {
        let shallow = livecheck(
            || Box::new(Tl2::new(2, 1)),
            &contended(),
            &LivecheckConfig::new(10),
        );
        assert!(shallow.dedup_hits > 0, "bounded workload must merge");
        // Steps grow with distinct states, not with 2^depth.
        assert!(
            shallow.steps < 1 << 10,
            "DAG collapse failed: {} steps",
            shallow.steps
        );
        assert_eq!(shallow.rejected_cycles, 0);
    }

    #[test]
    fn norec_and_tl2_canonicalization_admits_recurrence() {
        for (name, factory) in [
            (
                "tl2",
                Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm) as Box<dyn Fn() -> BoxedTm>,
            ),
            ("norec", Box::new(|| Box::new(NOrec::new(2, 1)) as BoxedTm)),
        ] {
            let report = livecheck(&*factory, &contended(), &LivecheckConfig::new(12));
            // Version clocks are rank-canonicalized, so committing the
            // same values forever revisits the same canonical states:
            // cycles must exist and validate.
            assert!(report.cycles_detected > 0, "{name}: no cycles found");
            assert_eq!(report.rejected_cycles, 0, "{name}");
            assert!(!report.progressing_processes().is_empty(), "{name}");
        }
    }

    #[test]
    fn reduction_preserves_the_graph_and_every_finding() {
        for (name, factory) in [
            (
                "fgp",
                Box::new(|| Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm)
                    as Box<dyn Fn() -> BoxedTm>,
            ),
            ("tl2", Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm)),
            (
                "global-lock",
                Box::new(|| Box::new(GlobalLock::new(2, 1)) as BoxedTm),
            ),
        ] {
            let plain = livecheck(&*factory, &contended(), &LivecheckConfig::new(12));
            let reduced = livecheck(
                &*factory,
                &contended(),
                &LivecheckConfig::new(12).with_reduction(),
            );
            assert_eq!(plain.states, reduced.states, "{name}");
            assert_eq!(plain.edges, reduced.edges, "{name}");
            assert_eq!(plain.cycles_detected, reduced.cycles_detected, "{name}");
            assert_eq!(plain.eventless_cycles, reduced.eventless_cycles, "{name}");
            assert_eq!(plain.lassos.len(), reduced.lassos.len(), "{name}");
            for (a, b) in plain.lassos.iter().zip(&reduced.lassos) {
                assert_eq!(a.schedule_prefix, b.schedule_prefix, "{name}");
                assert_eq!(a.schedule_cycle, b.schedule_cycle, "{name}");
                assert_eq!(a.classes, b.classes, "{name}");
            }
            assert_eq!(plain.verdicts, reduced.verdicts, "{name}");
            // Every re-walk the plain search paid in TM executions is
            // either executed once or replayed from the recorded graph.
            assert_eq!(
                plain.steps,
                reduced.steps + reduced.replayed_steps,
                "{name}"
            );
            assert!(
                reduced.steps < plain.steps,
                "{name}: reduction never fired ({} steps)",
                reduced.steps
            );
            assert_eq!(plain.replayed_steps, 0, "{name}");
        }
    }

    #[test]
    fn parallel_report_is_byte_identical_to_the_reduced_sequential_one() {
        for (name, factory) in [
            (
                "fgp",
                Box::new(|| Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm)
                    as Box<dyn Fn() -> BoxedTm>,
            ),
            ("tl2", Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm)),
            (
                "global-lock",
                Box::new(|| Box::new(GlobalLock::new(2, 1)) as BoxedTm),
            ),
        ] {
            let reduced = livecheck(
                &*factory,
                &contended(),
                &LivecheckConfig::new(12).with_reduction(),
            );
            let parallel = livecheck(
                &*factory,
                &contended(),
                &LivecheckConfig::new(12).with_parallel(),
            );
            assert_eq!(reduced.states, parallel.states, "{name}");
            assert_eq!(reduced.edges, parallel.edges, "{name}");
            assert_eq!(reduced.steps, parallel.steps, "{name}");
            assert_eq!(reduced.replayed_steps, parallel.replayed_steps, "{name}");
            assert_eq!(reduced.dedup_hits, parallel.dedup_hits, "{name}");
            assert_eq!(reduced.cycles_detected, parallel.cycles_detected, "{name}");
            assert_eq!(
                reduced.eventless_cycles, parallel.eventless_cycles,
                "{name}"
            );
            assert_eq!(reduced.rejected_cycles, parallel.rejected_cycles, "{name}");
            assert_eq!(reduced.lassos.len(), parallel.lassos.len(), "{name}");
            for (a, b) in reduced.lassos.iter().zip(&parallel.lassos) {
                assert_eq!(a.schedule_prefix, b.schedule_prefix, "{name}");
                assert_eq!(a.schedule_cycle, b.schedule_cycle, "{name}");
                assert_eq!(a.classes, b.classes, "{name}");
            }
            assert_eq!(reduced.truncated, parallel.truncated, "{name}");
            assert_eq!(reduced.verdicts, parallel.verdicts, "{name}");
        }
    }

    #[test]
    fn reduction_with_parasitic_processes_is_identical_too() {
        let scripts = vec![
            ClientScript::new(vec![PlannedOp::Read(X)]),
            ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
        ];
        let config = LivecheckConfig::new(10).with_parasitic(ProcessId(0));
        let plain = livecheck(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &config,
        );
        let reduced = livecheck(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &config.clone().with_reduction(),
        );
        assert_eq!(plain.states, reduced.states);
        assert_eq!(plain.edges, reduced.edges);
        assert_eq!(plain.lassos.len(), reduced.lassos.len());
        assert_eq!(plain.verdicts, reduced.verdicts);
        assert!(reduced
            .lassos
            .iter()
            .any(|l| l.parasitic().contains(&ProcessId(0))));
        // And the parallel search agrees with both.
        let parallel = livecheck(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &config.clone().with_parallel(),
        );
        assert_eq!(parallel.states, plain.states);
        assert_eq!(parallel.edges, plain.edges);
        assert_eq!(parallel.lassos.len(), plain.lassos.len());
        assert_eq!(parallel.verdicts, plain.verdicts);
    }

    #[test]
    fn depth_one_explores_single_steps_only() {
        let report = livecheck(
            || Box::new(Tl2::new(2, 1)),
            &contended(),
            &LivecheckConfig::new(1),
        );
        assert_eq!(report.steps, 2);
        assert_eq!(report.cycles_detected, 0);
        assert!(report.lasso_starvation_free());
        // The parallel search executes the same two transitions.
        let parallel = livecheck(
            || Box::new(Tl2::new(2, 1)),
            &contended(),
            &LivecheckConfig::new(1).with_parallel(),
        );
        assert_eq!(parallel.steps, 2);
        assert_eq!(parallel.replayed_steps, 0);
        assert_eq!(parallel.states, report.states);
    }
}
