//! Bounded liveness model checking: lasso detection over the canonical
//! state graph.
//!
//! The safety explorer ([`crate::explore`]) certifies *finite* behaviour
//! (opacity of every history up to a depth). The paper's central results,
//! however, are about *infinite* behaviour: which processes starve, which
//! are parasitic, which progress (§2.3, Figures 5–7). Infinite
//! counterexamples of finite-state systems are **lassos** — a finite
//! prefix leading into a cycle repeated forever — so liveness checking
//! reduces to cycle detection in a canonical state graph. This module
//! builds that graph and searches it.
//!
//! # The canonical state graph
//!
//! A *configuration* is `(TM state, client cursors)`; it determines every
//! future response and invocation, so the bounded run graph is exactly
//! the graph over configurations with one edge per scheduled process.
//! Configurations are interned by their canonical digests —
//! [`tm_stm::SteppedTm::state_digest`] (whose per-algorithm
//! canonicalization contract normalizes unbounded version clocks into
//! rank patterns, making recurrence *possible* at all) and
//! [`crate::workload::Client::cursor`] (which excludes the commit/abort
//! tallies for the same reason). A DFS bounded by
//! [`LivecheckConfig::depth`] explores the graph once per configuration
//! (re-expanding only when revisited with a larger remaining budget), so
//! the cost scales with the number of *distinct states*, not with the
//! `n^depth` schedule tree.
//!
//! # Lassos: concrete witnesses
//!
//! When the DFS steps into a configuration already on its own path, the
//! events since that configuration's frame form a cycle that the
//! scheduler can repeat forever. Each such cycle is converted into a
//! [`tm_liveness::InfiniteHistory`] via
//! [`tm_liveness::detect::lasso_from_cycle`] and every process is
//! classified with the paper's Figure 2 taxonomy
//! ([`tm_liveness::classify`]): progressing, starving, parasitic,
//! crashed (the scheduler abandoned it), or absent. Findings are
//! deduplicated and capped at [`LivecheckConfig::max_lassos`].
//!
//! A cycle can also contain **no events at all** — a blocked process
//! polling a withheld response forever (the global-lock TM under a
//! crashed lock holder). Such cycles admit no `InfiniteHistory` (the
//! paper's histories are event sequences; an eventless suffix is
//! Figure 14's blocking shape) and are certified separately below.
//!
//! # Certified verdicts: the SCC pass
//!
//! On-path detection yields witnesses, but *absence* claims ("no
//! starvation lasso at this bound") need a completeness argument that
//! per-path search cannot give once the seen set prunes re-expansion.
//! The checker therefore also records the explored graph explicitly and
//! decides cycle **existence** exactly, per process `p`, by strongly
//! connected components (Tarjan):
//!
//! * **starving** — delete every `C_p` edge; a cycle through an `A_p`
//!   edge survives iff some lasso aborts `p` infinitely often and never
//!   commits it (`p` is correct and pending: starving);
//! * **parasitic** — delete every `C_p`/`A_p`/`tryC_p` edge; a cycle
//!   through a `p`-event edge survives iff some lasso gives `p`
//!   infinitely many events but finitely many `tryC_p`/`A_p`;
//! * **blocked** — delete every `p`-event edge; a cycle through an
//!   eventless `p`-step edge survives iff the scheduler can run `p`
//!   forever without the TM ever responding;
//! * **progressing** — a `C_p` edge inside any SCC of the full graph:
//!   `p` can commit infinitely often.
//!
//! (An edge lies on a cycle iff both endpoints share an SCC.) These
//! verdicts are exact *for the explored subgraph*: configurations first
//! reached at the depth bound are frontier nodes without outgoing edges,
//! so the certificate is "no such cycle within the bound", the standard
//! bounded-model-checking guarantee. [`LivecheckReport::lasso_starvation_free`]
//! is the resulting per-TM certificate: no process has a starving or
//! parasitic cycle in the explored graph.
//!
//! # Parasitic processes
//!
//! [`LivecheckConfig::with_parasitic`] marks processes that never invoke
//! `tryC` (§2.3): their clients loop their operations via
//! [`Client::restart_transaction`] instead of reaching the script's
//! implicit commit. This reproduces the Figure 12 shape — a parasitic
//! reader starving a writer — mechanically.
//!
//! # Equivalence-class reduction
//!
//! The safety explorer's source-set DPOR ([`crate::explore`]) prunes
//! whole interleaving classes because a *verdict* is class-invariant.
//! Liveness certification cannot prune schedules that way: for two
//! independent steps `a | b`, the interleavings `ab` and `ba` pass
//! through **different intermediate configurations** (`after-a` vs
//! `after-b`), and both must be interned for the state/edge/lasso sets —
//! the very objects the SCC certificates quantify over — to be complete.
//! What *is* redundant is re-executing a transition the graph already
//! records: the budget-bounded DFS re-walks a node's subtree whenever a
//! shorter path reaches it with a larger remaining budget, re-deriving
//! edges whose targets, labels and events are already known.
//!
//! [`LivecheckConfig::reduce`] prunes exactly that redundancy — one
//! *executed* representative per transition, every re-derivation
//! replayed: first expansions record each edge's (at most two) events;
//! re-walks replay recorded edges into the history and client cursors
//! (stepping is deterministic, so the replay is byte-identical) without
//! touching a TM; and a frontier node reached but not yet expanded
//! *parks* its TM box so a later, deeper re-walk can expand it in place
//! instead of re-executing the path to it. Every TM transition is thus
//! executed exactly once; the traversal order, the explored graph, the
//! lasso findings and the certified verdicts are unchanged (asserted by
//! the differential suite), and
//! `steps(plain) = steps(reduced) + replayed_steps(reduced)`.

use std::collections::{HashMap, HashSet};

use tm_core::{digest_of, Event, Invocation, ProcessId, Response};
use tm_liveness::{classify, detect::lasso_from_cycle, InfiniteHistory, ProcessClass};
use tm_stm::{BoxedTm, Outcome, SteppedTm};

use crate::workload::{clients_digest, Client, ClientScript};

/// Configuration for [`livecheck`].
#[derive(Debug, Clone)]
pub struct LivecheckConfig {
    /// Maximum schedule length explored from the initial configuration.
    /// Cycle existence is decided exactly for the subgraph reachable
    /// within this bound.
    pub depth: usize,
    /// Cap on *stored* lasso findings (detection keeps counting).
    pub max_lassos: usize,
    /// Transition-level reduction: execute every TM transition **once**
    /// and replay recorded edges on re-walks (see the module docs'
    /// "Equivalence-class reduction" section). The explored graph,
    /// lassos and verdicts are identical; only
    /// [`LivecheckReport::steps`] (TM executions) drops — re-walked
    /// edges count in [`LivecheckReport::replayed_steps`] instead.
    pub reduce: bool,
    /// Bitmask of processes that never invoke `tryC` (loop their
    /// operations forever): the paper's parasitic processes.
    parasitic: u64,
}

impl LivecheckConfig {
    /// Exploration to `depth` with the default finding cap.
    pub fn new(depth: usize) -> Self {
        LivecheckConfig {
            depth,
            max_lassos: 32,
            reduce: false,
            parasitic: 0,
        }
    }

    /// Enables the transition-level reduction (execute each TM
    /// transition once; replay recorded edges on re-walks).
    pub fn with_reduction(mut self) -> Self {
        self.reduce = true;
        self
    }

    /// Marks `process` parasitic: it loops its script's operations
    /// forever instead of ever invoking `tryC`.
    pub fn with_parasitic(mut self, process: ProcessId) -> Self {
        assert!(process.index() < 64, "parasitic mask is a u64");
        self.parasitic |= 1 << process.index();
        self
    }

    /// Caps the number of stored lasso findings.
    pub fn with_max_lassos(mut self, max: usize) -> Self {
        self.max_lassos = max;
        self
    }
}

/// A concrete lasso found by the bounded search: a schedule the
/// adversarial scheduler can repeat forever, with the paper's per-process
/// classification of the resulting infinite history.
#[derive(Debug, Clone)]
pub struct LassoFinding {
    /// The schedule reaching the cycle's entry configuration.
    pub schedule_prefix: Vec<ProcessId>,
    /// The schedule segment the scheduler repeats forever.
    pub schedule_cycle: Vec<ProcessId>,
    /// The induced infinite history `prefix · cycle^ω`.
    pub lasso: InfiniteHistory,
    /// Figure 2 classification of every configured process.
    pub classes: Vec<(ProcessId, ProcessClass)>,
}

impl LassoFinding {
    /// The processes this lasso starves.
    pub fn starving(&self) -> Vec<ProcessId> {
        self.with_class(ProcessClass::Starving)
    }

    /// The processes this lasso makes parasitic.
    pub fn parasitic(&self) -> Vec<ProcessId> {
        self.with_class(ProcessClass::Parasitic)
    }

    /// The processes this lasso keeps progressing.
    pub fn progressing(&self) -> Vec<ProcessId> {
        self.with_class(ProcessClass::Progressing)
    }

    fn with_class(&self, class: ProcessClass) -> Vec<ProcessId> {
        self.classes
            .iter()
            .filter(|&&(_, c)| c == class)
            .map(|&(p, _)| p)
            .collect()
    }
}

/// Certified cycle-existence verdicts for one process over the explored
/// subgraph (see the module docs' SCC pass).
///
/// Each flag is an independent **existential** claim — "some cycle with
/// this shape exists" — and different flags are generally witnessed by
/// *different* cycles, so several can hold at once. In particular a
/// process configured parasitic via [`LivecheckConfig::with_parasitic`]
/// can be certified both `parasitic` (a cycle where its reads succeed
/// forever) *and* `starving` (a cycle where the TM aborts those reads
/// forever): by the paper's Figure 2 definitions a history with
/// infinitely many `A_k` is **not** parasitic — the process is correct
/// and pending, i.e. starving — and [`tm_liveness::classify`] returns
/// exactly that on the corresponding lasso witnesses. Within any *one*
/// cycle the classes remain mutually exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessCycleVerdicts {
    /// The process.
    pub process: ProcessId,
    /// A cycle commits the process infinitely often.
    pub progressing: bool,
    /// A cycle aborts the process infinitely often and never commits it.
    pub starving: bool,
    /// A cycle gives the process infinitely many events but finitely
    /// many `tryC`/aborts.
    pub parasitic: bool,
    /// A cycle schedules the process forever without the TM ever
    /// responding (blocking, the Figure 14 shape).
    pub blocked: bool,
}

/// Outcome of a bounded liveness check of one TM.
#[derive(Debug, Clone)]
pub struct LivecheckReport {
    /// The checked TM's name.
    pub tm: String,
    /// The exploration bound used.
    pub depth: usize,
    /// Distinct configurations interned (including frontier nodes).
    pub states: usize,
    /// Edges of the explored graph.
    pub edges: usize,
    /// Scheduler steps executed against a TM (edges walked fresh; with
    /// [`LivecheckConfig::reduce`] each graph transition is executed
    /// exactly once, so this approaches the edge count).
    pub steps: usize,
    /// Edge re-walks served by replaying recorded events instead of
    /// executing the TM (0 unless [`LivecheckConfig::reduce`]).
    pub replayed_steps: usize,
    /// Subtree re-expansions avoided by the seen set.
    pub dedup_hits: usize,
    /// Back-edges encountered (cycles, counted with multiplicity).
    pub cycles_detected: usize,
    /// Cycles with no events (blocked shapes; certified via
    /// [`ProcessCycleVerdicts::blocked`], not convertible to lassos).
    pub eventless_cycles: usize,
    /// Cycles rejected by lasso validation — always 0 unless a TM's
    /// fingerprint canonicalization is unsound.
    pub rejected_cycles: usize,
    /// Stored findings (deduplicated, capped at
    /// [`LivecheckConfig::max_lassos`]).
    pub lassos: Vec<LassoFinding>,
    /// Whether findings were dropped by the cap.
    pub truncated: bool,
    /// Certified per-process cycle-existence verdicts.
    pub verdicts: Vec<ProcessCycleVerdicts>,
}

impl LivecheckReport {
    /// The certificate the paper's taxonomy calls for: **no** process has
    /// a starving or parasitic cycle anywhere in the explored subgraph.
    /// (Blocked cycles are reported separately: a blocked process is
    /// pending forever but takes no effective steps — the paper's
    /// blocking TMs fail *nonblocking* properties, not starvation
    /// freedom.)
    pub fn lasso_starvation_free(&self) -> bool {
        self.verdicts.iter().all(|v| !v.starving && !v.parasitic)
    }

    /// Processes with a certified starving cycle.
    pub fn starving_processes(&self) -> Vec<ProcessId> {
        self.collect(|v| v.starving)
    }

    /// Processes with a certified parasitic cycle.
    pub fn parasitic_processes(&self) -> Vec<ProcessId> {
        self.collect(|v| v.parasitic)
    }

    /// Processes with a certified blocked cycle.
    pub fn blocked_processes(&self) -> Vec<ProcessId> {
        self.collect(|v| v.blocked)
    }

    /// Processes with a certified progressing cycle.
    pub fn progressing_processes(&self) -> Vec<ProcessId> {
        self.collect(|v| v.progressing)
    }

    fn collect(&self, f: impl Fn(&ProcessCycleVerdicts) -> bool) -> Vec<ProcessId> {
        self.verdicts
            .iter()
            .filter(|v| f(v))
            .map(|v| v.process)
            .collect()
    }
}

/// What one scheduler step did, for edge labelling.
#[derive(Debug, Clone, Copy, Default)]
struct StepFacts {
    events: u8,
    committed: bool,
    aborted: bool,
    tryc: bool,
}

/// One edge of the explored configuration graph.
#[derive(Debug, Clone, Copy)]
struct Edge {
    target: u32,
    process: u8,
    facts: StepFacts,
    /// The (at most two) events the step produced, recorded so
    /// reduced-mode re-walks can replay the edge — history bytes, client
    /// transitions and lasso findings included — without touching a TM.
    events: [Option<Event>; 2],
}

/// One interned configuration.
#[derive(Default)]
struct Node {
    /// Largest remaining budget this node has been expanded with
    /// (`None` = frontier: interned but never expanded).
    budget: Option<usize>,
    /// Outgoing edges, recorded on first expansion (stepping is
    /// deterministic, so re-expansions would record the same edges).
    edges: Vec<Edge>,
    /// Reduced mode only: the configuration's TM, parked while the node
    /// is an unexpanded frontier so a later, deeper re-walk can expand
    /// it without re-executing the path to it. Taken (and dropped) on
    /// first expansion — after that the recorded edges carry everything.
    parked_tm: Option<BoxedTm>,
}

/// A node currently on the DFS path.
struct Frame {
    history_len: usize,
    sched_len: usize,
}

struct Search<'a> {
    config: &'a LivecheckConfig,
    clients: Vec<Client>,
    history: Vec<Event>,
    sched: Vec<usize>,
    frames: Vec<Frame>,
    on_path: HashMap<u32, usize>,
    ids: HashMap<(u64, u64), u32>,
    nodes: Vec<Node>,
    spare: Vec<BoxedTm>,
    recycle: bool,
    reduce: bool,
    steps: usize,
    replayed: usize,
    dedup_hits: usize,
    cycles_detected: usize,
    eventless_cycles: usize,
    rejected_cycles: usize,
    seen_cycles: HashSet<u64>,
    lassos: Vec<LassoFinding>,
    truncated: bool,
}

impl Search<'_> {
    fn key_of(&self, tm: &BoxedTm) -> (u64, u64) {
        let digest = tm
            .state_digest()
            .expect("livecheck requires a fingerprinting TM (SteppedTm::state_digest)");
        (digest, clients_digest(&self.clients))
    }

    fn intern(&mut self, key: (u64, u64)) -> u32 {
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("state graph exceeds u32 nodes");
        self.ids.insert(key, id);
        self.nodes.push(Node::default());
        id
    }

    /// Expands `id` (not on the path) with `remaining ≥ 1` budget.
    /// Fresh expansions (recorded edges absent) consume the given TM and
    /// return it for recycling; reduced-mode re-expansions replay the
    /// recorded edges and need no TM at all.
    fn expand(&mut self, tm: Option<BoxedTm>, id: u32, remaining: usize) -> Option<BoxedTm> {
        let replay = self.reduce && !self.nodes[id as usize].edges.is_empty();
        let record = self.nodes[id as usize].edges.is_empty();
        self.nodes[id as usize].budget = Some(remaining);
        self.on_path.insert(id, self.frames.len());
        self.frames.push(Frame {
            history_len: self.history.len(),
            sched_len: self.sched.len(),
        });
        let tm = if replay {
            for idx in 0..self.nodes[id as usize].edges.len() {
                let edge = self.nodes[id as usize].edges[idx];
                self.replay_edge(edge, remaining);
            }
            tm
        } else {
            let tm = tm.expect("fresh expansion requires the configuration's TM");
            let n = self.clients.len();
            let mut kept = None;
            for k in 0..n - 1 {
                let child = match self.spare.pop() {
                    Some(mut spare) => {
                        if spare.refork_from(&*tm) {
                            spare
                        } else {
                            tm.fork()
                        }
                    }
                    None => tm.fork(),
                };
                let recycled = self.child_step(child, k, id, remaining, record);
                if let Some(recycled) = recycled {
                    if self.recycle {
                        self.spare.push(recycled);
                    }
                }
            }
            // The last child consumes the parent's TM instance: no fork.
            if let Some(recycled) = self.child_step(tm, n - 1, id, remaining, record) {
                kept = Some(recycled);
            }
            kept
        };
        self.frames.pop();
        self.on_path.remove(&id);
        tm
    }

    /// Steps process `k` from the configuration `parent`, classifies the
    /// resulting edge, and recurses unless the child closes a cycle, is
    /// already explored at this budget, or sits at the depth bound.
    /// Returns the stepped TM for recycling — or `None` in reduced mode
    /// when the box was parked on a new frontier node instead.
    fn child_step(
        &mut self,
        mut tm: BoxedTm,
        k: usize,
        parent: u32,
        remaining: usize,
        record: bool,
    ) -> Option<BoxedTm> {
        let history_len = self.history.len();
        let mark = self.clients[k].mark();
        self.sched.push(k);
        let parasitic = self.config.parasitic & (1 << k) != 0;
        let facts = step_live(&mut tm, &mut self.clients, k, parasitic, &mut self.history);
        self.steps += 1;
        let key = self.key_of(&tm);
        let child = self.intern(key);
        if record {
            let mut events = [None, None];
            for (slot, &event) in events.iter_mut().zip(&self.history[history_len..]) {
                *slot = Some(event);
            }
            self.nodes[parent as usize].edges.push(Edge {
                target: child,
                process: u8::try_from(k).expect("≤ 64 processes"),
                facts,
                events,
            });
        }
        let mut tm = Some(tm);
        let mut expanded = false;
        if let Some(&frame) = self.on_path.get(&child) {
            self.record_cycle(frame);
        } else if remaining > 1 {
            let explored = self.nodes[child as usize]
                .budget
                .is_some_and(|b| b >= remaining - 1);
            if explored {
                self.dedup_hits += 1;
            } else {
                // The recursion may itself park the box on a deeper
                // frontier node (reduced mode), returning None.
                tm = self.expand(tm, child, remaining - 1);
                expanded = true;
            }
        }
        self.sched.pop();
        self.history.truncate(history_len);
        self.clients[k].restore(mark);
        // Reduced mode: park the TM of a still-unexpanded frontier child
        // so a later, deeper re-walk can expand it from the recorded
        // graph without re-executing the path to it.
        if self.reduce && !expanded {
            let node = &mut self.nodes[child as usize];
            if node.edges.is_empty()
                && node.parked_tm.is_none()
                && !self.on_path.contains_key(&child)
            {
                node.parked_tm = tm.take();
            }
        }
        tm
    }

    /// Reduced-mode re-walk of one recorded edge: replays its events
    /// into the history and the client (identically to re-executing the
    /// step — stepping is deterministic), detects cycles, and recurses
    /// using parked TMs only where a frontier node genuinely needs its
    /// first expansion.
    fn replay_edge(&mut self, edge: Edge, remaining: usize) {
        let k = edge.process as usize;
        let history_len = self.history.len();
        let mark = self.clients[k].mark();
        self.sched.push(k);
        if let Some(first) = edge.events[0] {
            if first.is_invocation() {
                // Mirror `step_live`'s client handling for an invoking
                // step, including the parasitic loop rule.
                if self.config.parasitic & (1 << k) != 0
                    && self.clients[k].next_invocation() == Invocation::TryCommit
                {
                    self.clients[k].restart_transaction();
                }
                debug_assert_eq!(
                    first.as_invocation(),
                    Some(self.clients[k].next_invocation())
                );
            }
            for event in edge.events.iter().flatten() {
                self.history.push(*event);
                if let Some(resp) = event.as_response() {
                    self.clients[k].observe(resp);
                }
            }
        }
        self.replayed += 1;
        let child = edge.target;
        if let Some(&frame) = self.on_path.get(&child) {
            self.record_cycle(frame);
        } else if remaining > 1 {
            let explored = self.nodes[child as usize]
                .budget
                .is_some_and(|b| b >= remaining - 1);
            if explored {
                self.dedup_hits += 1;
            } else {
                let parked = self.nodes[child as usize].parked_tm.take();
                debug_assert!(
                    parked.is_some() || !self.nodes[child as usize].edges.is_empty(),
                    "frontier node must carry a parked TM"
                );
                if let Some(recycled) = self.expand(parked, child, remaining - 1) {
                    if self.recycle {
                        self.spare.push(recycled);
                    }
                }
            }
        }
        self.sched.pop();
        self.history.truncate(history_len);
        self.clients[k].restore(mark);
    }

    /// The DFS stepped back into the configuration at `frames[frame]`:
    /// everything since is a repeatable cycle.
    fn record_cycle(&mut self, frame: usize) {
        self.cycles_detected += 1;
        let frame = &self.frames[frame];
        let (prefix, cycle) = self.history.split_at(frame.history_len);
        if cycle.is_empty() {
            // Blocked shape: steps without events. Certified by the SCC
            // pass; there is no event cycle to classify.
            self.eventless_cycles += 1;
            return;
        }
        let sched_cycle = &self.sched[frame.sched_len..];
        if !self.seen_cycles.insert(digest_of(&(cycle, sched_cycle))) {
            return;
        }
        if self.lassos.len() >= self.config.max_lassos {
            self.truncated = true;
            return;
        }
        match lasso_from_cycle(prefix, cycle) {
            Ok(lasso) => {
                let classes = (0..self.clients.len())
                    .map(|k| (ProcessId(k), classify(&lasso, ProcessId(k))))
                    .collect();
                self.lassos.push(LassoFinding {
                    schedule_prefix: self.sched[..frame.sched_len]
                        .iter()
                        .copied()
                        .map(ProcessId)
                        .collect(),
                    schedule_cycle: sched_cycle.iter().copied().map(ProcessId).collect(),
                    lasso,
                    classes,
                });
            }
            Err(_) => self.rejected_cycles += 1,
        }
    }
}

/// One scheduler step of process `k` against the TM, appending produced
/// events to `history`. Mirrors the safety explorer's stepper, plus the
/// parasitic-loop rule and edge labelling.
fn step_live(
    tm: &mut BoxedTm,
    clients: &mut [Client],
    k: usize,
    parasitic: bool,
    history: &mut Vec<Event>,
) -> StepFacts {
    let p = ProcessId(k);
    let mut facts = StepFacts::default();
    if tm.has_pending(p) {
        if let Some(resp) = tm.poll(p) {
            history.push(Event::response(p, resp));
            facts.events = 1;
            facts.committed = resp == Response::Committed;
            facts.aborted = resp == Response::Aborted;
            clients[k].observe(resp);
        }
        return facts;
    }
    if parasitic && clients[k].next_invocation() == Invocation::TryCommit {
        clients[k].restart_transaction();
    }
    let inv = clients[k].next_invocation();
    facts.tryc = inv == Invocation::TryCommit;
    history.push(Event::invocation(p, inv));
    facts.events = 1;
    match tm.invoke(p, inv) {
        Outcome::Response(resp) => {
            history.push(Event::response(p, resp));
            facts.events = 2;
            facts.committed = resp == Response::Committed;
            facts.aborted = resp == Response::Aborted;
            clients[k].observe(resp);
        }
        Outcome::Pending => {}
    }
    facts
}

/// Iterative Tarjan SCC over the explored graph, restricted to edges
/// passing `keep`. Returns the component id of every node.
fn sccs(nodes: &[Node], keep: impl Fn(&Edge) -> bool) -> Vec<u32> {
    const UNVISITED: u32 = u32::MAX;
    let n = nodes.len();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut comp = vec![UNVISITED; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;
    // (node, next edge offset) — an explicit call stack.
    let mut call: Vec<(u32, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call.push((root as u32, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut edge)) = call.last_mut() {
            let vu = v as usize;
            let next = nodes[vu].edges[*edge..].iter().position(&keep);
            if let Some(offset) = next {
                *edge += offset + 1;
                let w = nodes[vu].edges[*edge - 1].target;
                let wu = w as usize;
                if index[wu] == UNVISITED {
                    index[wu] = next_index;
                    low[wu] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wu] = true;
                    call.push((w, 0));
                } else if on_stack[wu] {
                    low[vu] = low[vu].min(index[wu]);
                }
            } else {
                call.pop();
                if low[vu] == index[vu] {
                    loop {
                        let w = stack.pop().expect("root still on stack");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                if let Some(&(parent, _)) = call.last() {
                    let pu = parent as usize;
                    low[pu] = low[pu].min(low[vu]);
                }
            }
        }
    }
    comp
}

/// Whether some kept edge passing `want` lies on a cycle of the
/// `keep`-restricted graph (both endpoints in one SCC).
fn cycle_edge_exists(
    nodes: &[Node],
    keep: impl Fn(&Edge) -> bool + Copy,
    want: impl Fn(&Edge) -> bool,
) -> bool {
    let comp = sccs(nodes, keep);
    nodes.iter().enumerate().any(|(u, node)| {
        node.edges
            .iter()
            .any(|e| keep(e) && want(e) && comp[u] == comp[e.target as usize])
    })
}

fn certify(nodes: &[Node], processes: usize) -> Vec<ProcessCycleVerdicts> {
    let full = sccs(nodes, |_| true);
    (0..processes)
        .map(|k| {
            let p = u8::try_from(k).expect("≤ 64 processes");
            let progressing = nodes.iter().enumerate().any(|(u, node)| {
                node.edges.iter().any(|e| {
                    e.process == p && e.facts.committed && full[u] == full[e.target as usize]
                })
            });
            let starving = cycle_edge_exists(
                nodes,
                |e| !(e.process == p && e.facts.committed),
                |e| e.process == p && e.facts.aborted,
            );
            let parasitic = cycle_edge_exists(
                nodes,
                |e| !(e.process == p && (e.facts.committed || e.facts.aborted || e.facts.tryc)),
                |e| e.process == p && e.facts.events > 0,
            );
            let blocked = cycle_edge_exists(
                nodes,
                |e| !(e.process == p && e.facts.events > 0),
                |e| e.process == p && e.facts.events == 0,
            );
            ProcessCycleVerdicts {
                process: ProcessId(k),
                progressing,
                starving,
                parasitic,
                blocked,
            }
        })
        .collect()
}

/// Runs the bounded liveness check of the TM built by `factory` under
/// the given client scripts.
///
/// # Panics
///
/// Panics if `scripts` is empty or exceeds 64 processes, if the factory's
/// process count does not match, if `config.depth` is zero, or if the TM
/// does not implement [`tm_stm::SteppedTm::state_digest`] (liveness
/// checking is built on state recurrence; there is no meaningful
/// degraded mode without a fingerprint).
pub fn livecheck<F>(
    factory: F,
    scripts: &[ClientScript],
    config: &LivecheckConfig,
) -> LivecheckReport
where
    F: Fn() -> BoxedTm,
{
    let n = scripts.len();
    assert!(n > 0, "need at least one process");
    assert!(n <= 64, "parasitic and step masks are u64s");
    assert!(config.depth > 0, "depth must be at least 1");
    let tm = factory();
    assert_eq!(tm.process_count(), n, "factory must match scripts");
    let recycle = {
        let mut probe = tm.fork();
        probe.refork_from(&*tm)
    };
    let name = tm.name().to_string();
    let mut search = Search {
        config,
        clients: scripts.iter().cloned().map(Client::new).collect(),
        history: Vec::new(),
        sched: Vec::new(),
        frames: Vec::new(),
        on_path: HashMap::new(),
        ids: HashMap::new(),
        nodes: Vec::new(),
        spare: Vec::new(),
        recycle,
        reduce: config.reduce,
        steps: 0,
        replayed: 0,
        dedup_hits: 0,
        cycles_detected: 0,
        eventless_cycles: 0,
        rejected_cycles: 0,
        seen_cycles: HashSet::new(),
        lassos: Vec::new(),
        truncated: false,
    };
    let root_key = search.key_of(&tm);
    let root = search.intern(root_key);
    search.expand(Some(tm), root, config.depth);
    let verdicts = certify(&search.nodes, n);
    LivecheckReport {
        tm: name,
        depth: config.depth,
        states: search.nodes.len(),
        edges: search.nodes.iter().map(|n| n.edges.len()).sum(),
        steps: search.steps,
        replayed_steps: search.replayed,
        dedup_hits: search.dedup_hits,
        cycles_detected: search.cycles_detected,
        eventless_cycles: search.eventless_cycles,
        rejected_cycles: search.rejected_cycles,
        lassos: search.lassos,
        truncated: search.truncated,
        verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_automata::FgpVariant;
    use tm_core::TVarId;
    use tm_stm::{FgpTm, GlobalLock, NOrec, Tl2};

    use crate::workload::PlannedOp;

    const X: TVarId = TVarId(0);

    /// A bounded-domain contended workload: constant writes, so the
    /// value space (and with it the canonical state graph) is finite.
    fn contended() -> Vec<ClientScript> {
        vec![
            ClientScript::new(vec![PlannedOp::Write(X, 1)]),
            ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
        ]
    }

    #[test]
    fn fgp_contention_yields_a_classified_starvation_lasso() {
        let report = livecheck(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &contended(),
            &LivecheckConfig::new(12),
        );
        // The certified verdict and a concrete witness must agree: some
        // schedule commits p1 forever while p2 aborts forever.
        let p2 = ProcessId(1);
        assert!(report.starving_processes().contains(&p2), "{report:?}");
        assert!(report
            .lassos
            .iter()
            .any(|l| l.starving().contains(&p2) && !l.progressing().is_empty()));
        assert_eq!(report.rejected_cycles, 0);
        assert!(!report.lasso_starvation_free());
    }

    #[test]
    fn global_lock_is_certified_starvation_free_at_the_bound() {
        let report = livecheck(
            || Box::new(GlobalLock::new(2, 1)),
            &contended(),
            &LivecheckConfig::new(12),
        );
        // The lock TM never aborts: nobody starves, nobody is parasitic —
        // but a crashed holder blocks the other process forever, which
        // the blocked verdict captures (the paper's §1.1 failure).
        assert!(report.lasso_starvation_free(), "{report:?}");
        assert!(!report.blocked_processes().is_empty());
        assert!(!report.progressing_processes().is_empty());
        assert_eq!(report.rejected_cycles, 0);
    }

    #[test]
    fn parasitic_reader_is_detected_as_parasitic() {
        // Figure 12's shape: p1 reads forever (never tryC), and under
        // greedy Fgp some schedule aborts p2 forever alongside it.
        let scripts = vec![
            ClientScript::new(vec![PlannedOp::Read(X)]),
            ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
        ];
        let report = livecheck(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &LivecheckConfig::new(10).with_parasitic(ProcessId(0)),
        );
        assert!(
            report.parasitic_processes().contains(&ProcessId(0)),
            "{report:?}"
        );
        assert!(report
            .lassos
            .iter()
            .any(|l| l.parasitic().contains(&ProcessId(0))));
        assert_eq!(report.rejected_cycles, 0);
    }

    #[test]
    fn dedup_collapses_the_search_and_findings_replay() {
        let shallow = livecheck(
            || Box::new(Tl2::new(2, 1)),
            &contended(),
            &LivecheckConfig::new(10),
        );
        assert!(shallow.dedup_hits > 0, "bounded workload must merge");
        // Steps grow with distinct states, not with 2^depth.
        assert!(
            shallow.steps < 1 << 10,
            "DAG collapse failed: {} steps",
            shallow.steps
        );
        assert_eq!(shallow.rejected_cycles, 0);
    }

    #[test]
    fn norec_and_tl2_canonicalization_admits_recurrence() {
        for (name, factory) in [
            (
                "tl2",
                Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm) as Box<dyn Fn() -> BoxedTm>,
            ),
            ("norec", Box::new(|| Box::new(NOrec::new(2, 1)) as BoxedTm)),
        ] {
            let report = livecheck(&*factory, &contended(), &LivecheckConfig::new(12));
            // Version clocks are rank-canonicalized, so committing the
            // same values forever revisits the same canonical states:
            // cycles must exist and validate.
            assert!(report.cycles_detected > 0, "{name}: no cycles found");
            assert_eq!(report.rejected_cycles, 0, "{name}");
            assert!(!report.progressing_processes().is_empty(), "{name}");
        }
    }

    #[test]
    fn reduction_preserves_the_graph_and_every_finding() {
        for (name, factory) in [
            (
                "fgp",
                Box::new(|| Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as BoxedTm)
                    as Box<dyn Fn() -> BoxedTm>,
            ),
            ("tl2", Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm)),
            (
                "global-lock",
                Box::new(|| Box::new(GlobalLock::new(2, 1)) as BoxedTm),
            ),
        ] {
            let plain = livecheck(&*factory, &contended(), &LivecheckConfig::new(12));
            let reduced = livecheck(
                &*factory,
                &contended(),
                &LivecheckConfig::new(12).with_reduction(),
            );
            assert_eq!(plain.states, reduced.states, "{name}");
            assert_eq!(plain.edges, reduced.edges, "{name}");
            assert_eq!(plain.cycles_detected, reduced.cycles_detected, "{name}");
            assert_eq!(plain.eventless_cycles, reduced.eventless_cycles, "{name}");
            assert_eq!(plain.lassos.len(), reduced.lassos.len(), "{name}");
            for (a, b) in plain.lassos.iter().zip(&reduced.lassos) {
                assert_eq!(a.schedule_prefix, b.schedule_prefix, "{name}");
                assert_eq!(a.schedule_cycle, b.schedule_cycle, "{name}");
                assert_eq!(a.classes, b.classes, "{name}");
            }
            assert_eq!(plain.verdicts, reduced.verdicts, "{name}");
            // Every re-walk the plain search paid in TM executions is
            // either executed once or replayed from the recorded graph.
            assert_eq!(
                plain.steps,
                reduced.steps + reduced.replayed_steps,
                "{name}"
            );
            assert!(
                reduced.steps < plain.steps,
                "{name}: reduction never fired ({} steps)",
                reduced.steps
            );
            assert_eq!(plain.replayed_steps, 0, "{name}");
        }
    }

    #[test]
    fn reduction_with_parasitic_processes_is_identical_too() {
        let scripts = vec![
            ClientScript::new(vec![PlannedOp::Read(X)]),
            ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
        ];
        let config = LivecheckConfig::new(10).with_parasitic(ProcessId(0));
        let plain = livecheck(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &config,
        );
        let reduced = livecheck(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &config.clone().with_reduction(),
        );
        assert_eq!(plain.states, reduced.states);
        assert_eq!(plain.edges, reduced.edges);
        assert_eq!(plain.lassos.len(), reduced.lassos.len());
        assert_eq!(plain.verdicts, reduced.verdicts);
        assert!(reduced
            .lassos
            .iter()
            .any(|l| l.parasitic().contains(&ProcessId(0))));
    }

    #[test]
    fn depth_one_explores_single_steps_only() {
        let report = livecheck(
            || Box::new(Tl2::new(2, 1)),
            &contended(),
            &LivecheckConfig::new(1),
        );
        assert_eq!(report.steps, 2);
        assert_eq!(report.cycles_detected, 0);
        assert!(report.lasso_starvation_free());
    }
}
